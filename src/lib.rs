//! Adaptive guardband scheduling for POWER7+-class multicores.
//!
//! Umbrella crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

#![forbid(unsafe_code)]

pub mod cli;

pub use ags_core as scheduling;
pub use ags_harness as harness;
pub use ags_serve as serve;
pub use p7_control as control;
pub use p7_faults as faults;
pub use p7_fleet as fleet;
pub use p7_obs as obs;
pub use p7_pdn as pdn;
pub use p7_power as power;
pub use p7_sensors as sensors;
pub use p7_sim as sim;
pub use p7_types as types;
pub use p7_workloads as workloads;
