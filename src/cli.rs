//! Argument parsing and option resolution for the `ags` command-line
//! front end (kept in the library so it is unit-testable; `main.rs` only
//! dispatches).

use crate::control::GuardbandMode;
use crate::sim::{JournalMode, Placement};
use crate::workloads::{Catalog, WorkloadProfile};
use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed `--flag value` pairs.
pub type Flags = HashMap<String, String>;

/// Parses a `--flag value --flag value …` tail.
///
/// # Errors
///
/// Returns a human-readable message for a positional argument or a flag
/// without a value.
///
/// # Examples
///
/// ```
/// let flags = ags::cli::parse_flags(&[
///     "--workload".into(), "radix".into(),
///     "--threads".into(), "8".into(),
/// ]).unwrap();
/// assert_eq!(flags["workload"], "radix");
/// assert!(ags::cli::parse_flags(&["radix".into()]).is_err());
/// ```
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

/// Splits known bare switches (flags that take no value, like
/// `--smoke`) out of an argument tail. Returns the switches present and
/// the remaining arguments, which stay in `--flag value` form for
/// [`parse_flags`].
///
/// # Examples
///
/// ```
/// let args: Vec<String> = vec!["--smoke".into(), "--jobs".into(), "2".into()];
/// let (switches, rest) = ags::cli::split_switches(&args, &["smoke"]);
/// assert_eq!(switches, ["smoke"]);
/// assert_eq!(rest, ["--jobs", "2"]);
/// ```
pub fn split_switches(args: &[String], switches: &[&str]) -> (Vec<String>, Vec<String>) {
    let mut present = Vec::new();
    let mut rest = Vec::new();
    for arg in args {
        match arg.strip_prefix("--") {
            Some(name) if switches.contains(&name) => present.push(name.to_owned()),
            _ => rest.push(arg.clone()),
        }
    }
    (present, rest)
}

/// Reads an integer flag with a default.
///
/// # Errors
///
/// Returns a message when the value does not parse.
pub fn flag_usize(flags: &Flags, name: &str, default: usize) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

/// Reads the `--seed` flag (default 42).
///
/// # Errors
///
/// Returns a message when the value does not parse.
pub fn flag_seed(flags: &Flags) -> Result<u64, String> {
    match flags.get("seed") {
        None => Ok(42),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--seed expects an integer, got `{v}`")),
    }
}

/// Reads the `--jobs` flag (default 0 = one worker per available core).
///
/// # Errors
///
/// Returns a message when the value does not parse.
pub fn flag_jobs(flags: &Flags) -> Result<usize, String> {
    flag_usize(flags, "jobs", 0)
}

/// Reads the `--placement` flag (default single).
///
/// # Errors
///
/// Returns a message for an unknown placement name.
pub fn flag_placement(flags: &Flags) -> Result<Placement, String> {
    match flags.get("placement") {
        None => Ok(Placement::SingleSocket),
        Some(name) => Placement::parse(name).ok_or_else(|| {
            format!("--placement must be single, consolidated or borrowed, got `{name}`")
        }),
    }
}

/// Reads the `--mode` flag (default undervolt).
///
/// # Errors
///
/// Returns a message for an unknown mode name.
pub fn flag_mode(flags: &Flags) -> Result<GuardbandMode, String> {
    match flags.get("mode").map(String::as_str) {
        None | Some("undervolt") => Ok(GuardbandMode::Undervolt),
        Some("overclock") => Ok(GuardbandMode::Overclock),
        Some("static") => Ok(GuardbandMode::StaticGuardband),
        Some(other) => Err(format!(
            "--mode must be static, overclock or undervolt, got `{other}`"
        )),
    }
}

/// Reads the journal flags: `--journal DIR` starts a fresh journal,
/// `--resume DIR` continues an existing one.
///
/// # Errors
///
/// Returns a message when both flags are given at once.
pub fn flag_journal_mode(flags: &Flags) -> Result<JournalMode, String> {
    match (flags.get("journal"), flags.get("resume")) {
        (Some(_), Some(_)) => {
            Err("--journal starts a fresh journal and --resume continues one; pass only one".into())
        }
        (Some(dir), None) => Ok(JournalMode::Start(PathBuf::from(dir))),
        (None, Some(dir)) => Ok(JournalMode::Resume(PathBuf::from(dir))),
        (None, None) => Ok(JournalMode::Off),
    }
}

/// Reads the `--checkpoint` flag: completed points per journal segment
/// (default 0 = the engine's default interval).
///
/// # Errors
///
/// Returns a message when the value does not parse.
pub fn flag_checkpoint(flags: &Flags) -> Result<usize, String> {
    flag_usize(flags, "checkpoint", 0)
}

/// Exporter destinations parsed from `--metrics` / `--trace`.
///
/// Either flag turns the corresponding collector on for the whole
/// command; at exit the registry is rendered in Prometheus text format
/// to `metrics` and the span buffer as Chrome `trace_event` JSON to
/// `trace`. With neither flag the telemetry layer stays disabled and
/// every instrumented site costs one predicted branch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Prometheus text-format destination, from `--metrics PATH`.
    pub metrics: Option<PathBuf>,
    /// Chrome `trace_event` JSON destination, from `--trace PATH`.
    pub trace: Option<PathBuf>,
}

impl ObsOptions {
    /// Whether any exporter was requested.
    #[must_use]
    pub fn any(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some()
    }
}

/// Reads the `--metrics` / `--trace` exporter flags.
#[must_use]
pub fn flag_obs(flags: &Flags) -> ObsOptions {
    ObsOptions {
        metrics: flags.get("metrics").map(PathBuf::from),
        trace: flags.get("trace").map(PathBuf::from),
    }
}

/// Resolves the required `--workload` flag against the catalog.
///
/// # Errors
///
/// Returns a message when the flag is missing or names an unknown
/// benchmark.
pub fn required_workload<'a>(
    catalog: &'a Catalog,
    flags: &Flags,
) -> Result<&'a WorkloadProfile, String> {
    let name = flags
        .get("workload")
        .ok_or("missing --workload <name> (see `ags list`)")?;
    catalog.require(name).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn parse_flags_happy_path() {
        let f = parse_flags(&[
            "--workload".into(),
            "radix".into(),
            "--mode".into(),
            "static".into(),
        ])
        .unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f["mode"], "static");
    }

    #[test]
    fn parse_flags_rejects_positional_and_dangling() {
        assert!(parse_flags(&["radix".into()]).is_err());
        assert!(parse_flags(&["--workload".into()]).is_err());
    }

    #[test]
    fn switches_are_split_before_strict_parsing() {
        let args: Vec<String> = ["--smoke", "--jobs", "4", "--seed", "7"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (switches, rest) = split_switches(&args, &["smoke"]);
        assert_eq!(switches, ["smoke"]);
        let f = parse_flags(&rest).unwrap();
        assert_eq!(f["jobs"], "4");
        assert_eq!(f["seed"], "7");
        // Unknown bare flags still fail strict parsing downstream.
        let (none, rest) = split_switches(&args, &[]);
        assert!(none.is_empty());
        assert!(parse_flags(&rest).is_err());
    }

    #[test]
    fn numeric_flags_parse_with_defaults() {
        let f = flags(&[("threads", "6")]);
        assert_eq!(flag_usize(&f, "threads", 4).unwrap(), 6);
        assert_eq!(flag_usize(&f, "servers", 3).unwrap(), 3);
        assert!(flag_usize(&flags(&[("threads", "lots")]), "threads", 4).is_err());
        assert_eq!(flag_seed(&Flags::new()).unwrap(), 42);
        assert!(flag_seed(&flags(&[("seed", "x")])).is_err());
    }

    #[test]
    fn mode_flag_covers_all_modes() {
        assert_eq!(flag_mode(&Flags::new()).unwrap(), GuardbandMode::Undervolt);
        assert_eq!(
            flag_mode(&flags(&[("mode", "overclock")])).unwrap(),
            GuardbandMode::Overclock
        );
        assert_eq!(
            flag_mode(&flags(&[("mode", "static")])).unwrap(),
            GuardbandMode::StaticGuardband
        );
        assert!(flag_mode(&flags(&[("mode", "turbo")])).is_err());
    }

    #[test]
    fn jobs_and_placement_flags() {
        assert_eq!(flag_jobs(&Flags::new()).unwrap(), 0);
        assert_eq!(flag_jobs(&flags(&[("jobs", "8")])).unwrap(), 8);
        assert!(flag_jobs(&flags(&[("jobs", "many")])).is_err());
        assert_eq!(
            flag_placement(&Flags::new()).unwrap(),
            Placement::SingleSocket
        );
        assert_eq!(
            flag_placement(&flags(&[("placement", "borrowed")])).unwrap(),
            Placement::Borrowed
        );
        assert!(flag_placement(&flags(&[("placement", "spread")])).is_err());
    }

    #[test]
    fn journal_flags_resolve_to_modes() {
        assert_eq!(flag_journal_mode(&Flags::new()).unwrap(), JournalMode::Off);
        assert_eq!(
            flag_journal_mode(&flags(&[("journal", "j")])).unwrap(),
            JournalMode::Start(PathBuf::from("j"))
        );
        assert_eq!(
            flag_journal_mode(&flags(&[("resume", "j")])).unwrap(),
            JournalMode::Resume(PathBuf::from("j"))
        );
        assert!(flag_journal_mode(&flags(&[("journal", "a"), ("resume", "b")])).is_err());
        assert_eq!(flag_checkpoint(&Flags::new()).unwrap(), 0);
        assert_eq!(flag_checkpoint(&flags(&[("checkpoint", "2")])).unwrap(), 2);
        assert!(flag_checkpoint(&flags(&[("checkpoint", "x")])).is_err());
    }

    #[test]
    fn obs_flags_resolve_to_paths() {
        let none = flag_obs(&Flags::new());
        assert_eq!(none, ObsOptions::default());
        assert!(!none.any());
        let both = flag_obs(&flags(&[("metrics", "m.prom"), ("trace", "t.json")]));
        assert_eq!(both.metrics.as_deref(), Some(Path::new("m.prom")));
        assert_eq!(both.trace.as_deref(), Some(Path::new("t.json")));
        assert!(both.any());
        assert!(flag_obs(&flags(&[("trace", "t.json")])).any());
    }

    #[test]
    fn workload_resolution() {
        let catalog = Catalog::power7plus();
        assert!(required_workload(&catalog, &Flags::new()).is_err());
        assert!(required_workload(&catalog, &flags(&[("workload", "nope")])).is_err());
        let w = required_workload(&catalog, &flags(&[("workload", "lu_cb")])).unwrap();
        assert_eq!(w.name(), "lu_cb");
    }
}
