//! `ags` — command-line front end to the POWER7+ adaptive-guardband
//! simulator and the AGS schedulers.
//!
//! ```text
//! ags list
//! ags run --workload raytrace --threads 4 --mode undervolt
//! ags sweep --workload lu_cb --mode overclock
//! ags borrow --workload radix --threads 8
//! ags cluster --workload raytrace --threads 12 --servers 4
//! ```

use ags::cli::{
    flag_jobs, flag_mode, flag_placement, flag_seed, flag_usize, parse_flags, required_workload,
    split_switches, Flags,
};
use ags::control::GuardbandMode;
use ags::scheduling::{ClusterConfig, ClusterScheduler, LoadlineBorrowing};
use ags::sim::{CachedExperiment, Experiment, ResilienceSpec, SweepEngine, SweepReport, SweepSpec};
use ags::workloads::Catalog;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        print_usage();
        return ExitCode::FAILURE;
    };
    // `resilience` takes bare switches; everything else is strict
    // `--flag value` pairs.
    let switch_names: &[&str] = match command {
        "resilience" => &["smoke"],
        _ => &[],
    };
    let (switches, tail) = split_switches(&args[1..], switch_names);
    let flags = match parse_flags(&tail) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "list" => cmd_list(),
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "resilience" => cmd_resilience(&flags, switches.iter().any(|s| s == "smoke")),
        "borrow" => cmd_borrow(&flags),
        "cluster" => cmd_cluster(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `ags help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "ags — POWER7+ adaptive guardband scheduling simulator

USAGE:
  ags list
      List every calibrated workload and its footprint.
  ags run --workload <name> [--threads N] [--mode M] [--placement P] [--seed S]
      Run one experiment. M: static|overclock|undervolt (default undervolt).
      P: single|consolidated|borrowed (default single). N: 1..8 (default 4).
  ags sweep --workload <name> [--mode M] [--seed S] [--jobs N]
      Sweep 1..8 active cores and print improvement over static guardband.
  ags sweep --spec <file|fig10> [--jobs N] [--seed S]
      Run a full sweep grid from a JSON spec (or the built-in fig10 grid)
      on N parallel workers. Results are identical at any worker count;
      throughput/cache stats go to stderr.
  ags resilience [--smoke] [--jobs N] [--seed S]
      Run the fault-injection campaign: every shipped fault scenario
      against the supervised undervolting stack. Reports savings
      retained, margin violations with and without the supervisor, and
      floor compliance; exits non-zero if any cell is unsafe.
      --smoke runs the shortened CI variant.
  ags borrow --workload <name> [--threads N] [--seed S]
      Compare workload consolidation against loadline borrowing.
  ags cluster --workload <name> [--threads N] [--servers S] [--seed S]
      Two-level scheduling: consolidate across servers, borrow within."
    );
}

fn cmd_list() -> Result<(), String> {
    let catalog = Catalog::power7plus();
    println!(
        "{:<16} {:<13} {:>5} {:>5} {:>7} {:>5} {:>5} {:>6}",
        "workload", "suite", "ceff", "act", "MIPS/c", "mem", "comm", "membw"
    );
    for w in catalog.iter() {
        println!(
            "{:<16} {:<13} {:>5.2} {:>5.2} {:>7.0} {:>5.2} {:>5.2} {:>6.2}",
            w.name(),
            w.suite().to_string(),
            w.ceff_nf(),
            w.activity(),
            w.mips_per_core(),
            w.memory_intensity(),
            w.comm_intensity(),
            w.membw_intensity()
        );
    }
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 4)?;
    let mode = flag_mode(flags)?;
    let placement = flag_placement(flags)?;
    // Memoized: a repeated `run` in the same process is a cache hit.
    let exp = CachedExperiment::new(Experiment::power7plus(flag_seed(flags)?));
    let assignment = placement
        .assignment(workload, threads)
        .map_err(|e| e.to_string())?;
    let outcome = exp.run(&assignment, mode).map_err(|e| e.to_string())?;
    println!("{} × {threads} threads, {mode}:", workload.name());
    println!("  chip power (socket 0) : {:8.1} W", outcome.chip_power().0);
    println!(
        "  server power          : {:8.1} W",
        outcome.total_power().0
    );
    println!(
        "  clock (running cores) : {:8.0} MHz",
        outcome.summary.avg_running_freq.0
    );
    println!(
        "  undervolt (socket 0)  : {:8.1} mV",
        outcome.summary.socket0().undervolt.millivolts()
    );
    println!("  execution time        : {:8.1} s", outcome.exec_time.0);
    println!("  energy                : {:8.1} J", outcome.energy.0);
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let engine = SweepEngine::new(flag_jobs(flags)?);
    if let Some(spec_arg) = flags.get("spec") {
        let spec = load_spec(spec_arg)?.with_seed(flag_seed(flags)?);
        let report = engine.run(&spec).map_err(|e| e.to_string())?;
        print_report(&report);
        print_stats(&report);
        return Ok(());
    }

    // Legacy single-workload sweep: 1..8 cores, adaptive mode vs static.
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let mode = flag_mode(flags)?;
    let mut modes = vec![GuardbandMode::StaticGuardband];
    if mode != GuardbandMode::StaticGuardband {
        modes.push(mode);
    }
    let spec = SweepSpec::new(vec![workload.name().to_owned()], (1..=8).collect())
        .with_modes(modes)
        .with_seed(flag_seed(flags)?)
        .with_ticks(
            ags::sim::DEFAULT_MEASURE_TICKS,
            ags::sim::DEFAULT_WARMUP_TICKS,
        );
    let report = engine.run(&spec).map_err(|e| e.to_string())?;
    println!("{} under {mode} vs static guardband:", workload.name());
    println!("cores  static W  adaptive W  saving %  adaptive MHz");
    for &threads in &spec.cores {
        let place = ags::sim::Placement::SingleSocket;
        let st = report
            .outcome(
                workload.name(),
                threads,
                place,
                GuardbandMode::StaticGuardband,
            )
            .ok_or("static point missing from grid")?;
        let ad = report
            .outcome(workload.name(), threads, place, mode)
            .ok_or("adaptive point missing from grid")?;
        let saving = (st.chip_power().0 - ad.chip_power().0) / st.chip_power().0 * 100.0;
        println!(
            "{threads:>5}  {:>8.1}  {:>10.1}  {:>8.1}  {:>12.0}",
            st.chip_power().0,
            ad.chip_power().0,
            saving,
            ad.summary.avg_running_freq.0
        );
    }
    print_stats(&report);
    Ok(())
}

/// Resolves the `--spec` argument: the literal `fig10` selects the
/// built-in Fig. 10 grid, anything else is read as a JSON spec file.
fn load_spec(arg: &str) -> Result<SweepSpec, String> {
    if arg == "fig10" {
        return Ok(SweepSpec::fig10_grid());
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read sweep spec `{arg}`: {e}"))?;
    SweepSpec::from_json(&text)
}

/// Prints every grid point of a sweep report, in grid order (stdout is
/// byte-identical at any `--jobs` count).
fn print_report(report: &SweepReport) {
    println!(
        "{:>5}  {:<16} {:>5}  {:<12} {:<10} {:>8} {:>9} {:>8} {:>8}",
        "point", "workload", "cores", "placement", "mode", "chip W", "total W", "MHz", "UV mV"
    );
    for r in &report.results {
        println!(
            "{:>5}  {:<16} {:>5}  {:<12} {:<10} {:>8.1} {:>9.1} {:>8.0} {:>8.1}",
            r.point.index,
            r.point.workload,
            r.point.cores,
            r.point.placement.label(),
            r.point.mode.to_string(),
            r.outcome.chip_power().0,
            r.outcome.total_power().0,
            r.outcome.summary.avg_running_freq.0,
            r.outcome.summary.socket0().undervolt.millivolts()
        );
    }
}

/// Prints the throughput/cache footer to stderr, keeping stdout
/// reproducible across worker counts and cache temperatures.
fn print_stats(report: &SweepReport) {
    let s = &report.stats;
    eprintln!(
        "[sweep: {} points in {:.2} s with {} jobs — {:.1} points/s, cache {} hits / {} misses]",
        s.points,
        s.elapsed_secs,
        s.jobs,
        s.points_per_sec(),
        s.cache.hits,
        s.cache.misses
    );
}

fn cmd_resilience(flags: &Flags, smoke: bool) -> Result<(), String> {
    let mut spec = if smoke {
        ResilienceSpec::smoke()
    } else {
        ResilienceSpec::power7plus()
    };
    spec.seed = flag_seed(flags)?;
    let report = spec.run(flag_jobs(flags)?).map_err(|e| e.to_string())?;
    print!("{}", report.table());
    let safe = report.all_safe();
    println!(
        "campaign: {} cells, {} — supervised margin violations: {}, unsupervised: {}",
        report.results.len(),
        if safe { "all safe" } else { "UNSAFE" },
        report
            .results
            .iter()
            .map(|r| r.margin_violations)
            .sum::<u64>(),
        report
            .results
            .iter()
            .map(|r| r.unsupervised_violations)
            .sum::<u64>()
    );
    if safe {
        Ok(())
    } else {
        Err("campaign unsafe: a supervised cell violated the margin or breached the floor".into())
    }
}

fn cmd_borrow(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 8)?;
    let lb = LoadlineBorrowing::new(Experiment::power7plus(flag_seed(flags)?));
    let eval = lb.evaluate(workload, threads).map_err(|e| e.to_string())?;
    println!("{} × {threads} threads:", workload.name());
    println!(
        "  consolidated : {:7.1} W, {:7.1} s, {:9.1} J  (undervolt {:.0} mV)",
        eval.consolidated.total_power().0,
        eval.consolidated.exec_time.0,
        eval.consolidated.energy.0,
        eval.consolidated.summary.socket0().undervolt.millivolts()
    );
    println!(
        "  borrowed     : {:7.1} W, {:7.1} s, {:9.1} J  (undervolt {:.0} mV)",
        eval.borrowed.total_power().0,
        eval.borrowed.exec_time.0,
        eval.borrowed.energy.0,
        eval.borrowed.summary.sockets[0].undervolt.millivolts()
    );
    println!(
        "  borrowing    : {:+.1} % power, {:+.1} % time, {:+.1} % energy",
        -eval.power_saving_percent, eval.time_change_percent, eval.energy_improvement_percent
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 12)?;
    let servers = flag_usize(flags, "servers", 4)?;
    let scheduler = ClusterScheduler::new(
        Experiment::power7plus(flag_seed(flags)?).with_ticks(30, 15),
        ClusterConfig::rack(servers),
    )
    .map_err(|e| e.to_string())?;
    let plan = scheduler
        .schedule(workload, threads)
        .map_err(|e| e.to_string())?;
    let naive = scheduler
        .naive_spread(workload, threads)
        .map_err(|e| e.to_string())?;
    println!(
        "{} × {threads} threads on {servers} servers:",
        workload.name()
    );
    for (i, share) in plan.servers.iter().enumerate() {
        println!(
            "  server {i}: {} threads, {} — {:.1} W",
            share.threads,
            if share.threads == 0 {
                "standby"
            } else if share.borrowed {
                "borrowed placement"
            } else {
                "consolidated placement"
            },
            share.total_power().0
        );
    }
    println!(
        "  hierarchical total : {:.1} W ({} active servers)",
        plan.total_power.0, plan.active_servers
    );
    println!(
        "  naive spread total : {:.1} W ({} active servers)",
        naive.total_power.0, naive.active_servers
    );
    Ok(())
}
