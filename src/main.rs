//! `ags` — command-line front end to the POWER7+ adaptive-guardband
//! simulator and the AGS schedulers.
//!
//! ```text
//! ags list
//! ags run --workload raytrace --threads 4 --mode undervolt
//! ags sweep --workload lu_cb --mode overclock
//! ags borrow --workload radix --threads 8
//! ags cluster --workload raytrace --threads 12 --servers 4
//! ```

use ags::cli::{
    flag_checkpoint, flag_jobs, flag_journal_mode, flag_mode, flag_obs, flag_placement, flag_seed,
    flag_usize, parse_flags, required_workload, split_switches, Flags, ObsOptions,
};
use ags::control::GuardbandMode;
use ags::fleet::{FleetEngine, FleetReport, FleetRunOptions, FleetSpec, TrafficModel};
use ags::harness::{install_cancel_on_signals, EXIT_INTERRUPTED};
use ags::scheduling::{ClusterConfig, ClusterScheduler, LoadlineBorrowing};
use ags::serve::{run_top, serve, ServeConfig, TopOptions};
use ags::sim::journal::{read_manifest, render_failed};
use ags::sim::{
    CachedExperiment, DurableOptions, Experiment, FailedPoint, JournalMode, ResilienceSpec,
    SimError, SweepEngine, SweepReport, SweepRunOptions, SweepSpec,
};
use ags::workloads::Catalog;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// A command failure with its exit status.
enum CliError {
    /// Plain failure: message on stderr, exit 1.
    Message(String),
    /// Cancelled cooperatively after flushing the journal; exit
    /// [`EXIT_INTERRUPTED`] so scripts can distinguish "resume me" from
    /// "broken".
    Interrupted {
        /// The resumable journal directory, if the run was journaled.
        journal: Option<String>,
    },
    /// The serve daemon drained gracefully after a signal; exit
    /// [`EXIT_INTERRUPTED`] so supervisors restart it to resume the
    /// queue.
    Drained {
        /// The task-queue journal directory holding the checkpoint.
        journal: String,
    },
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Message(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Message(message.to_owned())
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Interrupted { journal } => CliError::Interrupted { journal },
            other => CliError::Message(other.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        print_usage();
        return ExitCode::FAILURE;
    };
    // `sweep` and `resilience` take bare switches; everything else is
    // strict `--flag value` pairs.
    let switch_names: &[&str] = match command {
        "sweep" | "resilience" | "fleet" => &["smoke"],
        "fsck" => &["repair"],
        "top" => &["once"],
        _ => &[],
    };
    let (switches, tail) = split_switches(&args[1..], switch_names);
    let flags = match parse_flags(&tail) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let smoke = switches.iter().any(|s| s == "smoke");
    let obs = flag_obs(&flags);
    if obs.metrics.is_some() {
        ags::obs::metrics::global().set_enabled(true);
        // Register every family up front: exports list all of them even
        // when a run never exercises some site.
        ags::sim::telemetry::register_all();
        ags::fleet::telemetry::register_all();
    }
    if obs.trace.is_some() {
        ags::obs::trace::enable();
    }
    let result: Result<(), CliError> = {
        // With --trace, every span of the command hangs off one
        // `campaign` root, so the exported tree has a single top-level
        // node (and the span tree stays --jobs invariant: workers
        // inherit the pushed context at spawn).
        let campaign_root = obs.trace.as_ref().map(|_| {
            let span = ags::obs::trace::span("campaign", 0);
            let guard = span.push();
            (span, guard)
        });
        let result = match command {
            "list" => cmd_list().map_err(CliError::from),
            "run" => cmd_run(&flags).map_err(CliError::from),
            "sweep" => cmd_sweep(&flags, smoke),
            "resilience" => cmd_resilience(&flags, smoke),
            "fleet" => cmd_fleet(&flags, smoke),
            "serve" => cmd_serve(&flags),
            "top" => cmd_top(&flags, switches.iter().any(|s| s == "once")),
            "fsck" => cmd_fsck(&flags, switches.iter().any(|s| s == "repair")),
            "borrow" => cmd_borrow(&flags).map_err(CliError::from),
            "cluster" => cmd_cluster(&flags).map_err(CliError::from),
            "help" | "--help" | "-h" => {
                print_usage();
                Ok(())
            }
            other => Err(CliError::Message(format!(
                "unknown command `{other}` (try `ags help`)"
            ))),
        };
        if let Some((span, guard)) = campaign_root {
            drop(guard);
            drop(span);
        }
        result
    };
    // Exporters run even for a failed command: a crashed or unsafe
    // campaign still leaves its telemetry behind for diagnosis.
    let result = match (result, export_observability(&obs)) {
        (Ok(()), Err(message)) => Err(CliError::Message(message)),
        (Err(e), Err(message)) => {
            eprintln!("error: {message}");
            Err(e)
        }
        (result, Ok(())) => result,
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Message(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Interrupted { journal }) => {
            match journal {
                Some(dir) => eprintln!("interrupted; resume with --resume {dir}"),
                None => eprintln!("interrupted (no journal to resume from)"),
            }
            ExitCode::from(EXIT_INTERRUPTED)
        }
        Err(CliError::Drained { journal }) => {
            eprintln!("drained; restart with `ags serve --journal {journal}` to resume the queue");
            ExitCode::from(EXIT_INTERRUPTED)
        }
    }
}

/// Writes the exports requested by `--metrics` / `--trace`: the global
/// registry in Prometheus text format, and the collected spans as Chrome
/// `trace_event` JSON (load in `chrome://tracing` or Perfetto).
fn export_observability(obs: &ObsOptions) -> Result<(), String> {
    if let Some(path) = &obs.metrics {
        let text = ags::obs::metrics::global().render_prometheus();
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write metrics `{}`: {e}", path.display()))?;
    }
    if let Some(path) = &obs.trace {
        let events = ags::obs::trace::collect();
        let json = ags::obs::trace::render_chrome_trace(&events);
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write trace `{}`: {e}", path.display()))?;
    }
    Ok(())
}

fn print_usage() {
    println!(
        "ags — POWER7+ adaptive guardband scheduling simulator

USAGE:
  ags list
      List every calibrated workload and its footprint.
  ags run --workload <name> [--threads N] [--mode M] [--placement P] [--seed S]
      Run one experiment. M: static|overclock|undervolt (default undervolt).
      P: single|consolidated|borrowed (default single). N: 1..8 (default 4).
  ags sweep --workload <name> [--mode M] [--seed S] [--jobs N]
      Sweep 1..8 active cores and print improvement over static guardband.
  ags sweep (--spec <file|fig10> | --smoke) [--jobs N] [--seed S] [--csv FILE]
            [--journal DIR | --resume DIR] [--checkpoint N]
      Run a full sweep grid from a JSON spec (or the built-in fig10 grid)
      on N parallel workers. Results are identical at any worker count;
      throughput/cache stats go to stderr. --journal checkpoints
      completed points into DIR (crash-consistent, resumable); --resume
      continues an interrupted journal — with no --spec the campaign is
      rebuilt from the journal's manifest. SIGINT/SIGTERM flush the
      journal and exit 75 (resumable). --csv also writes the grid as
      CSV; resumed output is byte-identical to an uninterrupted run.
      --smoke runs the shortened built-in CI grid.
  ags resilience [--smoke] [--jobs N] [--seed S]
                 [--journal DIR | --resume DIR] [--checkpoint N]
      Run the fault-injection campaign: every shipped fault scenario
      against the supervised undervolting stack. Reports savings
      retained, margin violations with and without the supervisor, and
      floor compliance; exits non-zero if any cell is unsafe.
      --smoke runs the shortened CI variant. Journal flags behave as in
      `ags sweep` (resume with the same --smoke/--seed flags).
  ags fleet [--smoke] [--servers N] [--epochs N] [--traffic T] [--seed S]
            [--shard-servers N] [--jobs N]
            [--journal DIR | --resume DIR] [--checkpoint N]
      Fleet-scale campaign: simulate N two-socket servers (default 1000)
      through an open-loop traffic shape. T: diurnal|flash-crowd|
      rolling-deploy (default diurnal). Servers are sharded across
      workers and advanced through 16-lane solver batches; idle workers
      steal whole shards, and stdout is byte-identical at any --jobs.
      Steal/cache/throughput stats go to stderr. Journal flags behave as
      in `ags sweep`; a resume rebuilds the campaign from the journal's
      manifest. --smoke runs the shortened CI fleet.
  ags serve --journal DIR [--addr HOST:PORT] [--jobs N] [--max-body BYTES]
            [--max-connections N] [--timeout-ms MS] [--deadline-ms MS]
            [--sample-ms MS]
      Run the campaign daemon: accept sweep/resilience/fleet requests
      over HTTP (default 127.0.0.1:7075), journal every task into DIR
      before acknowledging it, batch compatible sweeps into shared
      engine passes, and retry failed tasks with backoff (deadlines
      journaled, so restarts keep waiting). Endpoints: POST /tasks,
      GET /tasks[/ID[/result]], POST /tasks/ID/cancel, GET /healthz,
      GET /metrics. /healthz is 200 only while the scheduler thread is
      live and the journal writable; when the journal stops accepting
      writes the daemon serves reads in degraded mode (writes shed
      with 503 + Retry-After) and recovers in place once a probe write
      succeeds. --deadline-ms arms a per-batch watchdog: an engine
      pass running longer is canceled and its tasks quarantined as
      stuck (0 = off). SIGINT/SIGTERM drain gracefully — in-flight
      work is checkpointed and the daemon exits 75; restart with the
      same --journal to resume the queue (a second signal forces
      immediate exit). Every task gets a trace at accept: GET
      /tasks/ID/trace returns the accept→journal→batch→solve→render
      span tree as Chrome trace JSON. A flight recorder samples the
      metrics registry every --sample-ms (default 500) into a bounded
      in-memory ring persisted under DIR/flightrec (recovered on
      restart); GET /metrics/history?family=NAME&window_ms=MS&points=N
      serves the recent frames, downsampled.
  ags top [--addr HOST:PORT] [--interval-ms MS] [--once]
      Live terminal dashboard over a running daemon (default
      127.0.0.1:7075): health/build/uptime, queue depth, oldest-task
      age, batch and solve-cache traffic as sparklines from
      /metrics/history, and per-route latency percentiles from the
      request histogram. --once prints a single frame (no escape
      codes) and exits.
  ags fsck --journal DIR [--repair]
      Scrub a campaign or task-queue journal directory: verify the
      manifest, every segment's checksum and shape, entry-index
      uniqueness and segment numbering, and report torn, orphaned or
      stray files. Exits non-zero if damage is found. --repair
      truncates the journal to its last consistent prefix (resumable
      afterwards) and removes temp-file residue.
  ags borrow --workload <name> [--threads N] [--seed S]
      Compare workload consolidation against loadline borrowing.
  ags cluster --workload <name> [--threads N] [--servers S] [--seed S]
      Two-level scheduling: consolidate across servers, borrow within.

OBSERVABILITY (any command):
  --metrics PATH   Enable the metrics registry; write it as Prometheus
                   text format on exit.
  --trace PATH     Enable span tracing; write Chrome trace_event JSON
                   (chrome://tracing, Perfetto) on exit.
      Without these flags the telemetry layer is disabled and costs one
      predicted branch per instrumented site. Exported totals for the
      deterministic families are identical at any --jobs; only the
      *_seconds histograms are wall-clock dependent."
    );
}

fn cmd_list() -> Result<(), String> {
    let catalog = Catalog::power7plus();
    println!(
        "{:<16} {:<13} {:>5} {:>5} {:>7} {:>5} {:>5} {:>6}",
        "workload", "suite", "ceff", "act", "MIPS/c", "mem", "comm", "membw"
    );
    for w in catalog.iter() {
        println!(
            "{:<16} {:<13} {:>5.2} {:>5.2} {:>7.0} {:>5.2} {:>5.2} {:>6.2}",
            w.name(),
            w.suite().to_string(),
            w.ceff_nf(),
            w.activity(),
            w.mips_per_core(),
            w.memory_intensity(),
            w.comm_intensity(),
            w.membw_intensity()
        );
    }
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 4)?;
    let mode = flag_mode(flags)?;
    let placement = flag_placement(flags)?;
    // Memoized: a repeated `run` in the same process is a cache hit.
    let exp = CachedExperiment::new(Experiment::power7plus(flag_seed(flags)?));
    let assignment = placement
        .assignment(workload, threads)
        .map_err(|e| e.to_string())?;
    let outcome = exp.run(&assignment, mode).map_err(|e| e.to_string())?;
    println!("{} × {threads} threads, {mode}:", workload.name());
    println!("  chip power (socket 0) : {:8.1} W", outcome.chip_power().0);
    println!(
        "  server power          : {:8.1} W",
        outcome.total_power().0
    );
    println!(
        "  clock (running cores) : {:8.0} MHz",
        outcome.summary.avg_running_freq.0
    );
    println!(
        "  undervolt (socket 0)  : {:8.1} mV",
        outcome.summary.socket0().undervolt.millivolts()
    );
    println!("  execution time        : {:8.1} s", outcome.exec_time.0);
    println!("  energy                : {:8.1} J", outcome.energy.0);
    Ok(())
}

fn cmd_sweep(flags: &Flags, smoke: bool) -> Result<(), CliError> {
    let engine = SweepEngine::new(flag_jobs(flags)?);
    let journal_mode = flag_journal_mode(flags)?;
    if smoke || flags.contains_key("spec") || matches!(journal_mode, JournalMode::Resume(_)) {
        let spec = resolve_sweep_spec(flags, smoke, &journal_mode)?;
        let options = SweepRunOptions {
            durable: DurableOptions {
                journal: journal_mode,
                checkpoint_every: flag_checkpoint(flags)?,
                ..DurableOptions::default()
            },
            panic_injector: None,
        };
        install_cancel_on_signals(&options.durable.cancel);
        let report = engine.run_durable(&spec, &options)?;
        print_report(&report);
        print_failed(&report.failed_points, "grid points");
        if let Some(csv_path) = flags.get("csv") {
            write_csv(&report, csv_path)?;
        }
        print_stats(&report);
        return Ok(());
    }
    if journal_mode != JournalMode::Off || flags.contains_key("csv") {
        return Err("--journal/--csv need a grid campaign: pass --spec <file|fig10>".into());
    }

    // Legacy single-workload sweep: 1..8 cores, adaptive mode vs static.
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let mode = flag_mode(flags)?;
    let mut modes = vec![GuardbandMode::StaticGuardband];
    if mode != GuardbandMode::StaticGuardband {
        modes.push(mode);
    }
    let spec = SweepSpec::new(vec![workload.name().to_owned()], (1..=8).collect())
        .with_modes(modes)
        .with_seed(flag_seed(flags)?)
        .with_ticks(
            ags::sim::DEFAULT_MEASURE_TICKS,
            ags::sim::DEFAULT_WARMUP_TICKS,
        );
    let report = engine.run(&spec).map_err(|e| e.to_string())?;
    println!("{} under {mode} vs static guardband:", workload.name());
    println!("cores  static W  adaptive W  saving %  adaptive MHz");
    for &threads in &spec.cores {
        let place = ags::sim::Placement::SingleSocket;
        let st = report
            .outcome(
                workload.name(),
                threads,
                place,
                GuardbandMode::StaticGuardband,
            )
            .ok_or("static point missing from grid")?;
        let ad = report
            .outcome(workload.name(), threads, place, mode)
            .ok_or("adaptive point missing from grid")?;
        let saving = (st.chip_power().0 - ad.chip_power().0) / st.chip_power().0 * 100.0;
        println!(
            "{threads:>5}  {:>8.1}  {:>10.1}  {:>8.1}  {:>12.0}",
            st.chip_power().0,
            ad.chip_power().0,
            saving,
            ad.summary.avg_running_freq.0
        );
    }
    print_stats(&report);
    Ok(())
}

/// Resolves the `--spec` argument: the literal `fig10` selects the
/// built-in Fig. 10 grid, anything else is read as a JSON spec file.
fn load_spec(arg: &str) -> Result<SweepSpec, String> {
    if arg == "fig10" {
        return Ok(SweepSpec::fig10_grid());
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read sweep spec `{arg}`: {e}"))?;
    SweepSpec::from_json(&text).map_err(|e| e.to_string())
}

/// The sweep campaign being run: the built-in smoke grid under
/// `--smoke`, from `--spec` when given (the journal manifest then
/// cross-checks it), otherwise — on `--resume` — rebuilt from the
/// journal's own manifest so a resume needs no flags beyond the
/// directory. An explicit `--seed` must agree with the manifest.
fn resolve_sweep_spec(
    flags: &Flags,
    smoke: bool,
    journal_mode: &JournalMode,
) -> Result<SweepSpec, CliError> {
    if smoke {
        if flags.contains_key("spec") {
            return Err("--smoke selects the built-in smoke grid; drop --spec".into());
        }
        return Ok(SweepSpec::smoke_grid().with_seed(flag_seed(flags)?));
    }
    if let Some(spec_arg) = flags.get("spec") {
        return Ok(load_spec(spec_arg)?.with_seed(flag_seed(flags)?));
    }
    let JournalMode::Resume(dir) = journal_mode else {
        return Err("missing --spec <file|fig10>".into());
    };
    let manifest = read_manifest(dir)?;
    if manifest.kind != "sweep" {
        return Err(CliError::Message(format!(
            "journal `{}` holds a `{}` campaign, not a sweep; use `ags {}`",
            dir.display(),
            manifest.kind,
            manifest.kind
        )));
    }
    let spec = SweepSpec::from_json(&manifest.spec_json)?;
    if flags.contains_key("seed") && flag_seed(flags)? != spec.seed {
        return Err(CliError::Message(format!(
            "--seed {} does not match the journal's seed {}; drop the flag or pass --spec",
            flag_seed(flags)?,
            spec.seed
        )));
    }
    Ok(spec)
}

/// Prints the quarantine section: points that kept panicking and were
/// isolated instead of aborting the campaign. Silent when empty, so
/// healthy runs keep their exact historical stdout. Rendering lives in
/// `p7_sim::journal` so the serve daemon produces identical bytes.
fn print_failed(failed: &[FailedPoint], what: &str) {
    print!("{}", render_failed(failed, what));
}

/// Writes the grid as CSV. Floats are formatted in Rust's shortest
/// round-trip form (`{:?}`), so an interrupted-then-resumed campaign
/// reproduces the reference file byte for byte.
fn write_csv(report: &SweepReport, path: &str) -> Result<(), CliError> {
    let out = report.render_csv();
    let mut file =
        std::fs::File::create(path).map_err(|e| format!("cannot create csv `{path}`: {e}"))?;
    file.write_all(out.as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| format!("cannot write csv `{path}`: {e}"))?;
    Ok(())
}

/// Prints every grid point of a sweep report, in grid order (stdout is
/// byte-identical at any `--jobs` count). Rendering lives in
/// `p7_sim::sweep` so the serve daemon produces identical bytes.
fn print_report(report: &SweepReport) {
    print!("{}", report.render_table());
}

/// Prints the throughput/cache footer to stderr, keeping stdout
/// reproducible across worker counts and cache temperatures.
fn print_stats(report: &SweepReport) {
    let s = &report.stats;
    eprintln!(
        "[sweep: {} points in {:.2} s with {} jobs — {:.1} points/s, \
         cache {} hits / {} misses / {} evictions]",
        s.points,
        s.elapsed_secs,
        s.jobs,
        s.points_per_sec(),
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions
    );
}

fn cmd_resilience(flags: &Flags, smoke: bool) -> Result<(), CliError> {
    let mut spec = if smoke {
        ResilienceSpec::smoke()
    } else {
        ResilienceSpec::power7plus()
    };
    spec.seed = flag_seed(flags)?;
    let durable = DurableOptions {
        journal: flag_journal_mode(flags)?,
        checkpoint_every: flag_checkpoint(flags)?,
        ..DurableOptions::default()
    };
    install_cancel_on_signals(&durable.cancel);
    let report = spec.run_durable(flag_jobs(flags)?, &durable)?;
    print!("{}", report.table());
    print_failed(&report.failed_cells, "cells");
    let safe = report.all_safe();
    print!("{}", report.summary_line());
    if safe {
        Ok(())
    } else {
        Err(
            "campaign unsafe: a supervised cell violated the margin, breached the floor, \
             or was quarantined"
                .into(),
        )
    }
}

fn cmd_fleet(flags: &Flags, smoke: bool) -> Result<(), CliError> {
    let engine = FleetEngine::new(flag_jobs(flags)?);
    let journal_mode = flag_journal_mode(flags)?;
    let spec = resolve_fleet_spec(flags, smoke, &journal_mode)?;
    let options = FleetRunOptions {
        durable: DurableOptions {
            journal: journal_mode,
            checkpoint_every: flag_checkpoint(flags)?,
            ..DurableOptions::default()
        },
        panic_injector: None,
    };
    install_cancel_on_signals(&options.durable.cancel);
    let report = engine.run_durable(&spec, &options)?;
    print!("{}", report.table());
    print_failed(&report.failed_shards, "shards");
    print_fleet_stats(&report);
    Ok(())
}

/// The fleet campaign being run: the built-in smoke fleet under
/// `--smoke`, flags over the full-scale defaults otherwise — except on
/// `--resume`, where the campaign is rebuilt from the journal's own
/// manifest and conflicting shape flags are refused.
fn resolve_fleet_spec(
    flags: &Flags,
    smoke: bool,
    journal_mode: &JournalMode,
) -> Result<FleetSpec, CliError> {
    if let JournalMode::Resume(dir) = journal_mode {
        for key in ["servers", "epochs", "traffic", "shard-servers"] {
            if flags.contains_key(key) {
                return Err(CliError::Message(format!(
                    "--{key} conflicts with --resume; the campaign is rebuilt from the \
                     journal's manifest"
                )));
            }
        }
        let manifest = read_manifest(dir)?;
        if manifest.kind != "fleet" {
            return Err(CliError::Message(format!(
                "journal `{}` holds a `{}` campaign, not a fleet; use `ags {}`",
                dir.display(),
                manifest.kind,
                manifest.kind
            )));
        }
        let spec = FleetSpec::from_json(&manifest.spec_json)?;
        if flags.contains_key("seed") && flag_seed(flags)? != spec.seed {
            return Err(CliError::Message(format!(
                "--seed {} does not match the journal's seed {}; drop the flag",
                flag_seed(flags)?,
                spec.seed
            )));
        }
        return Ok(spec);
    }
    let mut spec = if smoke {
        FleetSpec::smoke()
    } else {
        FleetSpec::power7plus()
    };
    spec.seed = flag_seed(flags)?;
    spec.servers = flag_usize(flags, "servers", spec.servers)?;
    spec.epochs = flag_usize(flags, "epochs", spec.epochs)?;
    spec.shard_servers = flag_usize(flags, "shard-servers", spec.shard_servers)?;
    if let Some(label) = flags.get("traffic") {
        spec.traffic = TrafficModel::parse(label).ok_or_else(|| {
            CliError::Message(format!(
                "unknown traffic model `{label}` (expected diurnal|flash-crowd|rolling-deploy)"
            ))
        })?;
    }
    Ok(spec)
}

/// Prints the fleet throughput/stealing/cache footer to stderr, keeping
/// stdout reproducible across worker counts.
fn print_fleet_stats(report: &FleetReport) {
    let s = &report.stats;
    eprintln!(
        "[fleet: {} shards in {:.2} s with {} jobs — {} stolen, \
         {} active / {} standby server-epochs, \
         cache {} hits / {} misses / {} evictions / {} contended]",
        s.shards,
        s.elapsed_secs,
        s.jobs,
        s.steals,
        s.active_server_epochs,
        s.standby_server_epochs,
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.contended
    );
}

/// Runs the campaign daemon until it drains. A clean drain maps to
/// [`CliError::Drained`] (exit [`EXIT_INTERRUPTED`]) so supervisors
/// distinguish "restart me to resume the queue" from a hard failure.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    let journal = flags
        .get("journal")
        .ok_or("serve needs --journal DIR (the durable task-queue directory)")?;
    let mut config = ServeConfig::new(
        flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7075".to_owned()),
        journal,
    );
    config.jobs = flag_jobs(flags)?;
    config.limits.max_body = flag_usize(flags, "max-body", config.limits.max_body)?;
    config.limits.max_connections =
        flag_usize(flags, "max-connections", config.limits.max_connections)?;
    let timeout_ms = flag_usize(
        flags,
        "timeout-ms",
        usize::try_from(config.limits.io_timeout.as_millis()).unwrap_or(usize::MAX),
    )?;
    config.limits.io_timeout = Duration::from_millis(timeout_ms as u64);
    let deadline_ms = flag_usize(flags, "deadline-ms", 0)?;
    config.batch_deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms as u64));
    let sample_ms = flag_usize(
        flags,
        "sample-ms",
        usize::try_from(config.sample_interval.as_millis()).unwrap_or(500),
    )?;
    config.sample_interval = Duration::from_millis(sample_ms.max(1) as u64);
    // The daemon always serves /metrics, so the registry is live even
    // without --metrics (which additionally exports a file on exit).
    ags::obs::metrics::global().set_enabled(true);
    ags::sim::telemetry::register_all();
    ags::fleet::telemetry::register_all();
    ags::serve::telemetry::register_all();
    install_cancel_on_signals(&config.drain);
    serve(config).map_err(|e| CliError::Message(e.to_string()))?;
    Err(CliError::Drained {
        journal: journal.clone(),
    })
}

/// `ags top`: the live dashboard client against a running daemon.
fn cmd_top(flags: &Flags, once: bool) -> Result<(), CliError> {
    let mut options = TopOptions::new(flags.get("addr").map_or("127.0.0.1:7075", String::as_str));
    options.once = once;
    let interval_ms = flag_usize(flags, "interval-ms", 1000)?;
    options.interval = Duration::from_millis(interval_ms.max(100) as u64);
    run_top(&options).map_err(CliError::Message)
}

/// `ags fsck`: scrub a journal directory for torn, orphaned or
/// checksum-failed segments; `--repair` truncates to the last
/// consistent prefix and removes temp-file residue.
fn cmd_fsck(flags: &Flags, repair: bool) -> Result<(), CliError> {
    let dir = flags
        .get("journal")
        .ok_or("fsck needs --journal DIR (the journal directory to scrub)")?;
    let dir = std::path::Path::new(dir);
    let fs = ags::sim::std_fs();
    if repair {
        let report =
            ags::sim::fsck::repair(dir, &*fs).map_err(|e| CliError::Message(e.to_string()))?;
        print!("{}", report.render());
        let after =
            ags::sim::fsck::scan(dir, &*fs).map_err(|e| CliError::Message(e.to_string()))?;
        if after.is_clean() {
            Ok(())
        } else {
            Err(CliError::Message(
                "damage remains after repair (unrecoverable manifest?) — see report above"
                    .to_owned(),
            ))
        }
    } else {
        let report =
            ags::sim::fsck::scan(dir, &*fs).map_err(|e| CliError::Message(e.to_string()))?;
        print!("{}", report.render());
        if report.is_clean() {
            Ok(())
        } else {
            Err(CliError::Message(
                "journal needs repair (rerun with --repair to truncate to the last consistent \
                 prefix)"
                    .to_owned(),
            ))
        }
    }
}

fn cmd_borrow(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 8)?;
    let lb = LoadlineBorrowing::new(Experiment::power7plus(flag_seed(flags)?));
    let eval = lb.evaluate(workload, threads).map_err(|e| e.to_string())?;
    println!("{} × {threads} threads:", workload.name());
    println!(
        "  consolidated : {:7.1} W, {:7.1} s, {:9.1} J  (undervolt {:.0} mV)",
        eval.consolidated.total_power().0,
        eval.consolidated.exec_time.0,
        eval.consolidated.energy.0,
        eval.consolidated.summary.socket0().undervolt.millivolts()
    );
    println!(
        "  borrowed     : {:7.1} W, {:7.1} s, {:9.1} J  (undervolt {:.0} mV)",
        eval.borrowed.total_power().0,
        eval.borrowed.exec_time.0,
        eval.borrowed.energy.0,
        eval.borrowed.summary.sockets[0].undervolt.millivolts()
    );
    println!(
        "  borrowing    : {:+.1} % power, {:+.1} % time, {:+.1} % energy",
        -eval.power_saving_percent, eval.time_change_percent, eval.energy_improvement_percent
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    let catalog = Catalog::power7plus();
    let workload = required_workload(&catalog, flags)?;
    let threads = flag_usize(flags, "threads", 12)?;
    let servers = flag_usize(flags, "servers", 4)?;
    let scheduler = ClusterScheduler::new(
        Experiment::power7plus(flag_seed(flags)?).with_ticks(30, 15),
        ClusterConfig::rack(servers),
    )
    .map_err(|e| e.to_string())?;
    let plan = scheduler
        .schedule(workload, threads)
        .map_err(|e| e.to_string())?;
    let naive = scheduler
        .naive_spread(workload, threads)
        .map_err(|e| e.to_string())?;
    println!(
        "{} × {threads} threads on {servers} servers:",
        workload.name()
    );
    for (i, share) in plan.servers.iter().enumerate() {
        println!(
            "  server {i}: {} threads, {} — {:.1} W",
            share.threads,
            if share.threads == 0 {
                "standby"
            } else if share.borrowed {
                "borrowed placement"
            } else {
                "consolidated placement"
            },
            share.total_power().0
        );
    }
    println!(
        "  hierarchical total : {:.1} W ({} active servers)",
        plan.total_power.0, plan.active_servers
    );
    println!(
        "  naive spread total : {:.1} W ({} active servers)",
        naive.total_power.0, naive.active_servers
    );
    Ok(())
}
