//! Using CPMs as "performance counters for voltage", as Sec. 4.1 does.
//!
//! ```sh
//! cargo run --example cpm_characterization
//! ```
//!
//! Runs a workload under the static guardband (adaptive control off, so
//! the CPM outputs float with the on-chip voltage), reads the monitors
//! through the AMESTER facade in both sample and sticky modes, and
//! converts readings back into millivolts of drop using the calibrated
//! tap sensitivity.

use ags::control::GuardbandMode;
use ags::sensors::CriticalPathMonitor;
use ags::sim::{Assignment, ServerConfig, Simulation};
use ags::types::{CoreId, CpmId, SocketId};
use ags::workloads::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::power7plus();
    let vips = catalog.require("vips")?;
    let assignment = Assignment::single_socket(vips, 6)?;
    let mut sim = Simulation::new(
        ServerConfig::power7plus(42),
        assignment,
        GuardbandMode::StaticGuardband,
    )?;
    sim.run(64, 16); // ~2 s warm-up, ~2 s of 32 ms telemetry windows

    let socket0 = SocketId::new(0).expect("socket 0 exists");
    let amester = sim.amester(socket0);
    println!(
        "AMESTER recorded {} windows of 40 CPMs\n",
        amester.windows().len()
    );

    // Calibrated significance: ~21 mV per tap at the 4.2 GHz target.
    let mv_per_tap = CriticalPathMonitor::NOMINAL_SENSITIVITY_MV;

    println!("core  mean sample  worst sticky  est. extra droop");
    for core in CoreId::all() {
        let cpm0 = CpmId::new(core, 0).expect("slot 0 exists");
        let mean_sample = amester.mean_sample(cpm0).unwrap_or(0.0);
        let worst_sticky = amester
            .worst_sticky(cpm0)
            .map_or(0.0, |r| f64::from(r.value()));
        let droop_mv = (mean_sample - worst_sticky).max(0.0) * mv_per_tap;
        println!("{core}   {mean_sample:>10.2}  {worst_sticky:>12.0}  {droop_mv:>13.0} mV");
    }
    println!();
    println!("Sample mode shows the steady margin each core has left; the gap to");
    println!("the sticky (worst-case) reading is the depth of the deepest di/dt");
    println!("droop in the window — the decomposition behind the paper's Fig. 9.");
    Ok(())
}
