//! Loadline borrowing: let the AGS scheduler decide where threads go.
//!
//! ```sh
//! cargo run --example loadline_borrowing
//! ```
//!
//! Evaluates consolidation against loadline borrowing for three workload
//! personalities — a bandwidth-starved sorter, a communication-heavy
//! solver, and an ordinary parallel renderer — and shows the scheduler
//! picking the right schedule for each (the paper's Sec. 5.1 plus the
//! Fig. 14 extremes).

use ags::scheduling::{AgsScheduler, LoadlineBorrowing};
use ags::sim::Experiment;
use ags::workloads::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let experiment = Experiment::power7plus(42);
    let catalog = Catalog::power7plus();
    let evaluator = LoadlineBorrowing::new(experiment.clone());
    let scheduler = AgsScheduler::new(experiment);

    println!("Loadline borrowing vs workload consolidation (8 threads)\n");
    for name in ["radix", "lu_ncb", "raytrace"] {
        let workload = catalog.require(name)?;
        let eval = evaluator.evaluate(workload, 8)?;
        let decision = scheduler.place(workload, 8)?;

        println!("{name}:");
        println!(
            "  consolidated : {:6.1} W, {:6.1} s, {:8.1} J",
            eval.consolidated.total_power().0,
            eval.consolidated.exec_time.0,
            eval.consolidated.energy.0
        );
        println!(
            "  borrowed     : {:6.1} W, {:6.1} s, {:8.1} J",
            eval.borrowed.total_power().0,
            eval.borrowed.exec_time.0,
            eval.borrowed.energy.0
        );
        println!(
            "  borrowing    : {:+.1} % power, {:+.1} % time, {:+.1} % energy",
            -eval.power_saving_percent, eval.time_change_percent, eval.energy_improvement_percent
        );
        println!(
            "  AGS decision : {} (advantage {:.1} %)\n",
            if decision.borrowed {
                "balance across both sockets"
            } else {
                "keep consolidated on one socket"
            },
            decision.advantage_percent
        );
    }
    println!("Bandwidth-bound work gains a second memory subsystem; communication-");
    println!("heavy work pays interchip latency and is left consolidated.");
    Ok(())
}
