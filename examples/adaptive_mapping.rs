//! Adaptive mapping: protect a latency-critical job from malicious
//! co-runners.
//!
//! ```sh
//! cargo run --example adaptive_mapping
//! ```
//!
//! Reproduces the paper's Sec. 5.2 scenario end to end: WebSearch is
//! blindly colocated with a heavy co-runner, the QoS monitor catches the
//! violations, and the MIPS-predictor-guided scheduler swaps the
//! co-runner until the 0.5 s p90 target holds.

use ags::scheduling::{AdaptiveMappingScheduler, JobSpec, MipsFrequencyPredictor, QosSpec};
use ags::sim::Experiment;
use ags::workloads::{co_runner, Catalog, CoRunnerClass, WebSearch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let experiment = Experiment::power7plus(42).with_ticks(30, 15);
    let catalog = Catalog::power7plus();

    // Train the frequency predictor the way the paper does: stress all
    // cores with a spread of workloads and fit chip MIPS → frequency.
    println!("training MIPS→frequency predictor on the benchmark catalog…");
    let mut training = Vec::new();
    for name in [
        "mcf",
        "radix",
        "gcc",
        "sphinx3",
        "raytrace",
        "dealII",
        "swaptions",
        "povray",
    ] {
        let w = catalog.require(name)?;
        let (mips, freq) = ags::scheduling::predictor::measure_point(&experiment, w)?;
        training.push((mips, freq.0));
    }
    let predictor = MipsFrequencyPredictor::fit(&training)?;
    println!(
        "  fitted: slope {:.2} MHz/kMIPS, rmse {:.2} %\n",
        predictor.slope_mhz_per_mips() * 1000.0,
        predictor.rmse_percent()
    );

    let job = JobSpec::critical(
        "websearch-frontend",
        catalog.require("websearch")?.clone(),
        QosSpec::websearch(),
    );
    let pool = vec![
        co_runner(CoRunnerClass::Light),
        co_runner(CoRunnerClass::Medium),
        co_runner(CoRunnerClass::Heavy),
    ];
    let mut scheduler = AdaptiveMappingScheduler::new(
        experiment,
        predictor,
        job,
        WebSearch::power7plus(),
        pool,
        2, // start blindly colocated with the heavy co-runner
        42,
    )?;
    scheduler.set_windows_per_quantum(45);

    println!("quantum  co-runner        freq MHz  p90 violations  action");
    for _ in 0..6 {
        let report = scheduler.run_quantum()?;
        println!(
            "{:>7}  {:<15} {:>9.0}  {:>13.1} %  {}",
            report.quantum,
            report.co_runner,
            report.chip_frequency.0,
            report.violation_rate * 100.0,
            report
                .swapped_to
                .map_or_else(|| "-".to_owned(), |to| format!("swap → {to}"))
        );
    }
    println!(
        "\nfinal co-runner: {} (lifetime violation rate {:.1} %)",
        scheduler.current_co_runner().name(),
        scheduler.monitor().lifetime_violation_rate() * 100.0
    );
    Ok(())
}
