//! How chip frequency shapes tail latency for a datacenter service.
//!
//! ```sh
//! cargo run --example websearch_qos
//! ```
//!
//! Sweeps the chip frequency across the range the co-runners of Fig. 15
//! can induce and prints WebSearch's latency percentiles and QoS
//! violation rate at each point — the raw material behind Fig. 17.

use ags::scheduling::QosSpec;
use ags::types::{MegaHertz, Seconds};
use ags::workloads::WebSearch;

fn main() {
    let service = WebSearch::power7plus();
    let qos = QosSpec::websearch();

    println!(
        "WebSearch: λ = {} qps, mean service {:.1} ms at {:.0} MHz (ρ = {:.2})\n",
        service.arrival_qps,
        service.mean_service.millis(),
        service.ref_frequency.0,
        service.utilization_at(service.ref_frequency)
    );
    println!("freq MHz   util   p50 ms   p90 ms   p99 ms   violations");
    for mhz in (4440..=4680).step_by(40) {
        let freq = MegaHertz(f64::from(mhz));
        let stats = service.latency_stats(freq, Seconds(300.0), 42);
        let violations = service.violation_rate(freq, qos.p90_target, 300, 42);
        println!(
            "{:>8}   {:.2}  {:>7.0}  {:>7.0}  {:>7.0}  {:>9.1} %",
            mhz,
            service.utilization_at(freq),
            stats.p50.millis(),
            stats.p90.millis(),
            stats.p99.millis(),
            violations * 100.0
        );
    }
    println!();
    println!("Near saturation a ~3 % clock loss multiplies through queueing into");
    println!("a much larger tail-latency loss — which is why colocation choices");
    println!("on an adaptive-guardband chip are a QoS decision, not just a");
    println!("throughput decision.");
}
