//! Quickstart: measure what adaptive guardbanding buys on a simulated
//! POWER7+ server.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Runs raytrace on one and on eight cores under all three guardbanding
//! modes and prints the power/frequency picture the paper's Sec. 3 opens
//! with: big benefits at light load, eroded benefits at full load.

use ags::control::GuardbandMode;
use ags::sim::{Assignment, Experiment};
use ags::workloads::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let experiment = Experiment::power7plus(42);
    let catalog = Catalog::power7plus();
    let raytrace = catalog.require("raytrace")?;

    println!("POWER7+ adaptive guardbanding — quickstart\n");
    for cores in [1usize, 8] {
        let assignment = Assignment::single_socket(raytrace, cores)?;

        let static_run = experiment.run(&assignment, GuardbandMode::StaticGuardband)?;
        let undervolt = experiment.run(&assignment, GuardbandMode::Undervolt)?;
        let overclock = experiment.run(&assignment, GuardbandMode::Overclock)?;

        let saving = (static_run.chip_power().0 - undervolt.chip_power().0)
            / static_run.chip_power().0
            * 100.0;
        let boost = (overclock.summary.avg_running_freq.0 - static_run.summary.avg_running_freq.0)
            / static_run.summary.avg_running_freq.0
            * 100.0;

        println!("raytrace on {cores} core(s):");
        println!(
            "  static guardband : {:6.1} W at {:.0} MHz",
            static_run.chip_power().0,
            static_run.summary.avg_running_freq.0
        );
        println!(
            "  undervolting     : {:6.1} W  ({saving:.1} % power saving, {:.0} mV undervolt)",
            undervolt.chip_power().0,
            undervolt.summary.socket0().undervolt.millivolts()
        );
        println!(
            "  overclocking     : {:.0} MHz (+{boost:.1} % clock)",
            overclock.summary.avg_running_freq.0
        );
        println!();
    }
    println!("Note how both benefits shrink at eight cores: the loadline and");
    println!("IR drop consume the margin the CPMs would otherwise reclaim.");
    Ok(())
}
