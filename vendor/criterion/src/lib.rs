//! Offline vendored stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`criterion_group!`],
//! [`criterion_main!`] and a re-exported [`black_box`] — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//!
//! Run modes (decided from the process arguments):
//!
//! * `--bench` (what `cargo bench` passes): timed runs — each
//!   benchmark is warmed up, then sampled `sample_size` times, and the
//!   median per-iteration time is printed.
//! * anything else (e.g. `cargo test` smoke-running a
//!   `harness = false` target): each benchmark body executes exactly
//!   once, so the target stays a fast compile-and-smoke check.
//!
//! Like real criterion, the first non-flag argument is a substring
//! filter: `cargo bench --bench sweep -- sweep_engine_warm` runs only
//! benchmarks whose name contains `sweep_engine_warm`. Filtered-out
//! benchmarks are skipped entirely (their setup closures still run;
//! their routines do not).

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    timed: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            timed: std::env::args().any(|a| a == "--bench"),
            // The first non-flag argument (after the binary path) is a
            // name filter, matching real criterion's CLI.
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configures measurement time; accepted for API compatibility.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark, unless a CLI filter excludes it.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            timed: self.timed,
        };
        if self.timed {
            for _ in 0..self.sample_size {
                routine(&mut bencher);
            }
            bencher.samples.sort_unstable();
            let median = bencher.samples[bencher.samples.len() / 2];
            println!(
                "bench: {name:<44} median {:>12} / iter ({} samples)",
                format_ns(median),
                bencher.samples.len()
            );
        } else {
            routine(&mut bencher);
            println!("bench: {name:<44} smoke-tested (pass --bench to time)");
        }
        self
    }
}

/// Times closures inside one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<u128>,
    timed: bool,
}

impl Bencher {
    /// Runs the routine and records its per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.timed {
            // One un-timed warm-up, then a timed batch.
            black_box(routine());
            let iters = 3u32;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() / u128::from(iters));
        } else {
            black_box(routine());
        }
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        #[allow(clippy::cast_precision_loss)]
        let s = ns as f64 / 1e9;
        format!("{s:.3} s")
    } else if ns >= 1_000_000 {
        #[allow(clippy::cast_precision_loss)]
        let ms = ns as f64 / 1e6;
        format!("{ms:.3} ms")
    } else if ns >= 1_000 {
        #[allow(clippy::cast_precision_loss)]
        let us = ns as f64 / 1e3;
        format!("{us:.3} µs")
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 5,
            timed: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut c = Criterion {
            sample_size: 4,
            timed: true,
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        // 4 samples × (1 warm-up + 3 timed iterations).
        assert_eq!(runs, 16);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            sample_size: 5,
            timed: false,
            filter: Some("warm".to_owned()),
        };
        let mut runs = Vec::new();
        c.bench_function("sweep_engine_cold", |b| b.iter(|| runs.push("cold")))
            .bench_function("sweep_engine_warm", |b| b.iter(|| runs.push("warm")))
            .bench_function("campaign_warm_journal", |b| b.iter(|| runs.push("journal")));
        assert_eq!(runs, ["warm", "journal"], "substring match, like criterion");
    }

    #[test]
    fn nanosecond_formatting_scales() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 µs");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
