//! Value-generation strategies.

use crate::runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a
/// strategy maps an RNG state straight to a value, and failing cases
/// are reported (and persisted) by seed.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous collections
    /// (see [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy built by [`crate::prop_oneof!`]: uniform choice among
/// alternatives.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union of alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                #[allow(clippy::cast_possible_truncation)]
                { (self.start as i128 + offset) as $t }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                #[allow(clippy::cast_possible_truncation)]
                { (*self.start() as i128 + offset) as $t }
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                #[allow(clippy::cast_possible_truncation)]
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                #[allow(clippy::cast_possible_truncation)]
                let unit = rng.unit_f64() as $t;
                self.start() + unit * (self.end() - self.start())
            }
        }
    )*};
}

float_ranges!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=8).generate(&mut rng);
            assert!((1..=8).contains(&y));
            let f = (-2.0f64..-0.5).generate(&mut rng);
            assert!((-2.0..-0.5).contains(&f));
        }
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let x = (-50i64..-10).generate(&mut rng);
            assert!((-50..-10).contains(&x));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::new(11);
        let u = Union::new(vec![(0usize..3).boxed(), (10usize..13).boxed()]);
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let x = u.generate(&mut rng);
            assert!((0..3).contains(&x) || (10..13).contains(&x));
            low |= x < 3;
            high |= x >= 10;
        }
        assert!(low && high, "both branches of the union must be taken");
        let mapped = (0usize..5).prop_map(|x| x * 2);
        assert_eq!(mapped.generate(&mut rng) % 2, 0);
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(41usize).generate(&mut rng), 41);
    }
}
