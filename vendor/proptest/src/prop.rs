//! The `prop::` namespace (`prop::collection`, `prop::array`),
//! mirroring the real crate's module layout.

/// Collection strategies.
pub mod collection {
    use crate::runner::TestRng;
    use crate::Strategy;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `len` and elements
    /// from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::runner::TestRng;
    use crate::Strategy;
    use std::fmt::Debug;

    /// Generates `[T; 8]` arrays from one element strategy.
    #[must_use]
    pub fn uniform8<S: Strategy>(element: S) -> Uniform<S, 8> {
        Uniform { element }
    }

    /// The strategy returned by [`uniform8`].
    #[derive(Debug, Clone)]
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N>
    where
        S::Value: Debug,
    {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::TestRng;
    use crate::Strategy;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::new(5);
        let s = super::collection::vec(0.0f64..1.0, 3..30);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..30).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn uniform8_fills_all_slots() {
        let mut rng = TestRng::new(5);
        let arr = super::array::uniform8(1.0f64..2.0).generate(&mut rng);
        assert_eq!(arr.len(), 8);
        assert!(arr.iter().all(|x| (1.0..2.0).contains(x)));
    }
}
