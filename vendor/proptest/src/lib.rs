//! Offline vendored mini-proptest.
//!
//! The build environment has no crates.io access, so the real
//! `proptest` cannot be fetched. This crate reimplements the subset of
//! its API the workspace uses, with the same macro surface:
//!
//! * [`proptest!`] with `pattern in strategy` parameters and an
//!   optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * range strategies over the primitive numeric types, tuples of
//!   strategies, `prop::collection::vec`, `prop::array::uniform8`,
//!   [`strategy::Just`] and `.prop_map(..)`,
//! * failing-case persistence to `proptest-regressions/` (seeds are
//!   replayed before fresh cases on the next run).
//!
//! Differences from the real crate: generation is deterministic by
//! default (override with `PROPTEST_RNG_SEED`), there is no shrinking —
//! the failing input and its seed are reported verbatim — and the
//! default case count is 64 (override with `PROPTEST_CASES` or
//! `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

pub mod prop;
pub mod runner;
pub mod strategy;

pub use runner::ProptestConfig;
pub use strategy::{Just, Strategy};

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each function runs its body across many
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::runner::run(
                    &config,
                    ::std::env!("CARGO_MANIFEST_DIR"),
                    ::std::file!(),
                    ::std::stringify!($name),
                    &strategy,
                    // Bodies may `return Ok(())` to accept a case early
                    // (real-proptest idiom), so each runs in a closure
                    // returning `Result`; an explicit `Err` fails the case.
                    |($($pat,)+)| {
                        let outcome = (move || -> ::std::result::Result<
                            (),
                            ::std::boxed::Box<dyn ::std::fmt::Debug>,
                        > {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                        if let ::std::result::Result::Err(e) = outcome {
                            panic!("proptest case returned Err: {e:?}");
                        }
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            ::std::panic!(
                "prop_assert failed: {} ({}:{})",
                ::std::stringify!($cond), ::std::file!(), ::std::line!()
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            ::std::panic!(
                "prop_assert failed: {} ({}:{})",
                ::std::format!($($fmt)+), ::std::file!(), ::std::line!()
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{l:?} != {r:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{l:?} != {r:?}: {}", ::std::format!($($fmt)+));
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{l:?} == {r:?}");
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::runner::Rejected);
        }
    };
}

/// Chooses uniformly between several strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
