//! The case runner: deterministic seeds, rejection handling, and
//! regression persistence.

use crate::Strategy;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each test runs.
    pub cases: u32,
    /// How many `prop_assume!` rejections are tolerated before the test
    /// errors out as too narrow.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// The panic payload `prop_assume!` throws to reject a case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// A small, fast, deterministic RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A float in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (self.next_u64() >> 11) as f64;
        mantissa / (1u64 << 53) as f64
    }

    /// A usize in `range` (empty ranges yield the start).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end.saturating_sub(range.start);
        if span == 0 {
            return range.start;
        }
        #[allow(clippy::cast_possible_truncation)]
        let offset = (self.next_u64() % span as u64) as usize;
        range.start + offset
    }
}

fn fnv64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Default base seed; every (file, test) pair derives its own stream
/// from it, so runs are reproducible without a regressions file.
const DEFAULT_RNG_SEED: u64 = 0x5eed_0000_0000_0042;

fn base_seed(file: &str, test_name: &str) -> u64 {
    let env = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RNG_SEED);
    env ^ fnv64(file) ^ fnv64(test_name).rotate_left(17)
}

/// Runs one property test: replays persisted regression seeds first,
/// then `config.cases` fresh cases.
///
/// # Panics
///
/// Panics (like a failed `assert!`) when a case fails; the failing
/// seed is persisted under `proptest-regressions/` for replay.
pub fn run<S, F>(
    config: &ProptestConfig,
    manifest_dir: &str,
    file: &str,
    test_name: &str,
    strategy: &S,
    mut test: F,
) where
    S: Strategy,
    F: FnMut(S::Value),
{
    let regression_path = regression_file(manifest_dir, file);
    let base = base_seed(file, test_name);
    let mut rejects = 0u32;

    for seed in load_regression_seeds(&regression_path, test_name) {
        run_case(
            strategy,
            &mut test,
            seed,
            "regression",
            test_name,
            &regression_path,
            &mut rejects,
        );
    }

    let mut case = 0u32;
    let mut stream = 0u64;
    while case < config.cases {
        let seed = TestRng::new(base.wrapping_add(stream)).next_u64();
        stream += 1;
        let accepted = run_case(
            strategy,
            &mut test,
            seed,
            "generated",
            test_name,
            &regression_path,
            &mut rejects,
        );
        if accepted {
            case += 1;
        } else {
            assert!(
                rejects <= config.max_global_rejects,
                "proptest: too many prop_assume! rejections in {test_name} \
                 ({rejects}; the precondition is too narrow)"
            );
        }
    }
}

/// Runs one case; returns false when `prop_assume!` rejected it.
fn run_case<S, F>(
    strategy: &S,
    test: &mut F,
    seed: u64,
    kind: &str,
    test_name: &str,
    regression_path: &Path,
    rejects: &mut u32,
) -> bool
where
    S: Strategy,
    F: FnMut(S::Value),
{
    let value = strategy.generate(&mut TestRng::new(seed));
    let result = catch_unwind(AssertUnwindSafe(|| test(value)));
    match result {
        Ok(()) => true,
        Err(payload) if payload.is::<Rejected>() => {
            *rejects += 1;
            false
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            let shown = strategy.generate(&mut TestRng::new(seed));
            persist_seed(regression_path, test_name, seed);
            eprintln!(
                "proptest: {test_name} failed on {kind} case (seed {seed:#018x})\n\
                 \x20 input: {shown:?}\n\
                 \x20 panic: {message}\n\
                 \x20 persisted to {}",
                regression_path.display()
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn regression_file(manifest_dir: &str, file: &str) -> PathBuf {
    let stem = Path::new(file).file_stem().map_or_else(
        || "unknown".to_owned(),
        |s| s.to_string_lossy().into_owned(),
    );
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

fn load_regression_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("cc"), Some(name), Some(seed)) if name == test_name => {
                    let digits = seed.trim_start_matches("0x");
                    u64::from_str_radix(digits, 16).ok()
                }
                _ => None,
            }
        })
        .collect()
}

fn persist_seed(path: &Path, test_name: &str, seed: u64) {
    let line = format!("cc {test_name} {seed:#018x}");
    let existing = fs::read_to_string(path).unwrap_or_default();
    if existing.lines().any(|l| l == line) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let header = if existing.is_empty() {
        "# Seeds for failing cases persisted by the vendored mini-proptest.\n\
         # Format: `cc <test-name> <hex seed>`; replayed before fresh cases.\n"
    } else {
        ""
    };
    let _ = fs::write(path, format!("{existing}{header}{line}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn base_seeds_differ_per_test() {
        assert_ne!(base_seed("a.rs", "t1"), base_seed("a.rs", "t2"));
        assert_ne!(base_seed("a.rs", "t1"), base_seed("b.rs", "t1"));
    }

    #[test]
    fn regression_lines_round_trip() {
        let dir = std::env::temp_dir().join("mini-proptest-test");
        let path = dir.join("example.txt");
        let _ = fs::remove_file(&path);
        persist_seed(&path, "my_test", 0xdead_beef);
        persist_seed(&path, "my_test", 0xdead_beef);
        persist_seed(&path, "other_test", 0x1234);
        assert_eq!(load_regression_seeds(&path, "my_test"), vec![0xdead_beef]);
        assert_eq!(load_regression_seeds(&path, "other_test"), vec![0x1234]);
        let _ = fs::remove_file(&path);
    }
}
