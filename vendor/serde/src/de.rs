//! Deserialization support types (mirrors `serde::de` for the subset
//! the workspace uses).

use std::fmt;

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(message: String) -> Self {
        Error { message }
    }

    /// The error text.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Prefixes the message with the context of an enclosing field,
    /// so nested failures read like a path.
    #[must_use]
    pub fn in_context(self, context: &str) -> Self {
        Error {
            message: format!("{context}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type deserializable without borrowing from the input — with this
/// crate's owned [`crate::Value`] model, simply every [`crate::Deserialize`].
pub trait DeserializeOwned: crate::Deserialize {}

impl<T: crate::Deserialize> DeserializeOwned for T {}
