//! Built-in JSON text format.
//!
//! The real ecosystem splits this into `serde_json`; the workspace
//! deliberately ships no separate format crate, so the offline facade
//! hosts the one text format everything uses. Output is compact and
//! deterministic (map entries keep derive declaration order, floats use
//! Rust's shortest round-trip form).

use crate::de::Error;
use crate::{Deserialize, Serialize, Value};

/// Serializes a value to compact JSON text.
#[must_use]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] when the text is malformed or does not match the
/// target type's shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&Value::parse_json(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1usize, 2.5f64), (3, 4.75)];
        let text = to_string(&xs);
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn deterministic_output() {
        let xs = [0.1f64, 0.2, 0.30000000000000004];
        assert_eq!(to_string(&xs), to_string(&xs));
    }
}
