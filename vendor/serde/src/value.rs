//! The self-describing value tree all (de)serialization goes through.

use crate::de::Error;
use std::fmt::Write as _;

/// A dynamically-typed serialized value.
///
/// Maps preserve insertion order (derive emits fields in declaration
/// order), which keeps the JSON text deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (both signed and unsigned fit in `i128`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The integer content.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value is not an integer (floats with
    /// an exact integral value are accepted, as JSON does not keep the
    /// distinction).
    pub fn as_int(&self) -> Result<i128, Error> {
        match self {
            Value::Int(n) => Ok(*n),
            #[allow(clippy::cast_possible_truncation)]
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e18 => Ok(*f as i128),
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The float content (integers widen losslessly where possible).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value is not numeric.
    pub fn as_float(&self) -> Result<f64, Error> {
        match self {
            Value::Float(f) => Ok(*f),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// The sequence content.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value is not a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    /// The map content.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value is not a map.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }

    /// Looks up a map entry by key.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value is not a map or the key is
    /// absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }

    /// Renders compact JSON text. Deterministic: equal values produce
    /// byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no literals for these; a tagged string
                    // keeps the round-trip lossless.
                    let _ = write!(out, "{{\"$float\":\"{f}\"}}");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed input or trailing garbage.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
        // The tagged non-finite float encoding round-trips back into a
        // float value.
        if let [(key, Value::Str(s))] = entries.as_slice() {
            if key == "$float" {
                let f = match s.as_str() {
                    "inf" => f64::INFINITY,
                    "-inf" => f64::NEG_INFINITY,
                    _ => f64::NAN,
                };
                return Ok(Value::Float(f));
            }
        }
        Ok(Value::Map(entries))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string".to_owned()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("dangling escape".to_owned()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape".to_owned()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u escape".to_owned()))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string".to_owned())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number".to_owned()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("ray\"trace".into())),
            ("cores".into(), Value::Int(8)),
            ("power".into(), Value::Float(61.25)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(Value::parse_json(&text).unwrap(), v);
    }

    #[test]
    fn float_text_is_shortest_round_trip() {
        let v = Value::Float(0.1 + 0.2);
        let text = v.to_json();
        assert_eq!(Value::parse_json(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = Value::Float(f).to_json();
            assert_eq!(Value::parse_json(&text).unwrap(), Value::Float(f));
        }
        let nan = Value::Float(f64::NAN).to_json();
        match Value::parse_json(&nan).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("1 2").is_err());
        assert!(Value::parse_json("nul").is_err());
    }
}
