//! Offline vendored stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real `serde` cannot be fetched. This crate provides the small
//! slice of the serde surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling
//!   `serde_derive` proc-macro crate, re-exported under the `derive`
//!   feature exactly like the real facade),
//! * the `Serialize` / `Deserialize` traits and
//!   `de::DeserializeOwned`, usable as generic bounds,
//! * implementations for the primitive, tuple, array, `Vec`, `Option`
//!   and `String` types that appear in derived structs.
//!
//! Unlike real serde the data model is a concrete self-describing
//! [`Value`] tree rather than a visitor pipeline, and — because the
//! workspace deliberately ships no separate format crate — a built-in
//! JSON text round-trip lives in [`json`]. The derive output and the
//! trait shapes are deterministic: serializing the same value twice
//! yields byte-identical text, which the sweep determinism suite relies
//! on.

#![forbid(unsafe_code)]

pub mod de;
pub mod json;
mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be represented as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] when the tree does not match the expected
    /// shape.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_int()?;
                <$t>::try_from(n).map_err(|_| de::Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                #[allow(clippy::cast_possible_truncation)]
                v.as_float().map(|f| f as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::new(format!("expected one char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v.as_seq()?;
        if items.len() != N {
            return Err(de::Error::new(format!(
                "expected array of {N}, got {} items",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| de::Error::new("array length changed during parse".to_owned()))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let items = v.as_seq()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(de::Error::new(format!(
                        "expected tuple of {expected}, got {} items", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => other.to_json(),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (1usize, "x".to_owned());
        assert_eq!(
            <(usize, String)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(<[f64; 2]>::from_value(&Value::Seq(vec![Value::Float(1.0)])).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
