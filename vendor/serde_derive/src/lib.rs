//! Offline vendored `#[derive(Serialize, Deserialize)]` for the
//! vendored `serde` facade.
//!
//! Implemented directly on `proc_macro` token streams (the build
//! environment has no crates.io access, so `syn`/`quote` are
//! unavailable). Supports the item shapes this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently, the
//!   same default the real serde applies to newtype structs),
//! * unit structs,
//! * enums with unit and tuple variants.
//!
//! `#[serde(...)]` helper attributes are accepted and ignored (the only
//! one the workspace uses is `transparent` on newtypes, which is
//! already the default behaviour here). Generic items are rejected with
//! a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        name = item.name,
                        v = v.name
                    ),
                    arity => {
                        let binds: Vec<String> = (0..arity).map(|i| format!("f{i}")).collect();
                        let fields: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let payload = if arity == 1 {
                            fields[0].clone()
                        } else {
                            format!("::serde::Value::Seq(::std::vec![{}])", fields.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {payload})]),",
                            name = item.name,
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)\
                         .map_err(|e| e.in_context(\"field `{f}`\"))?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", "),
                name = item.name
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))",
            name = item.name
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_seq()?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::new(\
                 ::std::format!(\"expected {n} items, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))",
                name = item.name,
                inits = inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})", name = item.name),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        name = item.name,
                        v = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    if v.arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(payload)?)),",
                            name = item.name,
                            v = v.name
                        )
                    } else {
                        let parts: Vec<String> = (0..v.arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{ let items = payload.as_seq()?; \
                             if items.len() != {arity} {{ \
                             return ::std::result::Result::Err(::serde::de::Error::new(\
                             ::std::string::String::from(\"wrong tuple arity for {v}\"))); }} \
                             ::std::result::Result::Ok({name}::{v}({parts})) }},",
                            name = item.name,
                            v = v.name,
                            arity = v.arity,
                            parts = parts.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::de::Error::new(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {data_arms}\n\
                 other => ::std::result::Result::Err(::serde::de::Error::new(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::de::Error::new(\
                 ::std::format!(\"expected enum {name}, got {{}}\", other.kind()))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
                name = item.name
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn compile_error(message: &str) -> TokenStream {
    format!("::core::compile_error!({message:?});")
        .parse()
        .expect("compile_error! parses")
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    arity: usize,
}

struct Item {
    name: String,
    shape: Shape,
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut pos = 0;
        skip_attributes_and_visibility(&tokens, &mut pos);
        let keyword = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
        };
        pos += 1;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected item name, got {other:?}")),
        };
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "vendored serde_derive does not support generic items (`{name}`)"
            ));
        }
        match keyword.as_str() {
            "struct" => match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                    name,
                    shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
                }),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                    name,
                    shape: Shape::TupleStruct(count_top_level_fields(g.stream())),
                }),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                    name,
                    shape: Shape::UnitStruct,
                }),
                other => Err(format!("unsupported struct body: {other:?}")),
            },
            "enum" => match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                    name,
                    shape: Shape::Enum(parse_variants(g.stream())?),
                }),
                other => Err(format!("unsupported enum body: {other:?}")),
            },
            other => Err(format!("cannot derive for `{other}` items")),
        }
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `{ attrs vis name: Type, ... }` field lists into names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(name);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket
/// depth aware; bracketed/parenthesized types arrive as single groups).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple-struct/tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

/// Parses enum variants (unit, tuple, or explicit-discriminant).
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let mut arity = 0;
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_fields(g.stream());
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive does not support struct variants (`{name}`)"
                ));
            }
            _ => {}
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            // Skip the discriminant expression up to the next comma.
            skip_type(&tokens, &mut pos);
        }
        variants.push(Variant { name, arity });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(variants)
}
