//! Durability contract of the campaign runner, end to end.
//!
//! The headline guarantee: a campaign that is killed outright (SIGKILL —
//! no handler, no cleanup) resumes from its journal and produces output
//! byte-identical to an uninterrupted run, at any worker count. And a
//! grid point that keeps panicking is quarantined after bounded retries
//! without disturbing any other point's bits.

use ags::control::GuardbandMode;
use ags::sim::{
    DurableOptions, RetryPolicy, SolveCache, SweepEngine, SweepReport, SweepRunOptions, SweepSpec,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// An engine with its own private cache, so per-test hit/miss counts
/// are not polluted by other tests in the same process.
fn engine(jobs: usize) -> SweepEngine {
    SweepEngine::with_cache(jobs, Arc::new(SolveCache::new()))
}

/// A fresh scratch directory under the target-local tmpdir, unique per
/// test so parallel test binaries never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ags-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the real `ags` binary and returns (exit code, stdout bytes).
fn run_ags(args: &[&str]) -> (Option<i32>, Vec<u8>) {
    let out = Command::new(env!("CARGO_BIN_EXE_ags"))
        .args(args)
        .output()
        .expect("spawn ags");
    (out.status.code(), out.stdout)
}

/// A campaign slow enough (in a debug build) that SIGKILL lands while
/// points are still being solved, yet quick enough for CI.
fn slow_spec() -> SweepSpec {
    SweepSpec::new(
        vec!["raytrace".into(), "mcf".into()],
        vec![1, 2, 3, 4, 5, 6],
    )
    .with_modes(vec![
        GuardbandMode::StaticGuardband,
        GuardbandMode::Undervolt,
    ])
    .with_ticks(1600, 400)
}

#[test]
fn sigkilled_sweep_resumes_byte_identical() {
    let dir = scratch("kill");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, slow_spec().to_json()).expect("write spec");
    let spec_arg = spec_path.to_str().expect("utf-8 path");
    let journal = dir.join("journal");
    let journal_arg = journal.to_str().expect("utf-8 path");
    let ref_csv = dir.join("ref.csv");
    let res_csv = dir.join("res.csv");

    // Uninterrupted reference at --jobs 2.
    let (code, reference) = run_ags(&[
        "sweep",
        "--spec",
        spec_arg,
        "--jobs",
        "2",
        "--csv",
        ref_csv.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "reference run failed");

    // Journaled run, checkpointing every completed point; SIGKILL it as
    // soon as two segments have been flushed — mid-campaign, no chance
    // to clean up.
    let mut child = Command::new(env!("CARGO_BIN_EXE_ags"))
        .args([
            "sweep",
            "--spec",
            spec_arg,
            "--jobs",
            "2",
            "--journal",
            journal_arg,
            "--checkpoint",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn journaled sweep");
    let deadline = Instant::now() + Duration::from_secs(60);
    while segment_count(&journal) < 2 && Instant::now() < deadline {
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill it; resume still works
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().ok();
    child.wait().expect("reap child");
    assert!(
        segment_count(&journal) >= 1,
        "no checkpoint was flushed before the kill"
    );

    // Resume at a *different* worker count; stdout and CSV must match
    // the uninterrupted reference byte for byte.
    let (code, resumed) = run_ags(&[
        "sweep",
        "--resume",
        journal_arg,
        "--jobs",
        "1",
        "--csv",
        res_csv.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "resume failed");
    assert_eq!(reference, resumed, "resumed stdout diverged");
    assert_eq!(
        std::fs::read(&ref_csv).expect("read reference csv"),
        std::fs::read(&res_csv).expect("read resumed csv"),
        "resumed csv diverged"
    );

    // A resume under a different identity is refused outright.
    let (code, _) = run_ags(&["sweep", "--resume", journal_arg, "--seed", "9"]);
    assert_eq!(code, Some(1), "mismatched seed must be rejected");

    let _ = std::fs::remove_dir_all(&dir);
}

fn segment_count(journal: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(journal) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .count()
}

/// The 16-point grid the quarantine property runs on.
fn quarantine_spec() -> SweepSpec {
    SweepSpec::new(vec!["raytrace".into(), "gcc".into()], vec![1, 2, 4, 8])
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_ticks(6, 3)
}

/// The uninterrupted, injection-free reference, solved once per process.
fn clean_report() -> &'static SweepReport {
    static CLEAN: OnceLock<SweepReport> = OnceLock::new();
    CLEAN.get_or_init(|| engine(2).run(&quarantine_spec()).expect("clean sweep"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The quarantine property: one always-panicking grid point never
    /// aborts the campaign, lands in `failed_points` exactly once with
    /// the policy's attempt count, and leaves every other point
    /// bit-identical — at any worker count.
    #[test]
    fn injected_panic_is_quarantined_without_disturbing_other_points(
        victim in 0usize..16,
        jobs in 1usize..5,
    ) {
        let spec = quarantine_spec();
        let options = SweepRunOptions {
            durable: DurableOptions {
                retry: RetryPolicy { max_attempts: 2, backoff_ms: 0 },
                ..DurableOptions::default()
            },
            panic_injector: Some(Arc::new(move |p| p.index == victim)),
        };
        let report = engine(jobs)
            .run_durable(&spec, &options)
            .expect("a panicking point must not abort the campaign");

        prop_assert_eq!(report.failed_points.len(), 1);
        let failed = &report.failed_points[0];
        prop_assert_eq!(failed.index, victim);
        prop_assert_eq!(failed.attempts, 2);
        prop_assert!(failed.reason.contains("injected panic"));

        // Every surviving point is bit-identical to the clean run.
        let clean = clean_report();
        prop_assert_eq!(report.results.len(), spec.len() - 1);
        for r in &report.results {
            prop_assert_ne!(r.point.index, victim);
            let reference = &clean.results[r.point.index];
            prop_assert_eq!(
                serde::json::to_string(r),
                serde::json::to_string(reference)
            );
        }
    }
}
