//! Crash-recovery and graceful-drain contract of `ags serve`, end to
//! end against the real binary.
//!
//! The headline guarantees, mirroring `tests/durability.rs` for the
//! daemon: a daemon killed outright (SIGKILL — no handler, no cleanup)
//! mid-batch restarts from its task-queue journal alone, re-runs every
//! acknowledged task to a terminal state, and serves results
//! byte-identical to standalone `ags sweep` runs; and SIGTERM drains
//! gracefully — the in-flight batch is checkpointed, the process exits
//! 75 ([`EXIT_TEMPFAIL`]), and no acknowledged task is lost.

use ags::control::GuardbandMode;
use ags::sim::SweepSpec;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// BSD `EX_TEMPFAIL`: the drained-resumable exit status.
const EXIT_TEMPFAIL: i32 = 75;

/// A fresh scratch directory, unique per test so parallel test binaries
/// never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ags-serve-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the real `ags` binary and returns (exit code, stdout bytes).
fn run_ags(args: &[&str]) -> (Option<i32>, Vec<u8>) {
    let out = Command::new(env!("CARGO_BIN_EXE_ags"))
        .args(args)
        .output()
        .expect("spawn ags");
    (out.status.code(), out.stdout)
}

/// A live `ags serve` child plus the address it actually bound.
struct Daemon {
    child: Child,
    addr: String,
}

/// Spawns `ags serve` on a free port and parses the bound address out
/// of the startup handshake line on stdout.
fn start_daemon(journal: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ags"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--journal",
            journal.to_str().expect("utf-8 path"),
            "--jobs",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ags serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read handshake line");
    let addr = line
        .trim()
        .strip_prefix("serve: listening on http://")
        .unwrap_or_else(|| panic!("unexpected handshake line `{line}`"))
        .to_owned();
    Daemon { child, addr }
}

/// One HTTP round-trip against the daemon; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in `{raw}`"));
    let body = raw
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_owned());
    (status, body)
}

/// Submits a sweep spec; returns the acknowledged task id.
fn submit_sweep(addr: &str, spec: &SweepSpec) -> u64 {
    let (status, body) = http(
        addr,
        "POST",
        "/tasks",
        &format!("{{\"kind\":\"sweep\",\"spec\":{}}}", spec.to_json()),
    );
    assert_eq!(status, 202, "submit refused: {body}");
    // The ack is `{"task":N,...}`; N is the first integer in the body.
    body.split(':')
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no task id in ack `{body}`"))
}

/// Polls `GET /tasks/<id>` until the task reports `want`.
fn wait_for_state(addr: &str, id: u64, want: &str, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let (status, body) = http(addr, "GET", &format!("/tasks/{id}"), "");
        assert_eq!(status, 200, "task {id} vanished: {body}");
        if body.contains(&format!("\"state\":\"{want}\"")) {
            return;
        }
        assert!(
            !body.contains("\"state\":\"failed\""),
            "task {id} quarantined instead of reaching {want}: {body}"
        );
        assert!(
            Instant::now() < until,
            "task {id} never reached `{want}`: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Waits until *any* submitted task reports `processing` — the window
/// where a kill lands mid-batch.
fn wait_for_any_processing(addr: &str, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let (status, body) = http(addr, "GET", "/tasks", "");
        assert_eq!(status, 200);
        if body.contains("\"state\":\"processing\"") {
            return;
        }
        assert!(Instant::now() < until, "no task ever started processing");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Sends SIGTERM and reaps the child, returning its exit code.
fn terminate(mut child: Child) -> Option<i32> {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill -TERM failed");
    child.wait().expect("reap daemon").code()
}

/// A grid slow enough (in a debug build) that SIGKILL/SIGTERM land
/// while its batch is still solving, yet quick enough for CI.
fn slow_spec(cores: Vec<usize>) -> SweepSpec {
    SweepSpec::new(vec!["raytrace".into(), "mcf".into()], cores)
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_ticks(800, 200)
}

/// Standalone `ags sweep --spec` stdout for `spec` — the byte-exact
/// reference a served task's result must reproduce.
fn standalone_stdout(dir: &Path, tag: &str, spec: &SweepSpec) -> Vec<u8> {
    let spec_path = dir.join(format!("{tag}.json"));
    std::fs::write(&spec_path, spec.to_json()).expect("write spec");
    let (code, stdout) = run_ags(&[
        "sweep",
        "--spec",
        spec_path.to_str().expect("utf-8 path"),
        "--jobs",
        "2",
    ]);
    assert_eq!(code, Some(0), "standalone reference run failed");
    stdout
}

#[test]
fn sigkilled_daemon_recovers_queue_and_results_byte_identical() {
    let dir = scratch("kill");
    let journal = dir.join("queue");

    // Two compatible tasks (shared shape, disjoint core lists) so the
    // scheduler may merge them into one batch — the kill then lands in
    // shared in-flight state, the hardest recovery case.
    let spec_a = slow_spec(vec![1, 2, 3]);
    let spec_b = slow_spec(vec![4, 5, 6]);
    let reference_a = standalone_stdout(&dir, "a", &spec_a);
    let reference_b = standalone_stdout(&dir, "b", &spec_b);

    let daemon = start_daemon(&journal);
    let id_a = submit_sweep(&daemon.addr, &spec_a);
    let id_b = submit_sweep(&daemon.addr, &spec_b);
    assert_eq!((id_a, id_b), (1, 2));

    // SIGKILL the daemon as soon as a batch is in flight: no handler
    // runs, no state is flushed beyond what the journal already holds.
    wait_for_any_processing(&daemon.addr, Duration::from_secs(120));
    let mut child = daemon.child;
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap killed daemon");

    // A restarted daemon recovers from the journal alone: both
    // acknowledged tasks reach a terminal state and their results are
    // byte-identical to standalone runs.
    let daemon = start_daemon(&journal);
    wait_for_state(&daemon.addr, id_a, "succeeded", Duration::from_secs(600));
    wait_for_state(&daemon.addr, id_b, "succeeded", Duration::from_secs(600));
    let (status, result_a) = http(&daemon.addr, "GET", &format!("/tasks/{id_a}/result"), "");
    assert_eq!(status, 200);
    assert_eq!(
        result_a.as_bytes(),
        &reference_a[..],
        "task {id_a} result diverged from the standalone run after recovery"
    );
    let (status, result_b) = http(&daemon.addr, "GET", &format!("/tasks/{id_b}/result"), "");
    assert_eq!(status, 200);
    assert_eq!(
        result_b.as_bytes(),
        &reference_b[..],
        "task {id_b} result diverged from the standalone run after recovery"
    );

    assert_eq!(terminate(daemon.child), Some(EXIT_TEMPFAIL));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_checkpoints_in_flight_work_and_exits_75() {
    let dir = scratch("drain");
    let journal = dir.join("queue");
    let spec = slow_spec(vec![1, 2, 3, 4, 5, 6]);
    let reference = standalone_stdout(&dir, "ref", &spec);

    // Drain mid-batch: the engine pass is interrupted cooperatively,
    // the task is re-enqueued in the journal, and the exit code is the
    // resumable EX_TEMPFAIL — not success, not failure.
    let daemon = start_daemon(&journal);
    let id = submit_sweep(&daemon.addr, &spec);
    wait_for_any_processing(&daemon.addr, Duration::from_secs(120));
    assert_eq!(terminate(daemon.child), Some(EXIT_TEMPFAIL));

    // Nothing acknowledged was lost: the restarted daemon re-runs the
    // checkpointed task and its result matches the standalone run.
    let daemon = start_daemon(&journal);
    wait_for_state(&daemon.addr, id, "succeeded", Duration::from_secs(600));
    let (status, result) = http(&daemon.addr, "GET", &format!("/tasks/{id}/result"), "");
    assert_eq!(status, 200);
    assert_eq!(
        result.as_bytes(),
        &reference[..],
        "result after drain-and-restart diverged from the standalone run"
    );

    // An idle drain is immediate and still exits 75.
    assert_eq!(terminate(daemon.child), Some(EXIT_TEMPFAIL));
    let _ = std::fs::remove_dir_all(&dir);
}
