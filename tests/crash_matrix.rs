//! The crash matrix: every durable-write step of every journal kind,
//! faulted one at a time, then recovered.
//!
//! A counting run first enumerates the mutating filesystem operations
//! (directory creation, tmp-file writes, fsyncs, renames) a clean
//! campaign performs. Then, for each operation index × fault kind
//! (torn write, ENOSPC, fsync failure, rename failure, simulated
//! SIGKILL), a fresh run executes with exactly that fault injected.
//! The faulted run may finish or fail — both are legal. What the
//! matrix asserts is the recovery contract: after an `ags fsck`-style
//! repair, a restart produces output byte-identical to the clean
//! baseline (campaign kinds), or loses/duplicates no acknowledged
//! task (the serve queue).
//!
//! `AGS_CRASH_MATRIX_STRIDE` (default 1 = exhaustive) strides the
//! operation indices so CI can run a bounded subset of the matrix.

#![cfg(feature = "fault-injection")]

use ags::control::{GuardbandMode, SupervisorConfig};
use ags::faults::FaultPlan;
use ags::fleet::{FleetEngine, FleetRunOptions, FleetSpec, TrafficModel};
use ags::serve::task::TaskUpdate;
use ags::serve::{TaskKind, TaskState, TaskStore};
use ags::sim::vfs::{FaultyFs, ALL_FAULTS};
use ags::sim::{
    fsck, std_fs, DurableOptions, DynFs, JournalMode, ResilienceSpec, SimError, SolveCache,
    SweepEngine, SweepRunOptions, SweepSpec,
};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A fresh scratch directory, unique per call so cases never collide.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ags-crash-matrix-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The operation-index stride (`AGS_CRASH_MATRIX_STRIDE`, default 1 =
/// every durable write). CI sets a larger stride for a bounded smoke.
fn stride() -> usize {
    std::env::var("AGS_CRASH_MATRIX_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Runs the matrix for one campaign kind. `run` executes the campaign
/// against a journal mode and filesystem backend, rendering its report
/// — specs must be tiny, cold-cached and single-worker so the mutating
/// operation sequence is identical on every clean run.
fn crash_matrix(tag: &str, run: impl Fn(JournalMode, DynFs) -> Result<String, SimError>) {
    let base = scratch(&format!("{tag}-base"));
    let baseline =
        run(JournalMode::Start(base.join("journal")), std_fs()).expect("baseline run failed");

    // The counting run enumerates the durable-write steps to fault.
    let count = scratch(&format!("{tag}-count"));
    let counter = FaultyFs::new(0, vec![]);
    let counted = run(
        JournalMode::Start(count.join("journal")),
        counter.clone() as DynFs,
    )
    .expect("counting run failed");
    assert_eq!(counted, baseline, "fault-free backend changed the output");
    let ops = counter.mutating_ops();
    assert!(ops > 0, "campaign performed no durable writes");

    let mut cases = 0usize;
    for op in (0..ops).step_by(stride()) {
        for fault in ALL_FAULTS {
            cases += 1;
            let dir = scratch(&format!("{tag}-{op}-{fault:?}"));
            let journal = dir.join("journal");
            let faulty = FaultyFs::new(op.wrapping_mul(31).wrapping_add(7), vec![(op, fault)]);
            // The faulted run may succeed (a swallowed directory-fsync
            // fault) or fail mid-campaign; either way the directory is
            // whatever the fault left behind.
            let _ = run(JournalMode::Start(journal.clone()), faulty as DynFs);

            // Restart: scrub as `ags fsck --repair` would, resume if a
            // manifest survived, start fresh otherwise. A fault on the
            // very first operation can leave no directory at all.
            if journal.exists() {
                fsck::repair(&journal, &*std_fs())
                    .unwrap_or_else(|e| panic!("[{tag} op {op} {fault:?}] repair failed: {e}"));
            }
            let mode = if journal.join("manifest.json").exists() {
                JournalMode::Resume(journal.clone())
            } else {
                JournalMode::Start(journal.clone())
            };
            let recovered = run(mode, std_fs())
                .unwrap_or_else(|e| panic!("[{tag} op {op} {fault:?}] recovery failed: {e}"));
            assert_eq!(
                recovered, baseline,
                "[{tag} op {op} {fault:?}] recovered output diverged from the clean baseline"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    eprintln!(
        "[crash matrix `{tag}`: {ops} durable ops × {} fault kinds, {cases} cases, stride {}]",
        ALL_FAULTS.len(),
        stride()
    );
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&count);
}

/// Durable options for matrix runs: checkpoint after every completed
/// unit so every segment boundary is a faultable step.
fn durable(mode: JournalMode, fs: DynFs) -> DurableOptions {
    DurableOptions {
        journal: mode,
        checkpoint_every: 1,
        fs,
        ..DurableOptions::default()
    }
}

#[test]
fn sweep_journal_survives_the_crash_matrix() {
    crash_matrix("sweep", |mode, fs| {
        let spec = SweepSpec::new(vec!["lu_cb".to_owned()], vec![1, 2])
            .with_modes(vec![
                GuardbandMode::StaticGuardband,
                GuardbandMode::Undervolt,
            ])
            .with_seed(42)
            .with_ticks(3, 1);
        // Cold cache and one worker: memoization hits skip journal
        // appends and would perturb the counted operation sequence.
        let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
        let options = SweepRunOptions {
            durable: durable(mode, fs),
            panic_injector: None,
        };
        engine
            .run_durable(&spec, &options)
            .map(|r| r.render_table())
    });
}

#[test]
fn resilience_journal_survives_the_crash_matrix() {
    crash_matrix("resilience", |mode, fs| {
        let spec = ResilienceSpec {
            scenarios: vec![FaultPlan::scenarios().remove(0)],
            modes: vec![GuardbandMode::Undervolt],
            workload: "lu_cb".to_owned(),
            cores: 2,
            seed: 42,
            measure_ticks: 12,
            warmup_ticks: 2,
            supervisor: SupervisorConfig::power7plus(),
        };
        spec.run_durable(1, &durable(mode, fs))
            .map(|r| r.table() + &r.summary_line())
    });
}

#[test]
fn fleet_journal_survives_the_crash_matrix() {
    crash_matrix("fleet", |mode, fs| {
        let spec = FleetSpec {
            servers: 4,
            epochs: 2,
            traffic: TrafficModel::FlashCrowd,
            seed: 42,
            measure_ticks: 3,
            warmup_ticks: 1,
            shard_servers: 2,
        };
        let engine = FleetEngine::with_cache(1, Arc::new(SolveCache::new()));
        let options = FleetRunOptions {
            durable: durable(mode, fs),
            panic_injector: None,
        };
        engine.run_durable(&spec, &options).map(|r| r.table())
    });
}

/// A fact the serve queue acknowledged to a client — what a restart
/// must still honor.
#[derive(Debug)]
enum Acked {
    /// A `202`-acknowledged submission.
    Submitted {
        id: u64,
        kind: TaskKind,
        spec_json: String,
    },
    /// An acknowledged terminal transition (success with its rendered
    /// output, or a cancel).
    Terminal {
        id: u64,
        state: TaskState,
        output: String,
    },
}

/// Drives one queue session against `fs`: two submissions, a claim,
/// one success, one cancel. Only operations whose journal append
/// returned `Ok` count as acknowledged.
fn drive_queue(dir: &Path, fs: DynFs) -> Vec<Acked> {
    let mut acked = Vec::new();
    let Ok((mut store, _recovered)) = TaskStore::open_with(dir, fs) else {
        return acked;
    };
    let sweep_spec = "{\"grid\":\"tiny\"}".to_owned();
    if let Ok(id) = store.submit(TaskKind::Sweep, sweep_spec.clone()) {
        acked.push(Acked::Submitted {
            id,
            kind: TaskKind::Sweep,
            spec_json: sweep_spec,
        });
        if store
            .transition(&[TaskUpdate::to_state(id, TaskState::Batched, 0)])
            .is_ok()
            && store
                .transition(&[TaskUpdate {
                    id,
                    state: TaskState::Succeeded,
                    attempts: 1,
                    reason: String::new(),
                    output: "rendered table\n".to_owned(),
                    retry_at_ms: 0,
                }])
                .is_ok()
        {
            acked.push(Acked::Terminal {
                id,
                state: TaskState::Succeeded,
                output: "rendered table\n".to_owned(),
            });
        }
    }
    let fleet_spec = "{\"servers\":4}".to_owned();
    if let Ok(id) = store.submit(TaskKind::Fleet, fleet_spec.clone()) {
        acked.push(Acked::Submitted {
            id,
            kind: TaskKind::Fleet,
            spec_json: fleet_spec,
        });
        if store
            .transition(&[TaskUpdate::to_state(id, TaskState::Canceled, 0)])
            .is_ok()
        {
            acked.push(Acked::Terminal {
                id,
                state: TaskState::Canceled,
                output: String::new(),
            });
        }
    }
    acked
}

/// The queue's recovery invariants: no task lost, duplicated or
/// conjured, and acknowledged terminal outcomes byte-preserved.
fn check_queue_invariants(store: &TaskStore, acked: &[Acked], context: &str) {
    let mut seen = HashSet::new();
    for task in store.tasks() {
        assert!(
            seen.insert(task.id),
            "[{context}] duplicate task id {} after recovery",
            task.id
        );
        assert!(
            acked
                .iter()
                .any(|f| matches!(f, Acked::Submitted { id, .. } if *id == task.id)),
            "[{context}] phantom task {} was never acknowledged",
            task.id
        );
    }
    for fact in acked {
        match fact {
            Acked::Submitted {
                id,
                kind,
                spec_json,
            } => {
                let task = store
                    .get(*id)
                    .unwrap_or_else(|| panic!("[{context}] acked task {id} lost"));
                assert_eq!(task.kind, *kind, "[{context}] task {id} changed kind");
                assert_eq!(
                    &task.spec_json, spec_json,
                    "[{context}] task {id} changed spec"
                );
            }
            Acked::Terminal { id, state, output } => {
                let task = store
                    .get(*id)
                    .unwrap_or_else(|| panic!("[{context}] acked task {id} lost"));
                assert_eq!(
                    task.state, *state,
                    "[{context}] task {id} lost its acked terminal state"
                );
                assert_eq!(
                    &task.output, output,
                    "[{context}] task {id} result not byte-preserved"
                );
            }
        }
    }
}

#[test]
fn serve_queue_survives_the_crash_matrix() {
    // The counting session acknowledges everything.
    let count = scratch("serve-count");
    let counter = FaultyFs::new(0, vec![]);
    let clean = drive_queue(&count, counter.clone() as DynFs);
    assert_eq!(clean.len(), 4, "clean session must ack all four facts");
    let ops = counter.mutating_ops();
    assert!(ops > 0);

    let mut cases = 0usize;
    for op in (0..ops).step_by(stride()) {
        for fault in ALL_FAULTS {
            cases += 1;
            let dir = scratch(&format!("serve-{op}-{fault:?}"));
            let faulty = FaultyFs::new(op.rotate_left(7) ^ 0x9e37, vec![(op, fault)]);
            let acked = drive_queue(&dir, faulty as DynFs);

            let context = format!("serve op {op} {fault:?}");
            if dir.exists() {
                fsck::repair(&dir, &*std_fs())
                    .unwrap_or_else(|e| panic!("[{context}] repair failed: {e}"));
            }
            let (store, _recovered) = TaskStore::open_with(&dir, std_fs())
                .unwrap_or_else(|e| panic!("[{context}] reopen failed: {e}"));
            check_queue_invariants(&store, &acked, &context);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    eprintln!(
        "[crash matrix `serve`: {ops} durable ops × {} fault kinds, {cases} cases, stride {}]",
        ALL_FAULTS.len(),
        stride()
    );
    let _ = std::fs::remove_dir_all(&count);
}
