//! End-to-end integration tests: the paper's headline trends must hold on
//! the simulated server. These are the "shape" assertions EXPERIMENTS.md
//! documents — who wins, by roughly what factor, where crossovers fall.

use ags::control::GuardbandMode;
use ags::scheduling::predictor::measure_point;
use ags::scheduling::{LoadlineBorrowing, MipsFrequencyPredictor};
use ags::sim::{Assignment, Experiment, Placement, SweepEngine, SweepSpec};
use ags::types::Seconds;
use ags::workloads::{co_runner, Catalog, CoRunnerClass, WebSearch};

fn experiment() -> Experiment {
    Experiment::power7plus(42).with_ticks(30, 15)
}

fn undervolt_saving(name: &str, cores: usize) -> f64 {
    let exp = experiment();
    let w = Catalog::power7plus().get(name).unwrap().clone();
    let a = Assignment::single_socket(&w, cores).unwrap();
    let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
    let uv = exp.run(&a, GuardbandMode::Undervolt).unwrap();
    (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0
}

fn frequency_boost(name: &str, cores: usize) -> f64 {
    let exp = experiment();
    let w = Catalog::power7plus().get(name).unwrap().clone();
    let a = Assignment::single_socket(&w, cores).unwrap();
    let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
    let oc = exp.run(&a, GuardbandMode::Overclock).unwrap();
    (oc.summary.avg_running_freq.0 - st.summary.avg_running_freq.0) / st.summary.avg_running_freq.0
        * 100.0
}

#[test]
fn fig3_power_saving_diminishes_with_core_count() {
    let one = undervolt_saving("raytrace", 1);
    let four = undervolt_saving("raytrace", 4);
    let eight = undervolt_saving("raytrace", 8);
    assert!(
        (10.0..16.0).contains(&one),
        "1-core saving {one}% (paper 13%)"
    );
    assert!(
        (1.0..7.0).contains(&eight),
        "8-core saving {eight}% (paper 3%)"
    );
    assert!(one > four && four > eight, "saving must fall monotonically");
}

#[test]
fn fig4_frequency_boost_diminishes_with_core_count() {
    let one = frequency_boost("lu_cb", 1);
    let eight = frequency_boost("lu_cb", 8);
    assert!(
        (7.0..13.0).contains(&one),
        "1-core boost {one}% (paper 10%)"
    );
    assert!(
        (2.0..7.0).contains(&eight),
        "8-core boost {eight}% (paper 4%)"
    );
    assert!(one > eight + 3.0, "boost must erode substantially");
}

#[test]
fn fig5_workload_heterogeneity_magnifies_at_full_load() {
    // radix (memory-bound, low power) holds its benefit; swaptions
    // (power-hungry compute) collapses.
    let radix_1 = undervolt_saving("radix", 1);
    let radix_8 = undervolt_saving("radix", 8);
    let swaptions_1 = undervolt_saving("swaptions", 1);
    let swaptions_8 = undervolt_saving("swaptions", 8);
    assert!(
        radix_8 > swaptions_8 + 4.0,
        "8-core spread: radix {radix_8}% vs swaptions {swaptions_8}%"
    );
    let spread_1 = radix_1 - swaptions_1;
    let spread_8 = radix_8 - swaptions_8;
    assert!(
        spread_8 > spread_1,
        "variation must magnify: {spread_1} → {spread_8}"
    );
}

#[test]
fn fig7_voltage_drop_grows_and_is_global() {
    let exp = experiment();
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let nominal = exp.config().nominal_voltage();
    let drop_at = |cores: usize, core: usize| {
        let a = Assignment::single_socket(&w, cores).unwrap();
        let run = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        run.summary.socket0().core_drop_percent(core, nominal)
    };
    // Grows toward ~8 % at eight cores for the active core.
    let full = drop_at(8, 0);
    assert!(
        (6.0..10.0).contains(&full),
        "8-core drop {full}% (paper ~8%)"
    );
    // Global: core 7 sags even while idle.
    let idle7 = drop_at(4, 7);
    assert!(
        idle7 > 2.0,
        "idle core must sag too (global effect): {idle7}%"
    );
    // Local: activating core 7 adds a visible jump.
    let jump = drop_at(8, 7) - drop_at(7, 7);
    assert!((0.4..3.0).contains(&jump), "local activation jump {jump}%");
}

#[test]
fn fig10_causal_chain_holds_across_workloads() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let mut powers = Vec::new();
    let mut passives = Vec::new();
    let mut undervolts = Vec::new();
    for name in ["mcf", "radix", "gcc", "raytrace", "swaptions", "povray"] {
        let w = catalog.get(name).unwrap();
        let a = Assignment::single_socket(w, 8).unwrap();
        let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        let uv = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        powers.push(st.chip_power().0);
        passives.push(st.summary.socket0().core0_passive_drop().millivolts());
        undervolts.push(uv.summary.socket0().undervolt.millivolts());
    }
    // Higher power → more passive drop → less undervolt, pairwise.
    for i in 0..powers.len() {
        for j in 0..powers.len() {
            if powers[i] > powers[j] + 10.0 {
                assert!(
                    passives[i] > passives[j],
                    "passive drop must track power: {} vs {}",
                    passives[i],
                    passives[j]
                );
                assert!(
                    undervolts[i] < undervolts[j],
                    "undervolt must shrink with drop: {} vs {}",
                    undervolts[i],
                    undervolts[j]
                );
            }
        }
    }
}

#[test]
fn fig12_borrowing_undervolts_deeper_and_saves_power() {
    let lb = LoadlineBorrowing::new(experiment());
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let eval = lb.evaluate(&w, 8).unwrap();
    let uv_cons = eval.consolidated.summary.socket0().undervolt.millivolts();
    let uv_borr = eval.borrowed.summary.sockets[0].undervolt.millivolts();
    // Paper Fig. 12a: ~20 mV consolidated vs ~60 mV borrowed at 8 cores.
    assert!(
        (10.0..35.0).contains(&uv_cons),
        "consolidated UV {uv_cons} mV"
    );
    assert!((45.0..85.0).contains(&uv_borr), "borrowed UV {uv_borr} mV");
    assert!(
        eval.power_saving_percent > 1.5,
        "saving {}%",
        eval.power_saving_percent
    );
}

#[test]
fn fig13_borrowing_multiplies_adaptive_guardbandings_benefit() {
    let lb = LoadlineBorrowing::new(experiment());
    let catalog = Catalog::power7plus();
    let mut cons_sum = 0.0;
    let mut borr_sum = 0.0;
    for name in ["raytrace", "lu_cb", "swaptions", "ocean_cp"] {
        let w = catalog.get(name).unwrap();
        let (cons, borr) = lb.improvement_vs_static(w, 8).unwrap();
        cons_sum += cons;
        borr_sum += borr;
    }
    assert!(
        borr_sum > cons_sum * 1.3,
        "borrowing must clearly multiply the benefit: {cons_sum} vs {borr_sum}"
    );
}

#[test]
fn fig14_extremes_match_the_paper() {
    let lb = LoadlineBorrowing::new(experiment());
    let catalog = Catalog::power7plus();
    // Left extreme: communication-heavy workloads lose energy.
    let lu_ncb = lb.evaluate(catalog.get("lu_ncb").unwrap(), 8).unwrap();
    assert!(lu_ncb.energy_improvement_percent < -5.0);
    assert!(lu_ncb.time_change_percent > 15.0);
    // Right extreme: bandwidth-starved workloads gain massively.
    let lbm = lb.evaluate(catalog.get("lbm").unwrap(), 8).unwrap();
    assert!(lbm.energy_improvement_percent > 40.0);
}

#[test]
fn fig15_colocation_moves_the_critical_apps_frequency() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let cm = catalog.get("coremark").unwrap();
    let freq_with = |other: &str, n: usize| {
        let a = Assignment::colocated(cm, catalog.get(other).unwrap(), n).unwrap();
        let o = exp.run(&a, GuardbandMode::Overclock).unwrap();
        o.summary.sockets[0].avg_core_freq[0].0
    };
    let with_lu = freq_with("lu_cb", 7);
    let with_mcf = freq_with("mcf", 7);
    assert!(
        with_mcf > with_lu + 100.0,
        "paper: >100 MHz spread; got {} vs {}",
        with_mcf,
        with_lu
    );
}

#[test]
fn fig16_mips_predictor_is_accurate_and_negative_sloped() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let mut data = Vec::new();
    for name in [
        "mcf",
        "omnetpp",
        "gcc",
        "wrf",
        "raytrace",
        "dealII",
        "swaptions",
        "povray",
    ] {
        let (mips, freq) = measure_point(&exp, catalog.get(name).unwrap()).unwrap();
        data.push((mips, freq.0));
    }
    let model = MipsFrequencyPredictor::fit(&data).unwrap();
    assert!(model.slope_mhz_per_mips() < 0.0);
    assert!(model.rmse_percent() < 1.0, "rmse {}%", model.rmse_percent());
}

#[test]
fn fig17_heavy_corunner_violates_light_meets_qos() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let ws_profile = catalog.get("websearch").unwrap();
    let service = WebSearch::power7plus();
    let rate = |class: CoRunnerClass| {
        let a = Assignment::colocated(ws_profile, &co_runner(class), 7).unwrap();
        let o = exp.run(&a, GuardbandMode::Overclock).unwrap();
        service.violation_rate(o.summary.sockets[0].avg_core_freq[0], Seconds(0.5), 200, 7)
    };
    let heavy = rate(CoRunnerClass::Heavy);
    let light = rate(CoRunnerClass::Light);
    assert!(heavy > 0.15, "heavy violation rate {heavy} (paper >25%)");
    assert!(light < 0.07, "light violation rate {light} (paper <7%)");
    assert!(heavy > light * 3.0);
}

// ---------------------------------------------------------------------
// Golden trends through the parallel sweep engine. The figure binaries
// now all run on this path, so the paper's headline shapes must survive
// the engine's per-point seed derivation and memoized solves — bounds on
// shape and ordering, never exact floats.
// ---------------------------------------------------------------------

/// A two-worker engine on the process-wide solve cache, exactly like the
/// figure binaries.
fn sweep_engine() -> SweepEngine {
    SweepEngine::new(2)
}

#[test]
fn sweep_fig3_undervolt_saving_erodes_from_13_to_3_percent() {
    let spec = SweepSpec::new(vec!["raytrace".into()], (1..=8).collect()).with_modes(vec![
        GuardbandMode::StaticGuardband,
        GuardbandMode::Undervolt,
    ]);
    let report = sweep_engine().run(&spec).unwrap();
    let saving = |cores: usize| {
        report
            .power_saving_percent(
                "raytrace",
                cores,
                Placement::SingleSocket,
                GuardbandMode::Undervolt,
            )
            .unwrap()
    };
    let one = saving(1);
    let eight = saving(8);
    assert!(
        (10.0..16.0).contains(&one),
        "1-core saving {one}% (paper 13%)"
    );
    assert!(
        (1.0..7.0).contains(&eight),
        "8-core saving {eight}% (paper 3%)"
    );
    for cores in 1..8 {
        assert!(
            saving(cores) > saving(cores + 1),
            "saving must fall monotonically at {cores}→{} cores",
            cores + 1
        );
    }
}

#[test]
fn sweep_fig5_saving_erodes_for_every_core_scaling_workload() {
    let names = ags::workloads::catalog::CORE_SCALING_SET;
    let spec =
        SweepSpec::new(names.iter().map(|s| (*s).to_owned()).collect(), vec![1, 8]).with_modes(
            vec![GuardbandMode::StaticGuardband, GuardbandMode::Undervolt],
        );
    let report = sweep_engine().run(&spec).unwrap();
    let saving = |name: &str, cores: usize| {
        report
            .power_saving_percent(
                name,
                cores,
                Placement::SingleSocket,
                GuardbandMode::Undervolt,
            )
            .unwrap()
    };
    for name in names {
        assert!(
            saving(name, 1) > saving(name, 8) + 2.0,
            "{name}: saving must erode from 1 to 8 cores"
        );
    }
    // Heterogeneity: the memory-bound workload keeps clearly more of its
    // benefit at full load than the compute-heavy one (Fig. 5's spread).
    assert!(
        saving("radix", 8) > saving("swaptions", 8) + 4.0,
        "8-core spread must stay wide"
    );
}

#[test]
fn sweep_fig13_borrowing_roughly_doubles_the_8_core_benefit() {
    let names = ["raytrace", "lu_cb", "swaptions", "ocean_cp"];
    let spec = SweepSpec::new(names.iter().map(|s| (*s).to_owned()).collect(), vec![8])
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_placements(vec![Placement::Consolidated, Placement::Borrowed]);
    let report = sweep_engine().run(&spec).unwrap();
    let mut cons_sum = 0.0;
    let mut borr_sum = 0.0;
    for name in names {
        let base = report
            .outcome(
                name,
                8,
                Placement::Consolidated,
                GuardbandMode::StaticGuardband,
            )
            .unwrap()
            .total_power()
            .0;
        let cons = report
            .outcome(name, 8, Placement::Consolidated, GuardbandMode::Undervolt)
            .unwrap()
            .total_power()
            .0;
        let borr = report
            .outcome(name, 8, Placement::Borrowed, GuardbandMode::Undervolt)
            .unwrap()
            .total_power()
            .0;
        cons_sum += (base - cons) / base * 100.0;
        borr_sum += (base - borr) / base * 100.0;
    }
    assert!(
        borr_sum > cons_sum * 1.3,
        "borrowing must clearly multiply the benefit: {cons_sum} vs {borr_sum}"
    );
    assert!(
        borr_sum < cons_sum * 5.0,
        "multiplier should stay in a plausible band: {cons_sum} vs {borr_sum}"
    );
}
