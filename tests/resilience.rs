//! Acceptance tests for the fault-injection campaign: under every
//! shipped fault scenario the safety supervisor must keep the rail out
//! of the danger zone — zero margin violations, never below the
//! residual-guardband floor — while degrading gracefully instead of
//! giving up all savings.

use ags::control::GuardbandMode;
use ags::sim::{ResilienceSpec, SimEventKind};
use ags::workloads::Catalog;

/// One shared campaign run: the engine is deterministic, so every
/// assertion below reads from the same report a production
/// `ags resilience` invocation would print.
fn campaign() -> ags::sim::ResilienceReport {
    ResilienceSpec::power7plus()
        .run(2)
        .expect("default campaign must run")
}

#[test]
fn every_shipped_scenario_is_safe_under_supervision() {
    let report = campaign();
    assert_eq!(
        report.results.len(),
        report.spec.len(),
        "campaign must cover the full scenario × mode grid"
    );
    for cell in &report.results {
        assert_eq!(
            cell.margin_violations, 0,
            "supervised run of `{}` violated the droop margin {} times",
            cell.scenario, cell.margin_violations
        );
        assert!(
            cell.floor_respected(),
            "`{}` pulled the rail to {:.1} mV, below the {:.1} mV floor",
            cell.scenario,
            cell.min_set_point.millivolts(),
            cell.floor.millivolts()
        );
    }
    assert!(report.all_safe());
}

#[test]
fn supervisor_eliminates_droop_storm_violations() {
    let report = campaign();
    let storm = report
        .get("droop-storm", GuardbandMode::Undervolt)
        .expect("droop-storm cell present");
    // Without the supervisor the frozen-firmware storm burst drives the
    // margin negative; with it the socket is parked at nominal in time.
    assert!(
        storm.unsupervised_violations > 0,
        "scenario no longer exposes any danger — tighten the storm"
    );
    assert_eq!(storm.margin_violations, 0);
    assert!(storm.trips >= 1, "supervisor never tripped");
    assert!(storm.rearms >= 1, "supervisor never re-armed");
    assert!(storm.degraded_windows > 0);
}

#[test]
fn graceful_degradation_retains_savings_where_faults_allow() {
    let report = campaign();
    for cell in &report.results {
        assert!(
            (0.0..=100.0 + 1e-6).contains(&cell.savings_retained_percent),
            "`{}` retained {:.1}% — outside [0, 100]",
            cell.scenario,
            cell.savings_retained_percent
        );
    }
    // A storm confined to the VRM's telemetry sensor never touches the
    // control loop, so nothing is sacrificed; a dead CPM quarantines
    // the socket for most of the run and gives up nearly everything.
    let sensor = report
        .get("vrm-sensor-storm", GuardbandMode::Undervolt)
        .unwrap();
    let dead = report.get("dead-cpm", GuardbandMode::Undervolt).unwrap();
    assert!(sensor.savings_retained_percent > 95.0);
    assert!(dead.savings_retained_percent < sensor.savings_retained_percent);
}

#[test]
fn campaign_records_the_fault_and_supervisor_timeline() {
    let report = campaign();
    let storm = report.get("droop-storm", GuardbandMode::Undervolt).unwrap();
    let has = |pred: fn(&SimEventKind) -> bool| storm.events.iter().any(|e| pred(&e.kind));
    assert!(has(|k| matches!(k, SimEventKind::FaultStarted(_))));
    assert!(has(|k| matches!(k, SimEventKind::FaultEnded(_))));
    assert!(has(|k| matches!(k, SimEventKind::Degraded(_))));
    assert!(has(|k| matches!(k, SimEventKind::Rearmed)));
}

#[test]
fn smoke_campaign_is_a_strict_subset_sized_for_ci() {
    let spec = ResilienceSpec::smoke();
    spec.validate(&Catalog::power7plus()).unwrap();
    assert_eq!(spec.scenarios, ResilienceSpec::power7plus().scenarios);
    assert!(spec.measure_ticks < ResilienceSpec::power7plus().measure_ticks);
    let report = spec.run(2).expect("smoke campaign must run");
    assert!(report.all_safe(), "{}", report.table());
}
