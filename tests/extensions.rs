//! Integration tests of the extension features: DVFS p-states, the aging
//! model, the cluster scheduler, the time-series recorder, and the
//! combination-space explorer.

use ags::control::{AgingModel, GuardbandMode, GuardbandPolicy, PStateTable, VoltFreqCurve};
use ags::scheduling::cluster::{ClusterConfig, ClusterScheduler};
use ags::scheduling::{AdaptiveMappingScheduler, JobSpec, MipsFrequencyPredictor, QosSpec};
use ags::sim::{Assignment, Experiment, ServerConfig, Simulation};
use ags::types::{MegaHertz, Volts};
use ags::workloads::{co_runner, Catalog, CoRunnerClass, ExecutionModel, WebSearch};

#[test]
fn every_pstate_is_a_runnable_static_configuration() {
    // Each DVFS operating point of the Fig. 6a ladder must be a valid
    // static configuration of the server.
    let curve = VoltFreqCurve::power7plus();
    let policy = GuardbandPolicy::power7plus();
    let table = PStateTable::power7plus(&curve, &policy).unwrap();
    let w = Catalog::power7plus().get("radix").unwrap().clone();
    for state in table.iter().step_by(10) {
        let mut cfg = ServerConfig::power7plus(1);
        cfg.target_frequency = state.frequency;
        cfg.dpll_min = MegaHertz(state.frequency.0 * 0.6);
        cfg.validate().unwrap();
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(10, 5);
        let a = Assignment::single_socket(&w, 2).unwrap();
        let run = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        assert!(
            (run.summary.avg_running_freq.0 - state.frequency.0).abs() < 1.0,
            "static run must sit at the p-state clock"
        );
    }
}

#[test]
fn aged_parts_keep_less_benefit_but_stay_safe() {
    let aging = AgingModel::power7plus();
    let base = VoltFreqCurve::power7plus();
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let saving_at = |years: f64| {
        let mut cfg = ServerConfig::power7plus(1);
        cfg.curve = aging.aged_curve(&base, years).unwrap();
        cfg.policy.static_guardband -= aging.drift_at_years(years);
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(20, 10);
        let a = Assignment::single_socket(&w, 2).unwrap();
        let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        let uv = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0
    };
    let young = saving_at(0.0);
    let old = saving_at(10.0);
    assert!(young > old, "aging must consume margin: {young}% vs {old}%");
    assert!(old > 0.0, "an aged part still benefits: {old}%");
}

#[test]
fn cluster_hierarchy_dominates_every_naive_spread() {
    let scheduler = ClusterScheduler::new(
        Experiment::power7plus(42).with_ticks(10, 5),
        ClusterConfig::rack(3),
    )
    .unwrap();
    let w = Catalog::power7plus().get("ocean_cp").unwrap().clone();
    for threads in [3usize, 8, 12] {
        let plan = scheduler.schedule(&w, threads).unwrap();
        let naive = scheduler.naive_spread(&w, threads).unwrap();
        assert!(
            plan.total_power.0 <= naive.total_power.0 + 1e-9,
            "{threads} threads: hierarchy {} W vs naive {} W",
            plan.total_power.0,
            naive.total_power.0
        );
        assert!(plan.active_servers <= naive.active_servers);
    }
}

#[test]
fn history_settles_where_the_summary_says() {
    let w = Catalog::power7plus().get("swaptions").unwrap().clone();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(5),
        Assignment::single_socket(&w, 4).unwrap(),
        GuardbandMode::Undervolt,
    )
    .unwrap();
    let (summary, history) = sim.run_with_history(30, 15);
    let last = history.records().last().unwrap().sockets[0].set_point;
    // The time series' final set point matches the measured average
    // within the noise band.
    assert!(
        (last - summary.socket0().avg_set_point).abs() < Volts::from_millivolts(3.0),
        "history end {last} vs summary {}",
        summary.socket0().avg_set_point
    );
}

#[test]
fn explorer_ranks_candidates_consistently_with_measurement() {
    // The predictor-based exploration must order candidate colocations
    // the same way actually simulating them does.
    let catalog = Catalog::power7plus();
    let exp = Experiment::power7plus(42).with_ticks(15, 10);
    let job = JobSpec::critical(
        "search",
        catalog.get("websearch").unwrap().clone(),
        QosSpec::websearch(),
    );
    let predictor =
        MipsFrequencyPredictor::fit(&[(10_000.0, 4580.0), (40_000.0, 4500.0), (70_000.0, 4420.0)])
            .unwrap();
    let pool = vec![
        co_runner(CoRunnerClass::Light),
        co_runner(CoRunnerClass::Heavy),
    ];
    let scheduler = AdaptiveMappingScheduler::new(
        exp.clone(),
        predictor,
        job.clone(),
        WebSearch::power7plus(),
        pool.clone(),
        0,
        3,
    )
    .unwrap();
    let space = scheduler.explore();
    // Predicted: full light pool beats full heavy pool.
    let predicted_light = space
        .iter()
        .find(|(m, _)| m.entries()[1].0.name() == pool[0].name() && m.threads() == 8)
        .unwrap()
        .1;
    let predicted_heavy = space
        .iter()
        .find(|(m, _)| m.entries()[1].0.name() == pool[1].name() && m.threads() == 8)
        .unwrap()
        .1;
    assert!(predicted_light > predicted_heavy);

    // Measured ordering agrees.
    let measure = |runner: &ags::workloads::WorkloadProfile| {
        let a = Assignment::colocated(job.workload(), runner, 7).unwrap();
        exp.run(&a, GuardbandMode::Overclock)
            .unwrap()
            .summary
            .sockets[0]
            .avg_core_freq[0]
    };
    assert!(measure(&pool[0]) > measure(&pool[1]));
}
