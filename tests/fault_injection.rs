//! Failure injection: the control stack must stay inside its guardband
//! envelope when sensors lie.

use ags::control::GuardbandMode;
use ags::pdn::DidtConfig;
use ags::sensors::CpmReading;
use ags::sim::{Assignment, Experiment, ServerConfig, Simulation};
use ags::types::{Amps, CoreId, CpmId, SocketId, Volts};
use ags::workloads::{Catalog, ExecutionModel};

fn assignment(threads: usize) -> Assignment {
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    Assignment::single_socket(&w, threads).unwrap()
}

#[test]
fn stuck_low_cpm_forces_the_rail_back_to_safety() {
    let cfg = ServerConfig::power7plus(5);
    let mut healthy =
        Simulation::new(cfg.clone(), assignment(2), GuardbandMode::Undervolt).unwrap();
    let healthy_run = healthy.run(30, 15);
    assert!(healthy_run.socket0().undervolt.millivolts() > 20.0);

    let mut faulty = Simulation::new(cfg, assignment(2), GuardbandMode::Undervolt).unwrap();
    let s0 = SocketId::new(0).unwrap();
    let cpm = CpmId::new(CoreId::new(0).unwrap(), 2).unwrap();
    faulty.inject_cpm_fault(s0, cpm, CpmReading::new(0));
    let faulty_run = faulty.run(30, 15);
    // A CPM reporting "no margin" must kill the undervolt, never deepen it.
    assert!(
        faulty_run.socket0().undervolt.millivolts() < 1.0,
        "undervolt survived a stuck-low CPM: {} mV",
        faulty_run.socket0().undervolt.millivolts()
    );
}

#[test]
fn stuck_high_cpm_does_not_trick_the_rail_below_the_floor() {
    let cfg = ServerConfig::power7plus(5);
    let floor = {
        let fw = ags::control::FirmwareController::new(cfg.target_frequency, cfg.policy.clone())
            .unwrap();
        fw.voltage_floor(&cfg.curve)
    };
    let mut sim = Simulation::new(cfg, assignment(2), GuardbandMode::Undervolt).unwrap();
    let s0 = SocketId::new(0).unwrap();
    // Every CPM of core 0 lies "plenty of margin".
    for slot in 0..5 {
        let cpm = CpmId::new(CoreId::new(0).unwrap(), slot).unwrap();
        sim.inject_cpm_fault(s0, cpm, CpmReading::new(11));
    }
    let run = sim.run(40, 20);
    assert!(
        run.socket0().avg_set_point >= floor - Volts(1e-9),
        "rail fell below the residual-guardband floor"
    );
}

#[test]
fn rail_sensor_bias_does_not_change_physics() {
    // The current sensor feeds telemetry, not the control loop — a biased
    // sensor must not move the electrical outcome.
    let cfg = ServerConfig::power7plus(5);
    let mut clean = Simulation::new(cfg.clone(), assignment(4), GuardbandMode::Undervolt).unwrap();
    let clean_run = clean.run(30, 15);

    let mut biased = Simulation::new(cfg, assignment(4), GuardbandMode::Undervolt).unwrap();
    biased.inject_rail_sensor_bias(SocketId::new(0).unwrap(), Amps(25.0));
    let biased_run = biased.run(30, 15);
    assert_eq!(clean_run, biased_run);
}

#[test]
fn droop_storm_shrinks_but_never_inverts_the_guardband() {
    // A pathological noise environment: constant large droops.
    let mut cfg = ServerConfig::power7plus(5);
    cfg.didt = DidtConfig {
        worst_base: Volts::from_millivolts(60.0),
        droop_rate_hz: 500.0,
        ..DidtConfig::power7plus()
    };
    let exp = Experiment::with_config(cfg.clone(), ExecutionModel::power7plus()).with_ticks(30, 15);
    let st = exp
        .run(&assignment(4), GuardbandMode::StaticGuardband)
        .unwrap();
    let uv = exp.run(&assignment(4), GuardbandMode::Undervolt).unwrap();
    // Undervolting may gain almost nothing under the storm, but must never
    // push the set point above nominal or below the floor.
    let undervolt = uv.summary.socket0().undervolt.millivolts();
    assert!(
        undervolt >= -1e-9,
        "set point above nominal: {undervolt} mV"
    );
    assert!(uv.chip_power().0 <= st.chip_power().0 + 0.5);
}

#[test]
fn faulted_lanes_never_reuse_healthy_cache_entries() {
    // The sweep engine prefetches whole cache-lane blocks (one lane per
    // guardband mode) in a single probe. The fault fingerprint is part
    // of every lane key, so a faulted sweep over the same grid must not
    // be answered from healthy entries — per lane, not per batch.
    use ags::faults::FaultPlan;
    use ags::sim::{SolveCache, SweepEngine, SweepSpec};
    use std::sync::Arc;

    let spec = SweepSpec::new(vec!["raytrace".into(), "gcc".into()], vec![2, 6])
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
            GuardbandMode::Overclock,
        ])
        // 16 windows: the named scenarios strike from window 10 onward.
        .with_ticks(12, 4);
    let cache = Arc::new(SolveCache::new());
    let engine = SweepEngine::with_cache(2, cache.clone());

    let healthy = engine.run(&spec).unwrap();
    engine.run(&spec).unwrap();
    let warm = cache.counters();
    assert_eq!(warm.misses as usize, spec.len(), "cold pass solves all");
    assert_eq!(warm.hits as usize, spec.len(), "warm pass hits every lane");

    let faulted_spec = spec
        .clone()
        .with_faults(FaultPlan::named("dead-cpm").unwrap());
    let faulted = engine.run(&faulted_spec).unwrap();
    let after = cache.counters();
    assert_eq!(
        after.hits, warm.hits,
        "faulted lanes were answered from healthy entries"
    );
    assert_eq!(
        after.misses as usize,
        spec.len() + faulted_spec.len(),
        "every faulted lane must re-solve"
    );
    assert_ne!(
        healthy.results_json(),
        faulted.results_json(),
        "the fault plan must change at least one outcome"
    );

    // The faulted entries now answer a repeat faulted sweep, again
    // counted per lane.
    engine.run(&faulted_spec).unwrap();
    let repeat = cache.counters();
    assert_eq!(repeat.misses, after.misses);
    assert_eq!(
        repeat.hits as usize,
        spec.len() + faulted_spec.len(),
        "repeat faulted pass hits every faulted lane"
    );
}

#[test]
fn faulted_runs_remain_deterministic() {
    let build = || {
        let cfg = ServerConfig::power7plus(9);
        let mut sim = Simulation::new(cfg, assignment(3), GuardbandMode::Undervolt).unwrap();
        sim.inject_cpm_fault(
            SocketId::new(0).unwrap(),
            CpmId::new(CoreId::new(1).unwrap(), 1).unwrap(),
            CpmReading::new(0),
        );
        sim.run(20, 10)
    };
    assert_eq!(build(), build());
}
