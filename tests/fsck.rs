//! Property tests for `ags fsck` over corrupted journal directories.
//!
//! A clean sweep journal is built once per process, then each proptest
//! case copies it, injects damage — random byte flips in segment
//! bodies, a truncated final segment, a duplicated segment index,
//! stray temp files — and asserts that the scrub classifies the damage
//! correctly and that a repair followed by a resume reproduces the
//! clean campaign byte-for-byte.

#![cfg(feature = "fault-injection")]

use ags::control::GuardbandMode;
use ags::sim::fsck::{self, SegmentVerdict};
use ags::sim::{
    std_fs, DurableOptions, JournalMode, SimError, SolveCache, SweepEngine, SweepRunOptions,
    SweepSpec,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ags-fsck-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One durable sweep: tiny grid, cold cache, one worker, a segment per
/// point — so the journal carries several independently faultable
/// segments and every run renders identically.
fn run_sweep(mode: JournalMode) -> Result<String, SimError> {
    let spec = SweepSpec::new(vec!["lu_cb".to_owned()], vec![1, 2, 4])
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_seed(42)
        .with_ticks(3, 1);
    let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
    let options = SweepRunOptions {
        durable: DurableOptions {
            journal: mode,
            checkpoint_every: 1,
            ..DurableOptions::default()
        },
        panic_injector: None,
    };
    engine
        .run_durable(&spec, &options)
        .map(|r| r.render_table())
}

/// The pristine journal and its rendered output, built once.
fn template() -> &'static (PathBuf, String) {
    static TEMPLATE: OnceLock<(PathBuf, String)> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let journal = scratch("template").join("journal");
        let rendered = run_sweep(JournalMode::Start(journal.clone())).expect("template sweep");
        (journal, rendered)
    })
}

/// Copies the template journal into a fresh directory for one case.
fn fresh_copy(tag: &str) -> PathBuf {
    let (template_dir, _) = template();
    let dir = scratch(tag).join("journal");
    std::fs::create_dir_all(&dir).expect("create case dir");
    for entry in std::fs::read_dir(template_dir).expect("list template") {
        let path = entry.expect("dir entry").path();
        std::fs::copy(&path, dir.join(path.file_name().expect("file name")))
            .expect("copy journal file");
    }
    dir
}

/// Sorted segment file paths inside a journal directory.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("list journal")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .expect("file name")
        .to_string_lossy()
        .into_owned()
}

/// One kind of injected damage. Index-like fields are taken modulo the
/// actual segment count / file length when applied.
#[derive(Debug, Clone)]
enum Damage {
    /// XOR one byte of a segment's checksummed body.
    FlipByte { seg: usize, offset: usize, mask: u8 },
    /// Cut the final segment short, as a torn write would.
    TruncateTail { keep: usize },
    /// Re-file an existing segment's content under the next segment
    /// number, duplicating its entry indices.
    DuplicateSegment { seg: usize },
    /// Drop an orphaned temp file, as a crash mid-`write_atomic` would.
    StrayTemp { seed: u8 },
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (0usize..64, 0usize..1 << 16, 1u8..=255).prop_map(|(seg, offset, mask)| Damage::FlipByte {
            seg,
            offset,
            mask
        }),
        (0usize..1 << 16).prop_map(|keep| Damage::TruncateTail { keep }),
        (0usize..64).prop_map(|seg| Damage::DuplicateSegment { seg }),
        (0u8..=255u8).prop_map(|seed| Damage::StrayTemp { seed }),
    ]
}

/// Applies `damage` to the journal at `dir`, returning the name of the
/// file it touched or created.
fn apply(dir: &Path, damage: &Damage) -> String {
    let segments = segment_files(dir);
    assert!(!segments.is_empty(), "template journal has no segments");
    match damage {
        Damage::FlipByte { seg, offset, mask } => {
            let path = &segments[seg % segments.len()];
            let mut bytes = std::fs::read(path).expect("read segment");
            // Flip only inside the checksummed body: the header line
            // carries tokens (version, declared entry count) the
            // verifier deliberately ignores, so a flip there may be
            // benign. Body flips always break the checksum.
            let body_start = bytes
                .iter()
                .position(|&b| b == b'\n')
                .expect("segment has a header line")
                + 1;
            assert!(body_start < bytes.len(), "segment has an empty body");
            let at = body_start + offset % (bytes.len() - body_start);
            bytes[at] ^= mask;
            std::fs::write(path, bytes).expect("write flipped segment");
            file_name(path)
        }
        Damage::TruncateTail { keep } => {
            let path = segments.last().expect("at least one segment");
            let bytes = std::fs::read(path).expect("read segment");
            std::fs::write(path, &bytes[..keep % bytes.len()]).expect("truncate segment");
            file_name(path)
        }
        Damage::DuplicateSegment { seg } => {
            let source = &segments[seg % segments.len()];
            let last = file_name(segments.last().expect("at least one segment"));
            let number: u64 = last
                .trim_start_matches("seg-")
                .trim_end_matches(".json")
                .parse()
                .expect("segment number");
            let name = format!("seg-{:08}.json", number + 1);
            std::fs::copy(source, dir.join(&name)).expect("duplicate segment");
            name
        }
        Damage::StrayTemp { seed } => {
            let name = format!("seg-{seed:08}.json.tmp");
            std::fs::write(dir.join(&name), b"torn half-write").expect("write temp file");
            name
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Single-damage classification: the scrub names the damaged file
    /// with the right verdict, and repair + resume reproduces the
    /// clean output byte-for-byte.
    #[test]
    fn fsck_classifies_each_damage_and_repair_recovers(d in damage_strategy()) {
        let dir = fresh_copy("single");
        let touched = apply(&dir, &d);

        let report = fsck::scan(&dir, &*std_fs()).expect("scan");
        prop_assert!(!report.is_clean(), "damage {d:?} went undetected");
        match &d {
            Damage::FlipByte { .. } | Damage::TruncateTail { .. } => {
                let seg = report
                    .segments
                    .iter()
                    .find(|s| s.name == touched)
                    .expect("damaged segment scanned");
                prop_assert!(
                    matches!(seg.verdict, SegmentVerdict::Corrupt(_)),
                    "expected Corrupt for {d:?}, got {:?}",
                    seg.verdict
                );
                prop_assert!(report.truncate_from.is_some());
            }
            Damage::DuplicateSegment { .. } => {
                let seg = report
                    .segments
                    .iter()
                    .find(|s| s.name == touched)
                    .expect("duplicated segment scanned");
                prop_assert!(
                    matches!(seg.verdict, SegmentVerdict::DuplicateEntries(_)),
                    "expected DuplicateEntries, got {:?}",
                    seg.verdict
                );
            }
            Damage::StrayTemp { .. } => {
                prop_assert!(report.temp_files.contains(&touched));
            }
        }

        let repaired = fsck::repair(&dir, &*std_fs()).expect("repair");
        prop_assert!(
            repaired.removed.contains(&touched) || matches!(d, Damage::FlipByte { .. }),
            "repair did not remove {touched} for {d:?}: removed {:?}",
            repaired.removed
        );
        prop_assert!(fsck::scan(&dir, &*std_fs()).expect("rescan").is_clean());

        let resumed = run_sweep(JournalMode::Resume(dir.clone())).expect("resume after repair");
        prop_assert_eq!(&resumed, &template().1);
        let _ = std::fs::remove_dir_all(dir.parent().expect("case dir"));
    }

    /// Compound damage: several overlapping corruptions at once still
    /// leave a repairable journal whose resume is byte-identical.
    #[test]
    fn fsck_repair_survives_compound_damage(
        a in damage_strategy(),
        b in damage_strategy(),
        c in damage_strategy(),
    ) {
        let dir = fresh_copy("compound");
        for d in [&a, &b, &c] {
            apply(&dir, d);
        }

        fsck::repair(&dir, &*std_fs()).expect("repair");
        prop_assert!(fsck::scan(&dir, &*std_fs()).expect("rescan").is_clean());

        let resumed = run_sweep(JournalMode::Resume(dir.clone())).expect("resume after repair");
        prop_assert_eq!(&resumed, &template().1);
        let _ = std::fs::remove_dir_all(dir.parent().expect("case dir"));
    }
}
