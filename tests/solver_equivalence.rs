//! Differential equivalence harness: batched SoA solver vs scalar oracle.
//!
//! The steady-state PDN solve runs through [`ags::sim::SolveBatch`] — a
//! structure-of-arrays kernel that solves several voltage lanes per
//! sweep of the fixed-point loop. The original one-point-at-a-time
//! solver is retained verbatim behind the `scalar-oracle` cargo feature
//! as a differential oracle, switched in with
//! [`ags::sim::Simulation::set_scalar_oracle`].
//!
//! Contract pinned here, over randomized experiments (healthy and
//! faulted), warm and cold solve starts, and the sweep engine's batched
//! claiming path:
//!
//! * every per-rail mean voltage agrees within
//!   [`ags::sim::SOLVE_TOLERANCE`] (in practice the kernel preserves the
//!   scalar loop's association order, so agreement is bitwise — the
//!   pinned tests assert full [`Outcome`] equality);
//! * degrade/violation decisions are identical: same margin-violation
//!   counts, same emitted events, same settled core frequencies.
//!
//! The proptest blocks below total ≥ 1000 cases.

#![cfg(feature = "scalar-oracle")]

use ags::control::GuardbandMode;
use ags::faults::FaultPlan;
use ags::sim::{
    Assignment, Experiment, Outcome, Placement, SimEvent, SolveCache, SweepEngine, SweepSpec,
    SOLVE_TOLERANCE,
};
use ags::workloads::Catalog;
use proptest::prelude::*;
use std::sync::Arc;

const POOL: [&str; 6] = ["raytrace", "lu_cb", "mcf", "gcc", "vips", "radix"];

/// Runs one experiment through both solver paths and returns
/// One solver path's observations: the outcome, the margin-violation
/// count, and the drained event log.
type RunObservation = (Outcome, u64, Vec<SimEvent>);

/// `(batched, oracle)` observations of the same experiment.
fn run_both(
    exp: &Experiment,
    assignment: &Assignment,
    mode: GuardbandMode,
) -> (RunObservation, RunObservation) {
    let run = |oracle: bool| {
        let mut sim = exp
            .build_simulation(assignment, mode)
            .expect("build simulation");
        sim.set_scalar_oracle(oracle);
        let outcome = exp.run_with(&mut sim, mode).expect("run simulation");
        (outcome, sim.margin_violations(), sim.take_events())
    };
    (run(false), run(true))
}

/// Asserts the ISSUE's equivalence contract between a batched outcome
/// and its oracle twin: per-rail voltages within [`SOLVE_TOLERANCE`],
/// identical frequency (degrade) decisions, identical power to the
/// same tolerance-driven slack.
fn assert_outcomes_equivalent(batched: &Outcome, oracle: &Outcome, label: &str) {
    assert_eq!(
        batched.summary.sockets.len(),
        oracle.summary.sockets.len(),
        "{label}: socket count"
    );
    for (s, (b, o)) in batched
        .summary
        .sockets
        .iter()
        .zip(&oracle.summary.sockets)
        .enumerate()
    {
        let set_gap = (b.avg_set_point - o.avg_set_point).0.abs();
        assert!(
            set_gap <= SOLVE_TOLERANCE.0,
            "{label}: socket {s} set point diverged by {} mV",
            set_gap * 1e3
        );
        for core in 0..b.avg_core_voltage.len() {
            let gap = (b.avg_core_voltage[core] - o.avg_core_voltage[core])
                .0
                .abs();
            assert!(
                gap <= SOLVE_TOLERANCE.0,
                "{label}: socket {s} core {core} voltage diverged by {} mV",
                gap * 1e3
            );
        }
        // DVFS/degrade decisions must agree exactly, not within a
        // tolerance: a different settled clock means the two paths took
        // different control decisions somewhere.
        assert_eq!(
            b.avg_core_freq, o.avg_core_freq,
            "{label}: socket {s} frequency decisions diverged"
        );
    }
    assert_eq!(
        batched.summary.ticks_measured, oracle.summary.ticks_measured,
        "{label}: measured window counts diverged"
    );
}

/// Full differential check for one `(experiment, assignment, mode)`
/// point: tolerance contract, decision equality, and — because the SoA
/// kernel preserves the scalar loop's floating-point association order —
/// outright bitwise outcome equality.
fn check_point(exp: &Experiment, assignment: &Assignment, mode: GuardbandMode, label: &str) {
    let ((outcome_b, violations_b, events_b), (outcome_o, violations_o, events_o)) =
        run_both(exp, assignment, mode);
    assert_outcomes_equivalent(&outcome_b, &outcome_o, label);
    assert_eq!(
        violations_b, violations_o,
        "{label}: margin-violation decisions diverged"
    );
    assert_eq!(events_b, events_o, "{label}: event logs diverged");
    assert_eq!(outcome_b, outcome_o, "{label}: outcomes not bit-identical");
}

/// Builds the assignment for a `(workload, cores, placement)` triple.
fn assignment(workload: &str, cores: usize, placement: Placement) -> Assignment {
    let profile = Catalog::power7plus().get(workload).unwrap().clone();
    placement.assignment(&profile, cores).expect("assignment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(420))]

    /// Healthy randomized experiments: any workload, core count,
    /// placement, guardband mode, seed, and (short, debug-friendly)
    /// tick budget must solve identically on both paths.
    #[test]
    fn healthy_experiments_match_the_scalar_oracle(
        workload_idx in 0usize..6,
        cores in 1usize..=8,
        placement_idx in 0usize..3,
        mode_idx in 0usize..3,
        seed in 0u64..1_000_000,
        measure in 2usize..5,
        warmup in 0usize..3,
    ) {
        let mode = GuardbandMode::all()[mode_idx];
        let a = assignment(POOL[workload_idx], cores, Placement::all()[placement_idx]);
        let exp = Experiment::power7plus(seed).with_ticks(measure, warmup);
        check_point(&exp, &a, mode, "healthy");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(320))]

    /// Faulted randomized experiments: every named fault scenario (with
    /// a randomized plan seed) must leave the two paths in lockstep —
    /// same voltages, same violations, same degrade events.
    #[test]
    fn faulted_experiments_match_the_scalar_oracle(
        scenario_idx in 0usize..32,
        plan_seed in 0u64..1_000_000,
        workload_idx in 0usize..6,
        cores in 1usize..=8,
        mode_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let scenarios = FaultPlan::scenarios();
        let mut plan = scenarios[scenario_idx % scenarios.len()].clone();
        plan.seed = plan_seed;
        let mode = GuardbandMode::all()[mode_idx];
        let a = assignment(POOL[workload_idx], cores, Placement::SingleSocket);
        let exp = Experiment::power7plus(seed)
            .with_ticks(4, 2)
            .with_faults(plan);
        check_point(&exp, &a, mode, "faulted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(260))]

    /// Warm/cold equivalence: `run_with` resets the simulation bitwise
    /// between runs, so a reused simulation (cold first solve, warm
    /// in-run seeds) must reproduce the fresh run on both paths — and
    /// the paths must agree run after run.
    #[test]
    fn reused_simulations_match_the_scalar_oracle(
        workload_idx in 0usize..6,
        cores in 1usize..=8,
        mode_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mode = GuardbandMode::all()[mode_idx];
        let a = assignment(POOL[workload_idx], cores, Placement::Consolidated);
        let exp = Experiment::power7plus(seed).with_ticks(3, 1);

        let mut batched = exp.build_simulation(&a, mode).expect("build");
        let mut oracle = exp.build_simulation(&a, mode).expect("build");
        oracle.set_scalar_oracle(true);

        let mut first = None;
        for round in 0..3 {
            let ob = exp.run_with(&mut batched, mode).expect("batched run");
            let oo = exp.run_with(&mut oracle, mode).expect("oracle run");
            assert_outcomes_equivalent(&ob, &oo, "reused");
            prop_assert_eq!(&ob, &oo, "round {}: paths diverged", round);
            match &first {
                None => first = Some(ob),
                Some(f) => prop_assert_eq!(
                    f, &ob, "round {}: reuse not bitwise-reset", round
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Jobs-invariance of the batched sweep path (mirrors
    /// `tests/sweep_determinism.rs`): the engine's whole-lane claiming
    /// and cache prefetch must not leak scheduling order into results.
    #[test]
    fn batched_sweeps_are_jobs_invariant(
        workload_mask in 1u32..64,
        core_mask in 1u32..256,
        mode_mask in 1u32..8,
        seed in 0u64..1_000_000,
    ) {
        let pick = |mask: u32, n: usize| -> Vec<usize> {
            (0..n).filter(|i| mask & (1 << i) != 0).collect()
        };
        let workloads: Vec<String> = pick(workload_mask, 6)
            .into_iter()
            .map(|i| POOL[i].to_owned())
            .collect();
        let cores: Vec<usize> = pick(core_mask, 8).into_iter().map(|c| c + 1).collect();
        let modes: Vec<GuardbandMode> = pick(mode_mask, 3)
            .into_iter()
            .map(|i| GuardbandMode::all()[i])
            .collect();
        prop_assume!(!workloads.is_empty() && !cores.is_empty() && !modes.is_empty());
        let spec = SweepSpec::new(workloads, cores)
            .with_modes(modes)
            .with_seed(seed)
            .with_ticks(3, 1);
        let serial = SweepEngine::with_cache(1, Arc::new(SolveCache::new()))
            .run(&spec)
            .expect("serial sweep");
        let parallel = SweepEngine::with_cache(6, Arc::new(SolveCache::new()))
            .run(&spec)
            .expect("parallel sweep");
        prop_assert_eq!(serial.results_json(), parallel.results_json());
    }
}

#[test]
fn paper_grid_outcomes_are_bit_identical() {
    // The Fig. 3 presentation points, at full default placements and
    // every guardband mode: the batched path must reproduce the oracle
    // outcome exactly (a strictly stronger pin than the tolerance
    // contract — any future reassociation of the kernel shows up here
    // first).
    for mode in GuardbandMode::all() {
        for (workload, cores) in [("raytrace", 4), ("lu_cb", 8), ("mcf", 2)] {
            let a = assignment(workload, cores, Placement::SingleSocket);
            let exp = Experiment::power7plus(7).with_ticks(10, 5);
            check_point(&exp, &a, mode, workload);
        }
    }
}

#[test]
fn sweep_results_match_oracle_reruns_point_for_point() {
    // The sweep engine claims whole mode-lanes per assignment block and
    // reuses scratch simulations across a block. Re-solving each grid
    // point individually on the oracle path must reproduce the sweep's
    // stored outcome: the batched sweep machinery adds nothing beyond
    // the solver itself. The 3-mode spec also exercises lane blocks
    // whose width differs from the solver's socket batch width.
    let spec = SweepSpec::new(vec!["raytrace".into(), "radix".into()], vec![2, 5])
        .with_seed(11)
        .with_ticks(4, 2);
    let report = SweepEngine::with_cache(4, Arc::new(SolveCache::new()))
        .run(&spec)
        .expect("sweep");
    assert_eq!(report.results.len(), spec.len());
    let catalog = Catalog::power7plus();
    for r in &report.results {
        let profile = catalog.get(&r.point.workload).unwrap();
        let a = r
            .point
            .placement
            .assignment(profile, r.point.cores)
            .expect("assignment");
        let exp = Experiment::power7plus(spec.point_seed(&r.point)).with_ticks(4, 2);
        let mut sim = exp.build_simulation(&a, r.point.mode).expect("build");
        sim.set_scalar_oracle(true);
        let oracle = exp.run_with(&mut sim, r.point.mode).expect("oracle run");
        assert_outcomes_equivalent(&r.outcome, &oracle, "sweep point");
        assert_eq!(r.outcome, oracle, "sweep point {:?} diverged", r.point);
    }
}

#[test]
fn faulted_sweep_results_match_oracle_reruns() {
    // Same contract under an active fault plan: the per-lane fault
    // fingerprinting in the solve cache must hand back outcomes the
    // oracle path reproduces for the same plan.
    let plan = FaultPlan::named("dead-cpm").expect("scenario");
    let spec = SweepSpec::new(vec!["vips".into()], vec![3, 6])
        .with_modes(vec![GuardbandMode::Undervolt, GuardbandMode::Overclock])
        .with_seed(23)
        .with_ticks(4, 2)
        .with_faults(plan.clone());
    let report = SweepEngine::with_cache(3, Arc::new(SolveCache::new()))
        .run(&spec)
        .expect("faulted sweep");
    let catalog = Catalog::power7plus();
    for r in &report.results {
        let profile = catalog.get(&r.point.workload).unwrap();
        let a = r
            .point
            .placement
            .assignment(profile, r.point.cores)
            .expect("assignment");
        let exp = Experiment::power7plus(spec.point_seed(&r.point))
            .with_ticks(4, 2)
            .with_faults(plan.clone());
        let mut sim = exp.build_simulation(&a, r.point.mode).expect("build");
        sim.set_scalar_oracle(true);
        let oracle = exp.run_with(&mut sim, r.point.mode).expect("oracle run");
        assert_eq!(
            r.outcome, oracle,
            "faulted sweep point {:?} diverged",
            r.point
        );
    }
}
