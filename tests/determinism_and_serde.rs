//! Reproducibility and serializability of the whole pipeline.

use ags::control::GuardbandMode;
use ags::sim::{Assignment, Experiment, Outcome, RunSummary, ServerConfig};
use ags::workloads::Catalog;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn outcome(seed: u64, name: &str) -> Outcome {
    let exp = Experiment::power7plus(seed).with_ticks(20, 10);
    let w = Catalog::power7plus().get(name).unwrap().clone();
    let a = Assignment::single_socket(&w, 4).unwrap();
    exp.run(&a, GuardbandMode::Undervolt).unwrap()
}

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    let a = outcome(7, "vips");
    let b = outcome(7, "vips");
    assert_eq!(a, b);
}

#[test]
fn different_seeds_vary_only_through_noise() {
    let a = outcome(7, "vips");
    let b = outcome(8, "vips");
    // Different noise streams → not bit-identical…
    assert_ne!(a, b);
    // …but the physics dominates: power stays within a few percent (the
    // residual spread is activity-phase sampling over the short window).
    let rel = (a.chip_power().0 - b.chip_power().0).abs() / a.chip_power().0;
    assert!(rel < 0.04, "seed changed power by {}%", rel * 100.0);
}

#[test]
fn every_mode_is_deterministic() {
    let catalog = Catalog::power7plus();
    let w = catalog.get("radix").unwrap().clone();
    for mode in GuardbandMode::all() {
        let run = |_| {
            let exp = Experiment::power7plus(3).with_ticks(15, 5);
            let a = Assignment::borrowed(&w, 6).unwrap();
            exp.run(&a, mode).unwrap()
        };
        assert_eq!(run(0), run(1), "mode {mode} must be deterministic");
    }
}

/// Compile-time check that the public result and config types are serde
/// round-trippable (the workspace deliberately ships no format crate, so
/// this validates the derive bounds rather than bytes).
#[test]
fn public_types_are_serializable() {
    fn assert_serde<T: Serialize + DeserializeOwned>() {}
    assert_serde::<ServerConfig>();
    assert_serde::<RunSummary>();
    assert_serde::<Outcome>();
    assert_serde::<ags::workloads::WorkloadProfile>();
    assert_serde::<ags::scheduling::MipsFrequencyPredictor>();
    assert_serde::<ags::scheduling::QuantumReport>();
    assert_serde::<ags::pdn::DropBreakdown>();
    assert_serde::<ags::control::GuardbandPolicy>();
    assert_serde::<ags::control::SupervisorConfig>();
    assert_serde::<ags::faults::FaultPlan>();
    assert_serde::<ags::sim::ResilienceSpec>();
    assert_serde::<ags::sim::ScenarioResult>();
}

#[test]
fn fault_plans_round_trip_through_json() {
    let scenarios = ags::faults::FaultPlan::scenarios();
    assert!(!scenarios.is_empty());
    for plan in &scenarios {
        let reparsed = ags::faults::FaultPlan::from_json(&plan.to_json())
            .unwrap_or_else(|e| panic!("scenario `{}` failed round trip: {e}", plan.name));
        assert_eq!(plan, &reparsed, "scenario `{}` drifted", plan.name);
        assert_eq!(plan.fingerprint(), reparsed.fingerprint());
    }
    // Fingerprints are the cache-key discriminator: all distinct, and
    // never the fault-free sentinel 0.
    let mut prints: Vec<u64> = scenarios
        .iter()
        .map(ags::faults::FaultPlan::fingerprint)
        .collect();
    prints.sort_unstable();
    prints.dedup();
    assert_eq!(prints.len(), scenarios.len());
    assert!(!prints.contains(&0));
}

#[test]
fn config_round_trips_through_validation() {
    let cfg = ServerConfig::power7plus(1);
    cfg.validate().unwrap();
    let cloned = cfg.clone();
    assert_eq!(cfg, cloned);
}
