//! Property-based tests of the core invariants, across randomized
//! configurations and workloads.

use ags::control::{
    FirmwareController, GuardbandMode, GuardbandPolicy, SupervisorConfig, VoltFreqCurve,
};
use ags::faults::{
    AmesterLoss, BankDropout, DeadCpm, DriftingCpm, DroopStorm, FaultKind, FaultPlan,
    MissedFirmware, SensorBias, SensorNoise, StuckCpm,
};
use ags::pdn::{DidtConfig, DidtModel, PdnConfig, PdnGrid, Rail};
use ags::sensors::CpmBank;
use ags::sim::{Assignment, Experiment, ServerConfig};
use ags::types::{Amps, MegaHertz, Ohms, Seconds, Volts};
use ags::workloads::{Catalog, ExecutionModel, PlacementShape, Suite, WorkloadProfile};
use proptest::prelude::*;

/// One packed fault event: `(kind selector, socket, core, slot,
/// magnitude byte, onset, duration)`. Decoded by [`decode_fault`].
type PackedFault = (u8, usize, usize, usize, u8, usize, usize);

/// Decodes a packed tuple into a valid [`FaultKind`], spreading the
/// magnitude byte across whichever parameters the kind has.
fn decode_fault(sel: u8, socket: usize, core: usize, slot: usize, mag: u8) -> FaultKind {
    match sel % 9 {
        0 => FaultKind::StuckCpm(StuckCpm {
            socket,
            core,
            slot,
            reading: mag % 12,
        }),
        1 => FaultKind::DeadCpm(DeadCpm { socket, core, slot }),
        2 => FaultKind::DriftingCpm(DriftingCpm {
            socket,
            core,
            slot,
            start: mag % 12,
            taps_per_window: (f64::from(mag % 9) - 4.0) * 0.5,
        }),
        3 => FaultKind::BankDropout(BankDropout { socket }),
        4 => FaultKind::AmesterLoss(AmesterLoss { socket }),
        5 => FaultKind::SensorBias(SensorBias {
            socket,
            amps: f64::from(mag) - 128.0,
        }),
        6 => FaultKind::SensorNoise(SensorNoise {
            socket,
            amps_std: f64::from(mag) * 0.2,
        }),
        7 => FaultKind::MissedFirmware(MissedFirmware { socket }),
        _ => FaultKind::DroopStorm(DroopStorm {
            socket,
            typical_scale: 1.0 + f64::from(mag % 20) * 0.05,
            worst_scale: 1.0 + f64::from(mag) * 0.01,
            ramp_windows: usize::from(mag % 8),
        }),
    }
}

/// Assembles a validated plan from packed events.
fn decode_plan(seed: u64, events: &[PackedFault]) -> FaultPlan {
    let mut plan = FaultPlan::new("prop", seed);
    for &(sel, socket, core, slot, mag, onset, duration) in events {
        plan = plan.event(onset, duration, decode_fault(sel, socket, core, slot, mag));
    }
    plan.validate().expect("generated plans are always valid");
    plan
}

proptest! {
    #[test]
    fn rail_output_is_monotone_in_current(
        set_mv in 900.0f64..1250.0,
        r_uohm in 100.0f64..2000.0,
        i1 in 0.0f64..150.0,
        i2 in 0.0f64..150.0,
    ) {
        let rail = Rail::new(Volts::from_millivolts(set_mv), Ohms(r_uohm * 1e-6));
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        prop_assert!(rail.output(Amps(hi)) <= rail.output(Amps(lo)));
    }

    #[test]
    fn grid_voltages_never_exceed_input_and_fall_with_load(
        load_a in 0.0f64..20.0,
        uncore_a in 0.0f64..40.0,
        extra in 0.1f64..10.0,
    ) {
        let grid = PdnGrid::new(&PdnConfig::power7plus());
        let input = Volts(1.2);
        let base = grid.core_voltages(input, &[Amps(load_a); 8], Amps(uncore_a));
        let more = grid.core_voltages(input, &[Amps(load_a + extra); 8], Amps(uncore_a));
        for i in 0..8 {
            prop_assert!(base[i] <= input);
            prop_assert!(more[i] < base[i]);
        }
    }

    #[test]
    fn didt_typical_shrinks_and_worst_grows_with_cores(
        seed in 0u64..1000,
        variability in 0.3f64..1.5,
    ) {
        let model = DidtModel::new(DidtConfig::power7plus(), seed);
        for n in 1..8usize {
            prop_assert!(
                model.typical_ripple(n + 1, variability) < model.typical_ripple(n, variability)
            );
            prop_assert!(
                model.worst_droop_magnitude(n + 1, variability)
                    > model.worst_droop_magnitude(n, variability)
            );
        }
    }

    #[test]
    fn cpm_readings_are_monotone_in_margin(
        seed in 0u64..500,
        m1 in -50.0f64..250.0,
        m2 in -50.0f64..250.0,
    ) {
        let bank = CpmBank::with_seed(seed);
        let f = [MegaHertz(4200.0); 8];
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let low = bank.core_min_readings(&[Volts::from_millivolts(lo); 8], &f);
        let high = bank.core_min_readings(&[Volts::from_millivolts(hi); 8], &f);
        for i in 0..8 {
            prop_assert!(low[i] <= high[i]);
        }
    }

    #[test]
    fn firmware_stays_between_floor_and_nominal(
        observed_mhz in 2000.0f64..5000.0,
        start_offset_mv in -50.0f64..250.0,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let fw = FirmwareController::new(MegaHertz(4200.0), policy.clone()).unwrap();
        let nominal = policy.nominal_voltage(&curve, MegaHertz(4200.0));
        let mut v = nominal - Volts::from_millivolts(start_offset_mv);
        for _ in 0..50 {
            v = fw.adjust_voltage(v, MegaHertz(observed_mhz), &curve);
            prop_assert!(v >= fw.voltage_floor(&curve) - Volts(1e-9));
            prop_assert!(v <= nominal + Volts(1e-9));
        }
    }

    #[test]
    fn execution_time_is_positive_and_frequency_helps(
        ceff in 0.8f64..2.0,
        mem in 0.0f64..0.95,
        membw in 0.0f64..0.95,
        comm in 0.0f64..0.9,
        threads in 1usize..=8,
    ) {
        let w = WorkloadProfile::builder("prop", Suite::Splash2)
            .ceff_nf(ceff)
            .memory_intensity(mem)
            .membw_intensity(membw)
            .comm_intensity(comm)
            .build()
            .unwrap();
        let model = ExecutionModel::power7plus();
        let p = PlacementShape::balanced(threads);
        let slow = model.execution_time(&w, &p, 1.0);
        let fast = model.execution_time(&w, &p, 1.1);
        prop_assert!(slow.0 > 0.0);
        prop_assert!(fast <= slow, "a faster clock can never hurt");
    }

    #[test]
    fn chip_mips_scales_linearly_in_threads(
        mips in 1000.0f64..10_000.0,
        threads in 1usize..=8,
    ) {
        let w = WorkloadProfile::builder("prop", Suite::SpecCpu2006)
            .mips_per_core(mips)
            .build()
            .unwrap();
        let total = w.chip_mips(threads, 1.0);
        prop_assert!((total - mips * threads as f64).abs() < 1e-6);
    }
}

// Whole-simulation properties are expensive; keep the case count low.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn undervolt_never_breaches_the_floor_for_any_workload(
        idx in 0usize..17,
        threads in 1usize..=8,
        seed in 0u64..100,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let cfg = ServerConfig::power7plus(seed);
        let fw = FirmwareController::new(cfg.target_frequency, cfg.policy.clone()).unwrap();
        let floor = fw.voltage_floor(&cfg.curve);
        let nominal = cfg.nominal_voltage();
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(15, 10);
        let a = Assignment::single_socket(&w, threads).unwrap();
        let run = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        let set = run.summary.socket0().avg_set_point;
        prop_assert!(set >= floor - Volts(1e-9), "below floor: {set}");
        prop_assert!(set <= nominal + Volts(1e-9), "above nominal: {set}");
    }

    #[test]
    fn adaptive_modes_never_lose_to_static(
        idx in 0usize..17,
        threads in 1usize..=8,
    ) {
        // The paper's first conclusion: adaptive guardbanding consistently
        // yields improvement, regardless of mode and workload.
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let exp = Experiment::power7plus(42).with_ticks(15, 10);
        let a = Assignment::single_socket(&w, threads).unwrap();
        let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        let uv = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        let oc = exp.run(&a, GuardbandMode::Overclock).unwrap();
        prop_assert!(uv.chip_power().0 <= st.chip_power().0 + 0.3);
        prop_assert!(
            oc.summary.avg_running_freq.0 >= st.summary.avg_running_freq.0 - 1.0
        );
    }

    #[test]
    fn arbitrary_fault_plans_never_pull_the_rail_below_the_floor(
        events in prop::collection::vec(
            (0u8..9, 0usize..2, 0usize..8, 0usize..5, 0u8..=255, 0usize..25, 1usize..12),
            1..6,
        ),
        plan_seed in 0u64..1_000_000,
        seed in 0u64..100,
        threads in 1usize..=8,
    ) {
        // No combination of lying sensors, lost telemetry, frozen
        // firmware and droop storms may drag the rail set point below
        // the residual-guardband floor — supervised or not.
        let plan = decode_plan(plan_seed, &events);
        let cfg = ServerConfig::power7plus(seed);
        let fw = FirmwareController::new(cfg.target_frequency, cfg.policy.clone()).unwrap();
        let floor = fw.voltage_floor(&cfg.curve);
        let nominal = cfg.nominal_voltage();
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::single_socket(&w, threads).unwrap();
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus())
            .with_ticks(20, 5)
            .with_faults(plan);
        for supervise in [false, true] {
            let mut sim = exp.build_simulation(&a, GuardbandMode::Undervolt).unwrap();
            if supervise {
                sim.enable_supervisor(SupervisorConfig::power7plus()).unwrap();
            }
            let (_, history) = sim.run_with_history(20, 5);
            for rec in history.records() {
                for s in &rec.sockets {
                    prop_assert!(
                        s.set_point >= floor - Volts(1e-9),
                        "set point {} below floor {} (supervised: {supervise})",
                        s.set_point,
                        floor
                    );
                    prop_assert!(
                        s.set_point <= nominal + Volts(1e-9),
                        "set point {} above nominal (supervised: {supervise})",
                        s.set_point
                    );
                }
            }
        }
    }

    #[test]
    fn borrowing_reduces_per_socket_passive_drop(
        idx in 0usize..17,
        threads in 2usize..=8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let exp = Experiment::power7plus(42).with_ticks(15, 10);
        let cons = exp
            .run(&Assignment::consolidated(&w, threads).unwrap(), GuardbandMode::Undervolt)
            .unwrap();
        let borr = exp
            .run(&Assignment::borrowed(&w, threads).unwrap(), GuardbandMode::Undervolt)
            .unwrap();
        let cons_drop = cons.summary.socket0().core0_passive_drop();
        for socket in &borr.summary.sockets {
            prop_assert!(
                socket.drop[0].passive() < cons_drop + Volts(1e-6),
                "borrowing must not deepen any rail's passive drop"
            );
        }
    }
}

#[test]
fn placement_shapes_conserve_threads() {
    for n in 0..=8usize {
        assert_eq!(PlacementShape::consolidated(n).total(), n);
        assert_eq!(PlacementShape::balanced(n).total(), n);
    }
}

#[test]
fn didt_window_sampling_respects_expectations() {
    let mut model = DidtModel::new(DidtConfig::power7plus(), 3);
    let mut worst_sum = 0.0;
    let mut typ_sum = 0.0;
    for _ in 0..300 {
        let s = model.sample_window(4, 1.0, Seconds::from_millis(32.0));
        assert!(s.worst >= s.typical);
        worst_sum += s.worst.millivolts();
        typ_sum += s.typical.millivolts();
    }
    assert!(worst_sum > typ_sum);
}
