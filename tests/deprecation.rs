//! Deprecation firewall for retired APIs.
//!
//! `SolveCache::stats()` is deprecated in favour of
//! `SolveCache::counters()`; the shim is kept for downstream callers
//! but the workspace itself must not grow new call sites. A source
//! scan is crude but effective: unlike `#[deny(deprecated)]`, it also
//! catches call sites that would silence the lint with an `#[allow]`.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `dir`, skipping vendored and build
/// trees (the vendored crates are third-party surface, not ours).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_internal_callers_of_deprecated_cache_stats() {
    // Built dynamically so this test doesn't flag itself.
    let needle = format!(".{}()", "stats");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for top in ["src", "crates", "tests", "benches"] {
        rust_sources(&root.join(top), &mut sources);
    }
    assert!(
        sources.len() > 20,
        "source walk looks broken: found only {} files",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in sources {
        let text = fs::read_to_string(&path).expect("readable source file");
        for (lineno, line) in text.lines().enumerate() {
            if line.contains(&needle) {
                offenders.push(format!(
                    "{}:{}: {}",
                    path.display(),
                    lineno + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "deprecated SolveCache::{}() called; use SolveCache::counters() instead:\n{}",
        "stats",
        offenders.join("\n")
    );
}
