//! End-to-end telemetry invariance: for the same seed and spec, the
//! deterministic metric families and the per-(name, key) span counts are
//! identical at any `--jobs` count. The wall-clock `*_seconds` histogram
//! families are the one documented exception (their bucket counts depend
//! on machine speed) and are filtered out of the comparison.
//!
//! The registry and tracer are process-global, so every test here takes
//! the same lock and resets both before running.

use ags::obs::{metrics, trace};
use ags::sim::{SolveCache, SweepEngine, SweepSpec};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The snapshot restricted to deterministic families.
fn deterministic_samples() -> Vec<metrics::Sample> {
    metrics::global()
        .snapshot()
        .into_iter()
        .filter(|s| !s.family.contains("_seconds"))
        .collect()
}

/// Span counts per `(name, key)`, sorted.
fn span_counts(events: &[trace::TraceEvent]) -> Vec<(&'static str, u64, usize)> {
    let mut counts: Vec<(&'static str, u64, usize)> = Vec::new();
    for e in events {
        match counts
            .iter_mut()
            .find(|(n, k, _)| *n == e.name && *k == e.key)
        {
            Some(c) => c.2 += 1,
            None => counts.push((e.name, e.key, 1)),
        }
    }
    counts.sort_unstable();
    counts
}

/// Runs `spec` on `jobs` workers against a cold cache with telemetry on,
/// returning the deterministic samples, the span counts, and the
/// parent-edge multiset.
#[allow(clippy::type_complexity)]
fn run_with_jobs(
    spec: &SweepSpec,
    jobs: usize,
) -> (
    Vec<metrics::Sample>,
    Vec<(&'static str, u64, usize)>,
    Vec<(&'static str, &'static str, usize)>,
) {
    metrics::global().reset();
    let _ = trace::collect();
    metrics::global().set_enabled(true);
    ags::sim::telemetry::register_all();
    trace::enable();
    let engine = SweepEngine::with_cache(jobs, Arc::new(SolveCache::new()));
    let report = engine.run(spec).expect("sweep runs");
    assert_eq!(report.results.len(), spec.len());
    trace::disable();
    metrics::global().set_enabled(false);
    let samples = deterministic_samples();
    let events = trace::collect();
    (samples, span_counts(&events), parent_edges(&events))
}

/// Looks up one counter's value in a sample list.
fn counter(samples: &[metrics::Sample], family: &str) -> u64 {
    match samples.iter().find(|s| s.family == family) {
        Some(metrics::Sample {
            value: metrics::SampleValue::Counter(v),
            ..
        }) => *v,
        other => panic!("expected counter `{family}`, found {other:?}"),
    }
}

#[test]
fn fixed_spec_metrics_and_spans_are_jobs_invariant() {
    let _g = lock();
    let spec = SweepSpec::smoke_grid().with_seed(7);
    let (s1, t1, _) = run_with_jobs(&spec, 1);
    let (s2, t2, _) = run_with_jobs(&spec, 2);
    let (s8, t8, _) = run_with_jobs(&spec, 8);
    assert_eq!(s1, s2, "metric totals differ between --jobs 1 and 2");
    assert_eq!(s1, s8, "metric totals differ between --jobs 1 and 8");
    assert_eq!(t1, t2, "span counts differ between --jobs 1 and 2");
    assert_eq!(t1, t8, "span counts differ between --jobs 1 and 8");

    // The instrumentation measured what it claims to measure.
    assert_eq!(
        counter(&s1, "ags_sweep_points_claimed_total"),
        spec.len() as u64
    );
    assert_eq!(
        counter(&s1, "ags_solve_cache_hits_total") + counter(&s1, "ags_solve_cache_misses_total"),
        spec.len() as u64,
        "every point is exactly one cache hit or miss on a cold cache"
    );
    let point_spans: usize = t1
        .iter()
        .filter(|(n, _, _)| *n == "sweep_point")
        .map(|(_, _, c)| c)
        .sum();
    assert_eq!(point_spans, spec.len(), "one sweep_point span per point");
    assert!(
        t1.iter().any(|(n, _, _)| *n == "tick"),
        "tick spans recorded"
    );
}

/// Parent edges as a sorted `(child name, parent name, count)` multiset.
/// Span ids are allocation-order dependent and differ across worker
/// counts; the *names* along each parent edge must not.
fn parent_edges(events: &[trace::TraceEvent]) -> Vec<(&'static str, &'static str, usize)> {
    let names: std::collections::HashMap<u64, &'static str> =
        events.iter().map(|e| (e.span, e.name)).collect();
    let mut edges: Vec<(&'static str, &'static str, usize)> = Vec::new();
    for e in events {
        let parent = if e.parent == 0 {
            "(root)"
        } else {
            names.get(&e.parent).copied().unwrap_or("(external)")
        };
        match edges
            .iter_mut()
            .find(|(c, p, _)| *c == e.name && *p == parent)
        {
            Some(edge) => edge.2 += 1,
            None => edges.push((e.name, parent, 1)),
        }
    }
    edges.sort_unstable();
    edges
}

/// Runs `spec` under a pushed `campaign` root span and returns the
/// parent-edge multiset (what the `--trace` exporter of the CLI sees).
fn run_edges_with_jobs(spec: &SweepSpec, jobs: usize) -> Vec<(&'static str, &'static str, usize)> {
    metrics::global().reset();
    let _ = trace::collect();
    trace::enable();
    {
        let campaign = trace::span("campaign", 0);
        let _ctx = campaign.push();
        let engine = SweepEngine::with_cache(jobs, Arc::new(SolveCache::new()));
        let report = engine.run(spec).expect("sweep runs");
        assert_eq!(report.results.len(), spec.len());
    }
    trace::disable();
    parent_edges(&trace::collect())
}

#[test]
fn span_parent_edges_are_jobs_invariant() {
    let _g = lock();
    let spec = SweepSpec::smoke_grid().with_seed(11);
    let e1 = run_edges_with_jobs(&spec, 1);
    let e2 = run_edges_with_jobs(&spec, 2);
    let e8 = run_edges_with_jobs(&spec, 8);
    assert_eq!(e1, e2, "parent edges differ between --jobs 1 and 2");
    assert_eq!(e1, e8, "parent edges differ between --jobs 1 and 8");

    // The campaign root is the only top-level span, and the per-point
    // spans hang off it even when workers ran them on other threads.
    assert_eq!(
        e1.iter()
            .filter(|(_, p, _)| *p == "(root)")
            .map(|(c, _, n)| (*c, *n))
            .collect::<Vec<_>>(),
        vec![("campaign", 1)],
        "exactly one root span, the campaign"
    );
    let under_campaign: usize = e1
        .iter()
        .filter(|(c, p, _)| *c == "sweep_point" && *p == "campaign")
        .map(|(_, _, n)| n)
        .sum();
    assert_eq!(
        under_campaign,
        spec.len(),
        "every sweep_point parents onto the campaign root"
    );
    // Engine-internal spans never float: ticks and solves always hang
    // off the sweep_point that owns them (the batched-lane solver opens
    // them as siblings under the point, not nested in each other).
    for name in ["tick", "solve"] {
        assert!(
            e1.iter()
                .filter(|(c, _, _)| *c == name)
                .all(|(_, p, _)| *p == "sweep_point"),
            "every {name} span parents onto a sweep_point"
        );
    }
}

/// Workload subsets the generator draws from (all in the calibrated
/// catalog).
const WORKLOAD_PICKS: [&[&str]; 3] = [&["lu_cb"], &["radix", "raytrace"], &["lu_cb", "radix"]];
const CORE_PICKS: [&[usize]; 3] = [&[2], &[1, 4], &[2, 4]];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized specs: whatever the grid shape and seed, totals and
    /// span counts match across worker counts.
    #[test]
    fn random_spec_metrics_are_jobs_invariant(
        seed in 0u64..1_000_000,
        wl_pick in 0usize..WORKLOAD_PICKS.len(),
        core_pick in 0usize..CORE_PICKS.len(),
    ) {
        let _g = lock();
        let spec = SweepSpec::new(
            WORKLOAD_PICKS[wl_pick].iter().map(|s| (*s).to_owned()).collect(),
            CORE_PICKS[core_pick].to_vec(),
        )
        .with_seed(seed)
        .with_ticks(4, 2);
        let (s1, t1, e1) = run_with_jobs(&spec, 1);
        let (s2, t2, e2) = run_with_jobs(&spec, 2);
        let (s8, t8, e8) = run_with_jobs(&spec, 8);
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(&s1, &s8);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &t8);
        prop_assert_eq!(&e1, &e2, "parent edges must be jobs-invariant");
        prop_assert_eq!(&e1, &e8, "parent edges must be jobs-invariant");
        prop_assert_eq!(
            counter(&s1, "ags_sweep_points_claimed_total"),
            spec.len() as u64
        );
    }
}
