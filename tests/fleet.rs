//! Determinism and trend guarantees of the fleet engine.
//!
//! The contract under test: a fleet campaign's serialized results are a
//! pure function of its [`FleetSpec`] — independent of the worker count,
//! of which worker stole which shard, and of whether server-epochs came
//! from the solve cache or were simulated cold. Plus a seeded golden
//! trend: a flash crowd must look like a flash crowd.

use ags::fleet::{FleetEngine, FleetSpec, TrafficModel};
use ags::sim::SolveCache;
use proptest::prelude::*;
use std::sync::Arc;

/// An engine with its own private cache, so per-test hit/miss accounting
/// is not polluted by other tests in the same process.
fn engine(jobs: usize) -> FleetEngine {
    FleetEngine::with_cache(jobs, Arc::new(SolveCache::new()))
}

/// A campaign small enough for CI but sharded finely enough (2 servers
/// per shard) that multi-worker runs actually steal.
fn stealable_spec(servers: usize, epochs: usize, traffic: TrafficModel, seed: u64) -> FleetSpec {
    let mut spec = FleetSpec::smoke()
        .with_scale(servers, epochs)
        .with_traffic(traffic)
        .with_seed(seed);
    spec.measure_ticks = 3;
    spec.warmup_ticks = 2;
    spec.shard_servers = 2;
    spec
}

#[test]
fn fleet_campaign_is_identical_at_one_two_and_eight_workers() {
    let spec = stealable_spec(14, 5, TrafficModel::Diurnal, 42);
    let baseline = engine(1).run(&spec).expect("serial fleet").results_json();
    for jobs in [2, 8] {
        let run = engine(jobs).run(&spec).expect("parallel fleet");
        assert_eq!(
            baseline,
            run.results_json(),
            "results diverged at {jobs} workers"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_results_exactly() {
    let spec = stealable_spec(8, 4, TrafficModel::RollingDeploy, 7);
    let e = engine(2);
    let cold = e.run(&spec).expect("cold fleet");
    let warm = e.run(&spec).expect("warm fleet");
    assert_eq!(cold.results_json(), warm.results_json());
    let stats = warm.stats.cache;
    assert_eq!(
        stats.misses, cold.stats.cache.misses,
        "the warm rerun must add no new solves"
    );
}

#[test]
fn flash_crowd_golden_trend() {
    // Seeded golden-trend check: the campaign's power trajectory must
    // show the traffic shape — quiet baseline, a spike an order bigger,
    // then a monotone decay back toward the baseline.
    // 10 epochs: the excess (80 % over baseline, halved per epoch after
    // the spike at epoch 2) reaches zero by epoch 9.
    let spec = stealable_spec(16, 10, TrafficModel::FlashCrowd, 42);
    let report = engine(4).run(&spec).expect("flash-crowd fleet");
    let rollup = report.epoch_rollup();
    let power: Vec<f64> = rollup.iter().map(|r| r.fleet_power_w).collect();

    // Epochs 0 and 1 sit at the identical baseline operating point.
    assert!((power[0] - power[1]).abs() < 1e-9, "flat baseline");
    // The spike at epoch 2 dwarfs the baseline.
    assert!(power[2] > 3.0 * power[0], "spike: {power:?}");
    // Geometric decay: strictly falling until it reaches baseline.
    assert!(
        power[2] > power[3] && power[3] > power[4],
        "decay: {power:?}"
    );
    // The tail returns to the baseline exactly (same demand, same
    // operating points, memoized or not).
    assert!((power[9] - power[0]).abs() < 1e-9, "recovery: {power:?}");
    // Active-server counts follow the same shape.
    assert!(rollup[2].active_servers > rollup[0].active_servers);
    assert_eq!(rollup[9].active_servers, rollup[0].active_servers);
}

#[test]
fn every_traffic_model_places_exactly_its_demand() {
    for traffic in TrafficModel::all() {
        let spec = stealable_spec(10, 6, traffic, 3);
        let report = engine(2).run(&spec).expect("fleet");
        for r in report.epoch_rollup() {
            assert_eq!(r.threads, r.demand, "{traffic:?} epoch {}", r.epoch);
            assert_eq!(r.active_servers + r.standby_servers, spec.servers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Work stealing never perturbs results: for random fleet shapes,
    /// traffic models and seeds, the serialized report is byte-identical
    /// at 1, 2 and 8 workers.
    #[test]
    fn stealing_is_invisible_in_the_results(
        servers in 4usize..16,
        epochs in 2usize..6,
        traffic_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let traffic = TrafficModel::all()[traffic_idx];
        let spec = stealable_spec(servers, epochs, traffic, seed);
        let baseline = engine(1).run(&spec).expect("serial fleet").results_json();
        for jobs in [2, 8] {
            let run = engine(jobs).run(&spec).expect("parallel fleet");
            prop_assert_eq!(&baseline, &run.results_json(), "jobs {}", jobs);
        }
    }
}
