//! Determinism guarantees of the parallel sweep engine.
//!
//! The engine's contract: a sweep's serialized results are a pure
//! function of its [`SweepSpec`] — independent of the worker count, the
//! scheduling order, and whether the solves came from the memoization
//! cache or were computed cold. These tests pin that contract, including
//! a property test over randomly-shaped specs.

use ags::control::GuardbandMode;
use ags::faults::FaultPlan;
use ags::sim::{Placement, SolveCache, SweepEngine, SweepSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// An engine with its own private cache, so per-test hit/miss counts
/// are not polluted by other tests in the same process.
fn engine(jobs: usize) -> SweepEngine {
    SweepEngine::with_cache(jobs, Arc::new(SolveCache::new()))
}

#[test]
fn fig10_grid_is_identical_at_one_and_eight_workers() {
    let spec = SweepSpec::fig10_grid();
    let serial = engine(1).run(&spec).expect("serial sweep");
    let parallel = engine(8).run(&spec).expect("parallel sweep");
    assert_eq!(serial.results.len(), spec.len());
    assert_eq!(serial.results_json(), parallel.results_json());
}

#[test]
fn multi_dimension_grid_is_identical_across_worker_counts() {
    let spec = SweepSpec::new(
        vec!["raytrace".into(), "lu_cb".into(), "mcf".into()],
        vec![1, 4, 8],
    )
    .with_placements(vec![
        Placement::SingleSocket,
        Placement::Consolidated,
        Placement::Borrowed,
    ])
    .with_ticks(6, 3);
    let baseline = engine(1).run(&spec).expect("serial sweep").results_json();
    for jobs in [2, 3, 8, 16] {
        let run = engine(jobs).run(&spec).expect("parallel sweep");
        assert_eq!(
            baseline,
            run.results_json(),
            "results diverged at {jobs} workers"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_results_exactly() {
    let spec = SweepSpec::new(vec!["raytrace".into(), "gcc".into()], vec![2, 8]).with_ticks(6, 3);
    let e = engine(4);
    let cold = e.run(&spec).expect("cold sweep");
    assert_eq!(
        cold.stats.cache.misses,
        spec.len() as u64,
        "cold = all misses"
    );
    let warm = e.run(&spec).expect("warm sweep");
    assert_eq!(warm.stats.cache.hits, spec.len() as u64, "warm = all hits");
    assert_eq!(cold.results_json(), warm.results_json());

    // A completely fresh engine (new cache) also agrees with both.
    let fresh = engine(1).run(&spec).expect("fresh sweep");
    assert_eq!(fresh.results_json(), cold.results_json());
}

#[test]
fn mode_subsets_reproduce_full_grid_points() {
    // Workers reuse one scratch simulation across all modes of an
    // assignment block (chunk = modes.len()). A single-mode spec makes
    // every block one point — scratch rebuilt per assignment — while the
    // full spec resets the same simulation between modes. Both paths
    // must produce identical outcomes point for point.
    let full = SweepSpec::new(vec!["raytrace".into(), "radix".into()], vec![2, 5]).with_ticks(5, 2);
    let full_report = engine(4).run(&full).expect("full sweep");
    for mode in MODES {
        let sub = full.clone().with_modes(vec![mode]);
        let sub_report = engine(3).run(&sub).expect("single-mode sweep");
        assert_eq!(sub_report.results.len(), 4);
        for r in &sub_report.results {
            let matching = full_report
                .outcome(&r.point.workload, r.point.cores, r.point.placement, mode)
                .expect("full grid covers the subset");
            assert_eq!(&r.outcome, matching, "point {:?}", r.point);
        }
    }
}

#[test]
fn results_are_ordered_by_grid_index() {
    let spec = SweepSpec::new(vec!["vips".into(), "radix".into()], vec![1, 2, 3]).with_ticks(4, 2);
    let report = engine(8).run(&spec).expect("sweep");
    let indices: Vec<usize> = report.results.iter().map(|r| r.point.index).collect();
    assert_eq!(indices, (0..spec.len()).collect::<Vec<_>>());
}

#[test]
fn spec_json_round_trip_preserves_results() {
    let spec = SweepSpec::new(vec!["raytrace".into()], vec![2, 4])
        .with_modes(vec![GuardbandMode::Undervolt])
        .with_seed(7)
        .with_ticks(5, 2);
    let reparsed = SweepSpec::from_json(&spec.to_json()).expect("round trip");
    assert_eq!(
        engine(2).run(&spec).expect("sweep").results_json(),
        engine(2).run(&reparsed).expect("sweep").results_json()
    );
}

const POOL: [&str; 6] = ["raytrace", "lu_cb", "mcf", "gcc", "vips", "radix"];
const MODES: [GuardbandMode; 3] = [
    GuardbandMode::StaticGuardband,
    GuardbandMode::Overclock,
    GuardbandMode::Undervolt,
];

/// Decodes a non-zero bitmask into the selected pool entries.
fn pick<T: Clone>(pool: &[T], mask: u32) -> Vec<T> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_specs_are_worker_count_invariant(
        workload_mask in 1u32..64,
        core_mask in 1u32..256,
        mode_mask in 1u32..8,
        placement_mask in 1u32..8,
        seed in 0u64..1_000_000,
        measure in 3usize..6,
        warmup in 0usize..3,
    ) {
        let spec = SweepSpec::new(
            pick(&POOL.map(str::to_owned), workload_mask),
            (1..=8).filter(|c| core_mask & (1 << (c - 1)) != 0).collect(),
        )
        .with_modes(pick(&MODES, mode_mask))
        .with_placements(pick(&Placement::all(), placement_mask))
        .with_seed(seed)
        .with_ticks(measure, warmup);

        let serial = engine(1).run(&spec).expect("serial sweep");
        let parallel = engine(5).run(&spec).expect("parallel sweep");
        prop_assert_eq!(serial.results.len(), spec.len());
        prop_assert_eq!(serial.stats.cache.misses, spec.len() as u64);
        prop_assert_eq!(serial.results_json(), parallel.results_json());
    }

    #[test]
    fn faulted_sweeps_are_worker_count_invariant(
        scenario_idx in 0usize..32,
        plan_seed in 0u64..1_000_000,
        workload_mask in 1u32..64,
        core_mask in 1u32..256,
        seed in 0u64..1_000_000,
    ) {
        // Fault effects are pure functions of (plan, tick, socket), so a
        // faulted grid must stay bitwise identical at any worker count —
        // including plans whose stochastic effects draw from their seed.
        let scenarios = FaultPlan::scenarios();
        let mut plan = scenarios[scenario_idx % scenarios.len()].clone();
        plan.seed = plan_seed;
        let spec = SweepSpec::new(
            pick(&POOL.map(str::to_owned), workload_mask),
            (1..=8).filter(|c| core_mask & (1 << (c - 1)) != 0).collect(),
        )
        .with_modes(vec![GuardbandMode::StaticGuardband, GuardbandMode::Undervolt])
        .with_seed(seed)
        .with_ticks(5, 2)
        .with_faults(plan);

        let serial = engine(1).run(&spec).expect("serial faulted sweep");
        let parallel = engine(6).run(&spec).expect("parallel faulted sweep");
        prop_assert_eq!(serial.results.len(), spec.len());
        prop_assert_eq!(serial.results_json(), parallel.results_json());
    }
}
