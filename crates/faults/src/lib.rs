//! Seeded, serializable fault-injection plans for the POWER7+ model.
//!
//! A [`FaultPlan`] is a timeline of [`FaultEvent`]s — each an onset
//! window, a duration, and a [`FaultKind`] — covering the failure modes
//! that matter when the guardband is thin: stuck/dead/drifting CPMs,
//! whole-bank readout dropouts, AMESTER telemetry loss, VRM
//! current-sensor bias and noise bursts, missed 32 ms firmware windows,
//! and worst-case di/dt droop storms.
//!
//! Every stochastic effect (sensor noise) is a pure function of
//! `(plan seed, event index, window index)`, so a faulted run is bitwise
//! reproducible from the plan alone: resetting a simulation and replaying
//! it, or solving the same grid point on a different worker, yields the
//! same trajectory. The per-window view a simulation consumes is
//! [`SocketWindow`], assembled on the stack by
//! [`FaultPlan::socket_window`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p7_types::{
    seed_for, seed_for_indexed, SplitMix64, CORES_PER_SOCKET, CPMS_PER_CORE, CPMS_PER_SOCKET,
    NUM_SOCKETS,
};
use serde::{Deserialize, Serialize};

/// Number of CPM tap positions (readings are `0..CPM_TAPS`).
const CPM_TAPS: u8 = 12;

/// Duration value meaning "until the end of the run".
pub const FOREVER: usize = usize::MAX;

/// A CPM stuck at a fixed tap reading (e.g. a latched comparator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StuckCpm {
    /// Socket index.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
    /// CPM slot within the core.
    pub slot: usize,
    /// The tap value the sensor reports while the fault is active.
    pub reading: u8,
}

/// A CPM that died outright: it reads tap 0, which the hardware
/// interprets as "no measurable margin" and fails safe on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadCpm {
    /// Socket index.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
    /// CPM slot within the core.
    pub slot: usize,
}

/// A CPM whose reading walks away from a starting tap at a constant
/// rate (aging or thermal de-calibration of the synthetic path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingCpm {
    /// Socket index.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
    /// CPM slot within the core.
    pub slot: usize,
    /// Tap reported on the onset window.
    pub start: u8,
    /// Taps of drift per 32 ms window; may be negative (drifts low).
    pub taps_per_window: f64,
}

/// The whole 40-CPM readout of a socket drops out: every monitor
/// reports tap 0 for the duration (a scan-chain or readout-bus fault).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankDropout {
    /// Socket index.
    pub socket: usize,
}

/// AMESTER telemetry windows are lost for the duration: the out-of-band
/// monitor records nothing, so observers see stale data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmesterLoss {
    /// Socket index.
    pub socket: usize,
}

/// A constant bias on the VRM output-current sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorBias {
    /// Socket index.
    pub socket: usize,
    /// Bias added to the sensed current, in amps.
    pub amps: f64,
}

/// A noise burst on the VRM output-current sensor: each window adds an
/// independent zero-mean Gaussian error drawn from the plan seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorNoise {
    /// Socket index.
    pub socket: usize,
    /// Standard deviation of the per-window error, in amps.
    pub amps_std: f64,
}

/// The 32 ms firmware voltage-adjustment window is missed: the rail
/// set point holds at its last value for the duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissedFirmware {
    /// Socket index.
    pub socket: usize,
}

/// A worst-case di/dt storm: the noise profile's typical and worst
/// droops are scaled up, ramping linearly over `ramp_windows` so the
/// resonance builds rather than appearing fully formed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopStorm {
    /// Socket index.
    pub socket: usize,
    /// Multiplier on the typical (average) droop at full strength.
    pub typical_scale: f64,
    /// Multiplier on the worst-case droop at full strength.
    pub worst_scale: f64,
    /// Windows over which the scales ramp from 1.0 to full strength.
    pub ramp_windows: usize,
}

/// One failure mode, with its target and parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// CPM stuck at a fixed reading.
    StuckCpm(StuckCpm),
    /// CPM reads tap 0 (dead sensor; hardware fails safe).
    DeadCpm(DeadCpm),
    /// CPM reading drifts at a constant rate.
    DriftingCpm(DriftingCpm),
    /// Whole-bank readout dropout (all 40 CPMs read tap 0).
    BankDropout(BankDropout),
    /// AMESTER telemetry windows lost.
    AmesterLoss(AmesterLoss),
    /// Constant VRM current-sensor bias.
    SensorBias(SensorBias),
    /// VRM current-sensor noise burst.
    SensorNoise(SensorNoise),
    /// Missed 32 ms firmware voltage windows.
    MissedFirmware(MissedFirmware),
    /// Worst-case di/dt droop storm.
    DroopStorm(DroopStorm),
}

impl FaultKind {
    /// The socket this fault targets.
    #[must_use]
    pub fn socket(&self) -> usize {
        match self {
            FaultKind::StuckCpm(f) => f.socket,
            FaultKind::DeadCpm(f) => f.socket,
            FaultKind::DriftingCpm(f) => f.socket,
            FaultKind::BankDropout(f) => f.socket,
            FaultKind::AmesterLoss(f) => f.socket,
            FaultKind::SensorBias(f) => f.socket,
            FaultKind::SensorNoise(f) => f.socket,
            FaultKind::MissedFirmware(f) => f.socket,
            FaultKind::DroopStorm(f) => f.socket,
        }
    }

    /// Short stable label for telemetry and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::StuckCpm(_) => "stuck-cpm",
            FaultKind::DeadCpm(_) => "dead-cpm",
            FaultKind::DriftingCpm(_) => "drifting-cpm",
            FaultKind::BankDropout(_) => "bank-dropout",
            FaultKind::AmesterLoss(_) => "amester-loss",
            FaultKind::SensorBias(_) => "sensor-bias",
            FaultKind::SensorNoise(_) => "sensor-noise",
            FaultKind::MissedFirmware(_) => "missed-firmware",
            FaultKind::DroopStorm(_) => "droop-storm",
        }
    }

    /// Checks target indices and parameter ranges.
    fn validate(&self) -> Result<(), String> {
        let check_socket = |s: usize| {
            if s < NUM_SOCKETS {
                Ok(())
            } else {
                Err(format!("socket {s} out of range (< {NUM_SOCKETS})"))
            }
        };
        let check_cpm = |core: usize, slot: usize| {
            if core >= CORES_PER_SOCKET {
                Err(format!("core {core} out of range (< {CORES_PER_SOCKET})"))
            } else if slot >= CPMS_PER_CORE {
                Err(format!("slot {slot} out of range (< {CPMS_PER_CORE})"))
            } else {
                Ok(())
            }
        };
        let check_finite = |x: f64, what: &str| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} must be finite, got {x}"))
            }
        };
        match *self {
            FaultKind::StuckCpm(f) => {
                check_socket(f.socket)?;
                check_cpm(f.core, f.slot)?;
                if f.reading >= CPM_TAPS {
                    return Err(format!("stuck reading {} out of range (< 12)", f.reading));
                }
                Ok(())
            }
            FaultKind::DeadCpm(f) => {
                check_socket(f.socket)?;
                check_cpm(f.core, f.slot)
            }
            FaultKind::DriftingCpm(f) => {
                check_socket(f.socket)?;
                check_cpm(f.core, f.slot)?;
                if f.start >= CPM_TAPS {
                    return Err(format!("drift start {} out of range (< 12)", f.start));
                }
                check_finite(f.taps_per_window, "taps_per_window")
            }
            FaultKind::BankDropout(f) => check_socket(f.socket),
            FaultKind::AmesterLoss(f) => check_socket(f.socket),
            FaultKind::SensorBias(f) => {
                check_socket(f.socket)?;
                check_finite(f.amps, "sensor bias")
            }
            FaultKind::SensorNoise(f) => {
                check_socket(f.socket)?;
                check_finite(f.amps_std, "sensor noise std")?;
                if f.amps_std < 0.0 {
                    return Err("sensor noise std must be non-negative".into());
                }
                Ok(())
            }
            FaultKind::MissedFirmware(f) => check_socket(f.socket),
            FaultKind::DroopStorm(f) => {
                check_socket(f.socket)?;
                check_finite(f.typical_scale, "typical_scale")?;
                check_finite(f.worst_scale, "worst_scale")?;
                if f.typical_scale < 1.0 || f.worst_scale < 1.0 {
                    return Err("droop storm scales must be >= 1.0".into());
                }
                Ok(())
            }
        }
    }
}

/// One fault on the plan's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// First window (0-based tick index) the fault is active.
    pub onset: usize,
    /// Number of windows the fault lasts; [`FOREVER`] for permanent.
    pub duration: usize,
    /// What fails.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the fault is active during window `tick`.
    #[must_use]
    pub fn active_at(&self, tick: usize) -> bool {
        tick >= self.onset && tick - self.onset < self.duration
    }

    /// Whether `tick` is the first window after the fault cleared.
    #[must_use]
    pub fn ends_at(&self, tick: usize) -> bool {
        self.duration != FOREVER && tick >= self.onset && tick - self.onset == self.duration
    }
}

/// The per-window, per-socket effect of a plan: what a simulation must
/// apply before ticking that socket. Built entirely on the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketWindow {
    /// For each flat CPM index (`core * 5 + slot`), the tap the sensor
    /// is forced to report this window, or `None` for healthy.
    pub cpm: [Option<u8>; CPMS_PER_SOCKET],
    /// AMESTER telemetry for this window is lost.
    pub telemetry_lost: bool,
    /// The firmware voltage window is missed (set point holds).
    pub firmware_missed: bool,
    /// Whether any rail-sensor event targets this socket anywhere in
    /// the plan (so expiry can restore a zero bias).
    pub rail_sensor_touched: bool,
    /// Total current-sensor error this window, in amps.
    pub sensor_error_amps: f64,
    /// Multiplier on the typical droop this window.
    pub droop_typical_scale: f64,
    /// Multiplier on the worst-case droop this window.
    pub droop_worst_scale: f64,
}

impl Default for SocketWindow {
    fn default() -> Self {
        SocketWindow {
            cpm: [None; CPMS_PER_SOCKET],
            telemetry_lost: false,
            firmware_missed: false,
            rail_sensor_touched: false,
            sensor_error_amps: 0.0,
            droop_typical_scale: 1.0,
            droop_worst_scale: 1.0,
        }
    }
}

impl SocketWindow {
    /// Bitmask of flat CPM indices forced by the plan this window.
    #[must_use]
    pub fn cpm_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, o) in self.cpm.iter().enumerate() {
            if o.is_some() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Whether this window carries any effect at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self == &SocketWindow::default()
    }
}

/// A named, seeded timeline of fault events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scenario name (stable identifier in reports and caches).
    pub name: String,
    /// Master seed for the plan's stochastic effects.
    pub seed: u64,
    /// The timeline; events may overlap freely.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given name and seed.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        FaultPlan {
            name: name.into(),
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an event (builder style).
    #[must_use]
    pub fn event(mut self, onset: usize, duration: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            onset,
            duration,
            kind,
        });
        self
    }

    /// Whether the plan has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event's target indices and parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.duration == 0 {
                return Err(format!("event {i}: duration must be > 0"));
            }
            e.kind
                .validate()
                .map_err(|msg| format!("event {i} ({}): {msg}", e.kind.label()))?;
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of the serialized plan, for cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let json = serde::json::to_string(self);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in json.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Serializes the plan to deterministic JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a plan from JSON and validates it.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let plan: FaultPlan =
            serde::json::from_str(json).map_err(|e| format!("fault plan: {e}"))?;
        plan.validate()?;
        Ok(plan)
    }

    /// Assembles the effect of the plan on `socket` during window
    /// `tick`. Pure: the same `(plan, tick, socket)` always yields the
    /// same window, which is what keeps faulted sweeps deterministic at
    /// any worker count.
    #[must_use]
    pub fn socket_window(&self, tick: usize, socket: usize) -> SocketWindow {
        let mut w = SocketWindow::default();
        for (idx, e) in self.events.iter().enumerate() {
            if e.kind.socket() != socket {
                continue;
            }
            if matches!(e.kind, FaultKind::SensorBias(_) | FaultKind::SensorNoise(_)) {
                w.rail_sensor_touched = true;
            }
            if !e.active_at(tick) {
                continue;
            }
            match e.kind {
                FaultKind::StuckCpm(f) => {
                    w.cpm[f.core * CPMS_PER_CORE + f.slot] = Some(f.reading);
                }
                FaultKind::DeadCpm(f) => {
                    w.cpm[f.core * CPMS_PER_CORE + f.slot] = Some(0);
                }
                FaultKind::DriftingCpm(f) => {
                    let elapsed = (tick - e.onset) as f64;
                    let tap = f64::from(f.start) + f.taps_per_window * elapsed;
                    let tap = tap.round().clamp(0.0, f64::from(CPM_TAPS - 1));
                    w.cpm[f.core * CPMS_PER_CORE + f.slot] = Some(tap as u8);
                }
                FaultKind::BankDropout(_) => {
                    w.cpm = [Some(0); CPMS_PER_SOCKET];
                }
                FaultKind::AmesterLoss(_) => w.telemetry_lost = true,
                FaultKind::MissedFirmware(_) => w.firmware_missed = true,
                FaultKind::SensorBias(f) => w.sensor_error_amps += f.amps,
                FaultKind::SensorNoise(f) => {
                    // Per-window draw keyed on (seed, event, window): the
                    // burst replays identically after a reset.
                    let stream = seed_for_indexed(self.seed, "sensor-noise", idx);
                    let mut rng = SplitMix64::new(seed_for_indexed(stream, "window", tick));
                    w.sensor_error_amps += f.amps_std * rng.normal();
                }
                FaultKind::DroopStorm(f) => {
                    let strength = if f.ramp_windows == 0 {
                        1.0
                    } else {
                        (((tick - e.onset) + 1) as f64 / f.ramp_windows as f64).min(1.0)
                    };
                    w.droop_typical_scale *= 1.0 + (f.typical_scale - 1.0) * strength;
                    w.droop_worst_scale *= 1.0 + (f.worst_scale - 1.0) * strength;
                }
            }
        }
        // A storm never inverts the ordering worst >= typical.
        if w.droop_worst_scale < w.droop_typical_scale {
            w.droop_worst_scale = w.droop_typical_scale;
        }
        w
    }

    /// The default seed used by the shipped scenarios.
    #[must_use]
    pub fn scenario_seed(name: &str) -> u64 {
        seed_for(0xFA17, name)
    }

    /// The shipped campaign scenarios, in report order.
    #[must_use]
    pub fn scenarios() -> Vec<FaultPlan> {
        vec![
            FaultPlan::stuck_high_cpm(),
            FaultPlan::dead_cpm(),
            FaultPlan::drifting_cpm(),
            FaultPlan::bank_dropout(),
            FaultPlan::amester_loss(),
            FaultPlan::vrm_sensor_storm(),
            FaultPlan::missed_firmware(),
            FaultPlan::droop_storm(),
        ]
    }

    /// Looks up a shipped scenario by name.
    #[must_use]
    pub fn named(name: &str) -> Option<FaultPlan> {
        FaultPlan::scenarios().into_iter().find(|p| p.name == name)
    }

    /// One CPM latches at the top tap from window 10 onward: the slot
    /// claims huge margin while its siblings disagree.
    #[must_use]
    pub fn stuck_high_cpm() -> FaultPlan {
        FaultPlan::new("stuck-high-cpm", Self::scenario_seed("stuck-high-cpm")).event(
            10,
            FOREVER,
            FaultKind::StuckCpm(StuckCpm {
                socket: 0,
                core: 2,
                slot: 3,
                reading: 11,
            }),
        )
    }

    /// One CPM dies (reads tap 0) from window 10 onward; the hardware
    /// fail-safe engages on its core.
    #[must_use]
    pub fn dead_cpm() -> FaultPlan {
        FaultPlan::new("dead-cpm", Self::scenario_seed("dead-cpm")).event(
            10,
            FOREVER,
            FaultKind::DeadCpm(DeadCpm {
                socket: 0,
                core: 1,
                slot: 2,
            }),
        )
    }

    /// A CPM drifts upward from its calibration point by a quarter tap
    /// per window starting at window 8.
    #[must_use]
    pub fn drifting_cpm() -> FaultPlan {
        FaultPlan::new("drifting-cpm", Self::scenario_seed("drifting-cpm")).event(
            8,
            FOREVER,
            FaultKind::DriftingCpm(DriftingCpm {
                socket: 0,
                core: 4,
                slot: 1,
                start: 2,
                taps_per_window: 0.25,
            }),
        )
    }

    /// The whole socket-0 readout drops out for windows 20..26.
    #[must_use]
    pub fn bank_dropout() -> FaultPlan {
        FaultPlan::new("bank-dropout", Self::scenario_seed("bank-dropout")).event(
            20,
            6,
            FaultKind::BankDropout(BankDropout { socket: 0 }),
        )
    }

    /// AMESTER telemetry is lost for windows 12..24.
    #[must_use]
    pub fn amester_loss() -> FaultPlan {
        FaultPlan::new("amester-loss", Self::scenario_seed("amester-loss")).event(
            12,
            12,
            FaultKind::AmesterLoss(AmesterLoss { socket: 0 }),
        )
    }

    /// The VRM current sensor picks up a 12 A bias plus an 8 A-std
    /// noise burst for windows 10..40.
    #[must_use]
    pub fn vrm_sensor_storm() -> FaultPlan {
        FaultPlan::new("vrm-sensor-storm", Self::scenario_seed("vrm-sensor-storm"))
            .event(
                10,
                30,
                FaultKind::SensorBias(SensorBias {
                    socket: 0,
                    amps: 12.0,
                }),
            )
            .event(
                10,
                30,
                FaultKind::SensorNoise(SensorNoise {
                    socket: 0,
                    amps_std: 8.0,
                }),
            )
    }

    /// The firmware misses its voltage window for windows 15..23.
    #[must_use]
    pub fn missed_firmware() -> FaultPlan {
        FaultPlan::new("missed-firmware", Self::scenario_seed("missed-firmware")).event(
            15,
            8,
            FaultKind::MissedFirmware(MissedFirmware { socket: 0 }),
        )
    }

    /// Two di/dt storms on socket 0: the worst-case droop ramps to 2.2x
    /// over ten windows, releases, then returns. The ramp matters: each
    /// window adds a few millivolts of droop, so a sticky-reading
    /// watchdog sees the margin close before it is gone. (A storm whose
    /// per-window growth outruns both the firmware slew and the residual
    /// guardband is not reactively survivable by any scheme.) The first
    /// burst coincides with missed firmware windows — the in-band servo
    /// cannot back the rail off, so an unsupervised undervolted socket
    /// rides the shrinking margin into violation, while the supervisor's
    /// out-of-band snap to nominal still averts it.
    #[must_use]
    pub fn droop_storm() -> FaultPlan {
        let storm = |socket| {
            FaultKind::DroopStorm(DroopStorm {
                socket,
                typical_scale: 1.3,
                worst_scale: 2.6,
                ramp_windows: 10,
            })
        };
        FaultPlan::new("droop-storm", Self::scenario_seed("droop-storm"))
            .event(14, 10, storm(0))
            .event(
                14,
                10,
                FaultKind::MissedFirmware(MissedFirmware { socket: 0 }),
            )
            .event(34, 10, storm(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_window_arithmetic_has_no_overflow() {
        let e = FaultEvent {
            onset: 5,
            duration: FOREVER,
            kind: FaultKind::BankDropout(BankDropout { socket: 0 }),
        };
        assert!(!e.active_at(4));
        assert!(e.active_at(5));
        assert!(e.active_at(usize::MAX));
        assert!(!e.ends_at(usize::MAX));

        let bounded = FaultEvent {
            onset: 3,
            duration: 2,
            kind: e.kind,
        };
        assert!(bounded.active_at(3) && bounded.active_at(4));
        assert!(!bounded.active_at(5));
        assert!(bounded.ends_at(5));
        assert!(!bounded.ends_at(6));
    }

    #[test]
    fn shipped_scenarios_are_valid_and_distinctly_named() {
        let scenarios = FaultPlan::scenarios();
        let mut names: Vec<&str> = scenarios.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario name");
        for plan in &scenarios {
            plan.validate().expect("shipped scenario validates");
            assert!(!plan.is_empty());
            assert_eq!(
                FaultPlan::named(&plan.name).as_ref(),
                Some(plan),
                "named lookup round-trips"
            );
        }
    }

    #[test]
    fn json_round_trip_preserves_plan_and_fingerprint() {
        for plan in FaultPlan::scenarios() {
            let json = plan.to_json();
            let back = FaultPlan::from_json(&json).expect("parse");
            assert_eq!(back, plan);
            assert_eq!(back.fingerprint(), plan.fingerprint());
        }
        let a = FaultPlan::dead_cpm();
        let b = FaultPlan::droop_storm();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn socket_windows_are_deterministic_and_socket_scoped() {
        let plan = FaultPlan::vrm_sensor_storm();
        let w1 = plan.socket_window(15, 0);
        let w2 = plan.socket_window(15, 0);
        assert_eq!(w1, w2, "same (tick, socket) must reproduce bitwise");
        assert!(w1.rail_sensor_touched);
        assert!(w1.sensor_error_amps != 0.0);
        // Different windows draw different noise.
        assert_ne!(
            plan.socket_window(16, 0).sensor_error_amps,
            w1.sensor_error_amps
        );
        // The other socket is untouched.
        assert!(plan.socket_window(15, 1).is_quiet());
        // Outside the burst the error is zero but the touch flag stays,
        // so a simulation restores the unbiased sensor.
        let after = plan.socket_window(45, 0);
        assert_eq!(after.sensor_error_amps, 0.0);
        assert!(after.rail_sensor_touched);
    }

    #[test]
    fn drifting_cpm_saturates_at_the_tap_limits() {
        let plan = FaultPlan::drifting_cpm();
        let flat = 4 * CPMS_PER_CORE + 1;
        let start = plan.socket_window(8, 0).cpm[flat].unwrap();
        assert_eq!(start, 2);
        let later = plan.socket_window(8 + 200, 0).cpm[flat].unwrap();
        assert_eq!(later, 11, "drift clamps at the top tap");
        assert!(plan.socket_window(7, 0).cpm[flat].is_none());
    }

    #[test]
    fn droop_storm_ramps_and_never_inverts_ordering() {
        let plan = FaultPlan::droop_storm();
        let onset = plan.socket_window(14, 0);
        let full = plan.socket_window(23, 0);
        assert!(onset.droop_worst_scale < full.droop_worst_scale);
        assert!((full.droop_worst_scale - 2.6).abs() < 1e-12);
        for tick in 10..50 {
            let w = plan.socket_window(tick, 0);
            assert!(w.droop_worst_scale >= w.droop_typical_scale);
        }
        // Between the bursts the profile returns to nominal.
        assert!(plan.socket_window(30, 0).is_quiet());
    }

    #[test]
    fn bank_dropout_masks_all_cpms_then_clears() {
        let plan = FaultPlan::bank_dropout();
        let during = plan.socket_window(22, 0);
        assert_eq!(during.cpm_mask().count_ones() as usize, CPMS_PER_SOCKET);
        assert!(during.cpm.iter().all(|o| *o == Some(0)));
        assert!(plan.socket_window(26, 0).is_quiet());
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let bad_socket =
            FaultPlan::new("bad", 1).event(0, 1, FaultKind::BankDropout(BankDropout { socket: 9 }));
        assert!(bad_socket.validate().is_err());
        let bad_reading = FaultPlan::new("bad", 1).event(
            0,
            1,
            FaultKind::StuckCpm(StuckCpm {
                socket: 0,
                core: 0,
                slot: 0,
                reading: 12,
            }),
        );
        assert!(bad_reading.validate().is_err());
        let zero_duration =
            FaultPlan::new("bad", 1).event(0, 0, FaultKind::AmesterLoss(AmesterLoss { socket: 0 }));
        assert!(zero_duration.validate().is_err());
        let bad_scale = FaultPlan::new("bad", 1).event(
            0,
            1,
            FaultKind::DroopStorm(DroopStorm {
                socket: 0,
                typical_scale: 0.5,
                worst_scale: 2.0,
                ramp_windows: 0,
            }),
        );
        assert!(bad_scale.validate().is_err());
    }
}
