//! Structured tracing: per-worker ring-buffered span events with a
//! deterministic export order.
//!
//! Every instrumented site opens a [`Span`] (or emits an [`instant`] marker)
//! carrying a `'static` name and a caller-supplied *logical key* — the tick
//! index, sweep grid index, journal segment index, whatever identifies the
//! unit of work independently of which worker happened to execute it. Wall
//! clock timestamps are recorded too (they are what a trace viewer renders),
//! but ordering and identity never depend on them: [`collect`] sorts by
//! `(name, key)`, so for the same seed/spec the exported event sequence and
//! the per-name span counts are identical at any `--jobs`.
//!
//! Buffering is per-thread: each worker owns a fixed-capacity ring (no locks
//! on the record path, no allocation after the ring's one-time warmup
//! allocation). Worker threads call [`flush`] before their closure returns
//! to drain the ring into the global collector — scoped joins can return
//! before TLS destructors run, so the `Drop`-based flush alone is not
//! reliable (it remains as a backstop for plain `spawn`/`join` threads).
//! [`collect`] also drains the calling thread's ring, so the usual flow —
//! scoped workers flush, join, then export from the coordinating thread —
//! loses nothing. If a ring wraps, the oldest events are overwritten and
//! counted in [`dropped`].
//!
//! # Trace context
//!
//! Spans form a *tree*: every span gets a process-unique id, and opening a
//! span while another's context is pushed records the parent edge. Context
//! lives in a per-thread cell — a `(trace, parent span)` pair — that
//! [`Span::push`] / [`push_context`] set and their guard restores on drop.
//! Crossing a thread boundary is explicit: capture [`current_context`]
//! before spawning and [`push_context`] it inside the worker closure, the
//! same place the worker already calls [`flush`]. The `trace` component is
//! a caller-chosen 64-bit id (the serve daemon derives one per task; CLI
//! campaigns run under a single root span), letting one process carry many
//! interleaved trees and a collector group events by tree afterwards.
//!
//! Span *ids* are allocated from a global counter, so they differ run to
//! run — but the tree's shape doesn't: the multiset of
//! `(child name, parent name)` edges is as jobs-invariant as the
//! per-name span counts, and the determinism suite pins both.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events). 64Ki events × 40 B ≈ 2.5 MiB
/// per worker at the default — plenty for smoke runs, bounded for long ones.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One completed span or instant marker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static site name, e.g. `"tick"`, `"solve"`, `"sweep_point"`.
    pub name: &'static str,
    /// Deterministic logical key (tick index, grid index, …).
    pub key: u64,
    /// Worker ordinal of the recording thread (arrival order, not
    /// deterministic — carried for trace-viewer lanes only).
    pub worker: u32,
    /// Start timestamp, microseconds since the tracer was enabled.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// True for zero-duration instant markers (supervisor degrade/re-arm).
    pub instant: bool,
    /// Tree this event belongs to (0 = unassigned). Caller-chosen; the
    /// serve daemon derives one per task, CLI campaigns use one root.
    pub trace: u64,
    /// Process-unique span id (0 for instants and pre-context events).
    pub span: u64,
    /// Span id of the enclosing span when one was pushed (0 = root).
    pub parent: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_WORKER: AtomicU32 = AtomicU32::new(0);
/// Span ids start at 1 so 0 can mean "none" in `parent`/`span` fields.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's `(trace, parent span id)` context.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// A `(trace, span)` pair that child spans opened under it inherit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Tree id (0 = unassigned).
    pub trace: u64,
    /// Span id new children record as their parent (0 = root).
    pub span: u64,
}

/// The calling thread's current context — capture this before spawning
/// workers and [`push_context`] it inside each worker closure.
#[inline]
#[must_use]
pub fn current_context() -> TraceContext {
    let (trace, span) = CONTEXT.try_with(Cell::get).unwrap_or((0, 0));
    TraceContext { trace, span }
}

/// Make `ctx` the calling thread's context until the returned guard
/// drops (which restores the previous context). Allocation-free.
#[inline]
#[must_use = "dropping the guard immediately restores the previous context"]
pub fn push_context(ctx: TraceContext) -> ContextGuard {
    let prev = CONTEXT
        .try_with(|c| c.replace((ctx.trace, ctx.span)))
        .unwrap_or((0, 0));
    ContextGuard { prev }
}

/// Restores the previously pushed context on drop.
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let _ = CONTEXT.try_with(|c| c.set(self.prev));
    }
}

fn collected() -> &'static Mutex<Vec<TraceEvent>> {
    static COLLECTED: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    COLLECTED.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the tracer's epoch (first use).
fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Enable span recording with the default ring capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_RING_CAPACITY);
}

/// Enable span recording; new per-thread rings allocate `capacity` slots.
pub fn enable_with_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording. Buffered events stay put until [`collect`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of events lost to ring wrap-around since the last [`collect`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

struct Ring {
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    oldest: usize,
    worker: u32,
}

impl Ring {
    fn push(&mut self, e: TraceEvent) {
        let cap = self.events.capacity();
        if self.events.len() < cap {
            self.events.push(e);
        } else {
            self.events[self.oldest] = e;
            self.oldest = (self.oldest + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.extend(self.events.drain(self.oldest..));
        out.append(&mut self.events);
        self.oldest = 0;
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            let mut out = collected().lock().unwrap_or_else(|e| e.into_inner());
            let mut buf = std::mem::take(&mut *out);
            self.drain_into(&mut buf);
            *out = buf;
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring {
        events: Vec::new(),
        oldest: 0,
        worker: NEXT_WORKER.fetch_add(1, Ordering::Relaxed),
    });
}

fn record(mut event: TraceEvent) {
    let _ = RING.try_with(|cell| {
        let mut ring = cell.borrow_mut();
        if ring.events.capacity() == 0 {
            let cap = CAPACITY.load(Ordering::Relaxed);
            ring.events.reserve_exact(cap);
        }
        event.worker = ring.worker;
        ring.push(event);
    });
}

/// An open span; records its event when dropped. When tracing is disabled
/// this is an inert zero-cost guard.
#[must_use = "a span records on drop; binding it to `_span` keeps it open for the scope"]
pub struct Span {
    name: &'static str,
    key: u64,
    start_us: u64,
    armed: bool,
    id: u64,
    trace: u64,
    parent: u64,
}

impl Span {
    /// Mutate the logical key after opening (useful when the key is only
    /// known once work completes, e.g. an iteration count).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Assign this span to tree `trace` (overriding whatever context it
    /// inherited). Children pushed via [`Span::push`] inherit the new id.
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// Override the recorded parent span id — for edges that cross a
    /// queue rather than a call stack (a scheduler linking its work back
    /// to the accept span that enqueued it).
    pub fn set_parent(&mut self, parent: u64) {
        self.parent = parent;
    }

    /// This span's process-unique id (0 when tracing was disabled at
    /// open).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Make this span the calling thread's context: spans opened while
    /// the guard lives record it as their parent and inherit its trace.
    #[inline]
    #[must_use = "dropping the guard immediately restores the previous context"]
    pub fn push(&self) -> ContextGuard {
        push_context(TraceContext {
            trace: self.trace,
            span: self.id,
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed && is_enabled() {
            let end = now_us();
            record(TraceEvent {
                name: self.name,
                key: self.key,
                worker: 0,
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                instant: false,
                trace: self.trace,
                span: self.id,
                parent: self.parent,
            });
        }
    }
}

/// Open a span. `key` is the deterministic logical identity of this unit of
/// work (tick index, grid index, segment index, …). The span inherits the
/// thread's current [`TraceContext`] as its tree and parent.
#[inline]
pub fn span(name: &'static str, key: u64) -> Span {
    if !is_enabled() {
        return Span {
            name,
            key,
            start_us: 0,
            armed: false,
            id: 0,
            trace: 0,
            parent: 0,
        };
    }
    let ctx = current_context();
    Span {
        name,
        key,
        start_us: now_us(),
        armed: true,
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        trace: ctx.trace,
        parent: ctx.span,
    }
}

/// Emit a zero-duration instant marker (e.g. supervisor degrade/re-arm).
/// Instants carry the thread's current context as their tree/parent but
/// allocate no span id of their own.
#[inline]
pub fn instant(name: &'static str, key: u64) {
    if is_enabled() {
        let t = now_us();
        let ctx = current_context();
        record(TraceEvent {
            name,
            key,
            worker: 0,
            start_us: t,
            dur_us: 0,
            instant: true,
            trace: ctx.trace,
            span: 0,
            parent: ctx.span,
        });
    }
}

/// Drains the calling thread's ring into the global collector.
///
/// Worker threads MUST call this as the last thing their closure does:
/// `std::thread::scope` can return to the spawner before a finished
/// thread's TLS destructors have run, so the `Drop`-based flush races
/// with a [`collect`] performed right after the scope — events would be
/// silently (and nondeterministically) lost. The `Drop` flush remains as
/// a backstop for plain spawned threads, whose `join` waits for full
/// thread exit.
pub fn flush() {
    let _ = RING.try_with(|cell| {
        let mut ring = cell.borrow_mut();
        if !ring.events.is_empty() {
            let mut out = collected().lock().unwrap_or_else(|e| e.into_inner());
            let mut buf = std::mem::take(&mut *out);
            ring.drain_into(&mut buf);
            *out = buf;
        }
    });
}

/// Drain every buffered event (the calling thread's ring plus everything
/// flushed by exited worker threads) sorted by `(name, key, start, worker)`.
/// The primary `(name, key)` ordering is what makes traces comparable
/// across `--jobs`; the trailing wall-clock/worker components only break
/// ties between genuinely concurrent duplicates.
pub fn collect() -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = {
        let mut locked = collected().lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *locked)
    };
    let _ = RING.try_with(|cell| cell.borrow_mut().drain_into(&mut out));
    DROPPED.store(0, Ordering::Relaxed);
    out.sort_by(|a, b| {
        (a.name, a.key, a.start_us, a.worker).cmp(&(b.name, b.key, b.start_us, b.worker))
    });
    out
}

/// Render events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form understood by `chrome://tracing`
/// and Perfetto). Spans become complete (`"ph":"X"`) events; instants
/// become `"ph":"i"` with thread scope. Tree identity rides in `args`:
/// `span`/`parent` ids as integers when assigned, the 64-bit trace id as
/// a hex string (JSON numbers above 2^53 lose precision in JS viewers).
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut args = format!("\"key\":{}", e.key);
        if e.span != 0 {
            args.push_str(&format!(",\"span\":{}", e.span));
        }
        if e.parent != 0 {
            args.push_str(&format!(",\"parent\":{}", e.parent));
        }
        if e.trace != 0 {
            args.push_str(&format!(",\"trace\":\"{:016x}\"", e.trace));
        }
        if e.instant {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ags\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
                escape_json(e.name),
                e.start_us,
                e.worker,
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ags\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
                escape_json(e.name),
                e.start_us,
                e.dur_us,
                e.worker,
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that enable it serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_and_collect_sorted() {
        let _g = lock();
        let _ = collect();
        enable();
        {
            let _b = span("beta", 2);
            let _a = span("alpha", 7);
        }
        instant("alpha", 1);
        disable();
        let events = collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| (e.name, e.key)).collect::<Vec<_>>(),
            vec![("alpha", 1), ("alpha", 7), ("beta", 2)],
            "collect orders by (name, key), not record order"
        );
        assert!(events[0].instant);
        assert!(!events[1].instant);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        let _ = collect();
        disable();
        {
            let _s = span("quiet", 0);
        }
        instant("quiet", 1);
        assert!(collect().is_empty());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = lock();
        let _ = collect();
        enable_with_capacity(4);
        for k in 0..10u64 {
            instant("wrap", k);
        }
        disable();
        assert_eq!(dropped(), 6);
        let events = collect();
        assert_eq!(
            events.len(),
            4,
            "ring keeps only the newest capacity events"
        );
        assert_eq!(
            events.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest events are the ones overwritten"
        );
        assert_eq!(dropped(), 0, "collect resets the dropped counter");
        // Restore the default so later tests in this binary are unaffected.
        CAPACITY.store(DEFAULT_RING_CAPACITY, Ordering::Relaxed);
    }

    #[test]
    fn worker_threads_flush_on_join() {
        let _g = lock();
        let _ = collect();
        enable();
        // Plain spawned threads: `join` waits for full thread exit, so the
        // Drop-based backstop flush is reliable here.
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let _sp = span("worker_span", t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let events = collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn scoped_workers_flush_explicitly() {
        let _g = lock();
        let _ = collect();
        enable();
        // Scoped threads can outlive the scope's join as far as TLS
        // destructors are concerned, so workers flush before returning;
        // every event must be visible to the collect right after.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..16u64 {
                        instant("scoped", t * 100 + i);
                    }
                    flush();
                });
            }
        });
        disable();
        let events = collect();
        assert_eq!(events.len(), 64, "no scoped worker's events may be lost");
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            TraceEvent {
                name: "tick",
                key: 3,
                worker: 1,
                start_us: 10,
                dur_us: 4,
                instant: false,
                ..TraceEvent::default()
            },
            TraceEvent {
                name: "degrade",
                key: 0,
                worker: 0,
                start_us: 11,
                dur_us: 0,
                instant: true,
                ..TraceEvent::default()
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("\"args\":{\"key\":3}"));
    }

    #[test]
    fn chrome_trace_carries_tree_identity() {
        let events = vec![TraceEvent {
            name: "task_solve",
            key: 1,
            span: 12,
            parent: 4,
            trace: 0xdead_beef,
            dur_us: 9,
            ..TraceEvent::default()
        }];
        let json = render_chrome_trace(&events);
        assert!(json.contains("\"span\":12"), "{json}");
        assert!(json.contains("\"parent\":4"), "{json}");
        assert!(json.contains("\"trace\":\"00000000deadbeef\""), "{json}");
    }

    #[test]
    fn spans_inherit_pushed_context() {
        let _g = lock();
        let _ = collect();
        enable();
        let root_id;
        {
            let mut root = span("root", 0);
            root.set_trace(0x77);
            root_id = root.id();
            assert_ne!(root_id, 0);
            let _ctx = root.push();
            {
                let child = span("child", 1);
                let _c2 = child.push();
                let _grand = span("grand", 2);
                instant("mark", 3);
            }
            let sibling = span("sibling", 4);
            drop(sibling);
        }
        // Context restored after all guards dropped.
        assert_eq!(current_context(), TraceContext::default());
        disable();
        let events = collect();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap().clone();
        let root = by_name("root");
        let child = by_name("child");
        let grand = by_name("grand");
        let mark = by_name("mark");
        let sibling = by_name("sibling");
        assert_eq!(root.parent, 0);
        assert_eq!(root.trace, 0x77);
        assert_eq!(child.parent, root.span);
        assert_eq!(child.trace, 0x77, "children inherit the pushed trace");
        assert_eq!(grand.parent, child.span);
        assert_eq!(mark.parent, child.span);
        assert_eq!(mark.span, 0, "instants allocate no span id");
        assert_eq!(sibling.parent, root.span, "inner guard was restored");
    }

    #[test]
    fn context_crosses_threads_explicitly() {
        let _g = lock();
        let _ = collect();
        enable();
        let parent = span("xthread_parent", 0);
        let ctx = {
            let _p = parent.push();
            current_context()
        };
        std::thread::scope(|s| {
            s.spawn(move || {
                let _c = push_context(ctx);
                let _w = span("xthread_child", 1);
                flush();
            });
        });
        drop(parent);
        disable();
        let events = collect();
        let p = events.iter().find(|e| e.name == "xthread_parent").unwrap();
        let c = events.iter().find(|e| e.name == "xthread_child").unwrap();
        assert_eq!(c.parent, p.span);
    }

    #[test]
    fn disabled_spans_have_no_ids_and_push_is_inert() {
        let _g = lock();
        let _ = collect();
        disable();
        let s = span("quiet", 0);
        assert_eq!(s.id(), 0);
        {
            let _c = s.push();
            assert_eq!(current_context(), TraceContext::default());
        }
        assert!(collect().is_empty());
    }
}
