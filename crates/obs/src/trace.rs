//! Structured tracing: per-worker ring-buffered span events with a
//! deterministic export order.
//!
//! Every instrumented site opens a [`Span`] (or emits an [`instant`] marker)
//! carrying a `'static` name and a caller-supplied *logical key* — the tick
//! index, sweep grid index, journal segment index, whatever identifies the
//! unit of work independently of which worker happened to execute it. Wall
//! clock timestamps are recorded too (they are what a trace viewer renders),
//! but ordering and identity never depend on them: [`collect`] sorts by
//! `(name, key)`, so for the same seed/spec the exported event sequence and
//! the per-name span counts are identical at any `--jobs`.
//!
//! Buffering is per-thread: each worker owns a fixed-capacity ring (no locks
//! on the record path, no allocation after the ring's one-time warmup
//! allocation). Worker threads call [`flush`] before their closure returns
//! to drain the ring into the global collector — scoped joins can return
//! before TLS destructors run, so the `Drop`-based flush alone is not
//! reliable (it remains as a backstop for plain `spawn`/`join` threads).
//! [`collect`] also drains the calling thread's ring, so the usual flow —
//! scoped workers flush, join, then export from the coordinating thread —
//! loses nothing. If a ring wraps, the oldest events are overwritten and
//! counted in [`dropped`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events). 64Ki events × 40 B ≈ 2.5 MiB
/// per worker at the default — plenty for smoke runs, bounded for long ones.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One completed span or instant marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static site name, e.g. `"tick"`, `"solve"`, `"sweep_point"`.
    pub name: &'static str,
    /// Deterministic logical key (tick index, grid index, …).
    pub key: u64,
    /// Worker ordinal of the recording thread (arrival order, not
    /// deterministic — carried for trace-viewer lanes only).
    pub worker: u32,
    /// Start timestamp, microseconds since the tracer was enabled.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// True for zero-duration instant markers (supervisor degrade/re-arm).
    pub instant: bool,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_WORKER: AtomicU32 = AtomicU32::new(0);

fn collected() -> &'static Mutex<Vec<TraceEvent>> {
    static COLLECTED: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    COLLECTED.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the tracer's epoch (first use).
fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Enable span recording with the default ring capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_RING_CAPACITY);
}

/// Enable span recording; new per-thread rings allocate `capacity` slots.
pub fn enable_with_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording. Buffered events stay put until [`collect`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of events lost to ring wrap-around since the last [`collect`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

struct Ring {
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    oldest: usize,
    worker: u32,
}

impl Ring {
    fn push(&mut self, e: TraceEvent) {
        let cap = self.events.capacity();
        if self.events.len() < cap {
            self.events.push(e);
        } else {
            self.events[self.oldest] = e;
            self.oldest = (self.oldest + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.extend(self.events.drain(self.oldest..));
        out.append(&mut self.events);
        self.oldest = 0;
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            let mut out = collected().lock().unwrap_or_else(|e| e.into_inner());
            let mut buf = std::mem::take(&mut *out);
            self.drain_into(&mut buf);
            *out = buf;
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring {
        events: Vec::new(),
        oldest: 0,
        worker: NEXT_WORKER.fetch_add(1, Ordering::Relaxed),
    });
}

fn record(name: &'static str, key: u64, start_us: u64, dur_us: u64, instant: bool) {
    let _ = RING.try_with(|cell| {
        let mut ring = cell.borrow_mut();
        if ring.events.capacity() == 0 {
            let cap = CAPACITY.load(Ordering::Relaxed);
            ring.events.reserve_exact(cap);
        }
        let worker = ring.worker;
        ring.push(TraceEvent {
            name,
            key,
            worker,
            start_us,
            dur_us,
            instant,
        });
    });
}

/// An open span; records its event when dropped. When tracing is disabled
/// this is an inert zero-cost guard.
#[must_use = "a span records on drop; binding it to `_span` keeps it open for the scope"]
pub struct Span {
    name: &'static str,
    key: u64,
    start_us: u64,
    armed: bool,
}

impl Span {
    /// Mutate the logical key after opening (useful when the key is only
    /// known once work completes, e.g. an iteration count).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed && is_enabled() {
            let end = now_us();
            record(
                self.name,
                self.key,
                self.start_us,
                end.saturating_sub(self.start_us),
                false,
            );
        }
    }
}

/// Open a span. `key` is the deterministic logical identity of this unit of
/// work (tick index, grid index, segment index, …).
#[inline]
pub fn span(name: &'static str, key: u64) -> Span {
    if !is_enabled() {
        return Span {
            name,
            key,
            start_us: 0,
            armed: false,
        };
    }
    Span {
        name,
        key,
        start_us: now_us(),
        armed: true,
    }
}

/// Emit a zero-duration instant marker (e.g. supervisor degrade/re-arm).
#[inline]
pub fn instant(name: &'static str, key: u64) {
    if is_enabled() {
        let t = now_us();
        record(name, key, t, 0, true);
    }
}

/// Drains the calling thread's ring into the global collector.
///
/// Worker threads MUST call this as the last thing their closure does:
/// `std::thread::scope` can return to the spawner before a finished
/// thread's TLS destructors have run, so the `Drop`-based flush races
/// with a [`collect`] performed right after the scope — events would be
/// silently (and nondeterministically) lost. The `Drop` flush remains as
/// a backstop for plain spawned threads, whose `join` waits for full
/// thread exit.
pub fn flush() {
    let _ = RING.try_with(|cell| {
        let mut ring = cell.borrow_mut();
        if !ring.events.is_empty() {
            let mut out = collected().lock().unwrap_or_else(|e| e.into_inner());
            let mut buf = std::mem::take(&mut *out);
            ring.drain_into(&mut buf);
            *out = buf;
        }
    });
}

/// Drain every buffered event (the calling thread's ring plus everything
/// flushed by exited worker threads) sorted by `(name, key, start, worker)`.
/// The primary `(name, key)` ordering is what makes traces comparable
/// across `--jobs`; the trailing wall-clock/worker components only break
/// ties between genuinely concurrent duplicates.
pub fn collect() -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = {
        let mut locked = collected().lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *locked)
    };
    let _ = RING.try_with(|cell| cell.borrow_mut().drain_into(&mut out));
    DROPPED.store(0, Ordering::Relaxed);
    out.sort_by(|a, b| {
        (a.name, a.key, a.start_us, a.worker).cmp(&(b.name, b.key, b.start_us, b.worker))
    });
    out
}

/// Render events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form understood by `chrome://tracing`
/// and Perfetto). Spans become complete (`"ph":"X"`) events; instants
/// become `"ph":"i"` with thread scope.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if e.instant {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ags\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"key\":{}}}}}",
                escape_json(e.name),
                e.start_us,
                e.worker,
                e.key
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ags\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"key\":{}}}}}",
                escape_json(e.name),
                e.start_us,
                e.dur_us,
                e.worker,
                e.key
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that enable it serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_and_collect_sorted() {
        let _g = lock();
        let _ = collect();
        enable();
        {
            let _b = span("beta", 2);
            let _a = span("alpha", 7);
        }
        instant("alpha", 1);
        disable();
        let events = collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| (e.name, e.key)).collect::<Vec<_>>(),
            vec![("alpha", 1), ("alpha", 7), ("beta", 2)],
            "collect orders by (name, key), not record order"
        );
        assert!(events[0].instant);
        assert!(!events[1].instant);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        let _ = collect();
        disable();
        {
            let _s = span("quiet", 0);
        }
        instant("quiet", 1);
        assert!(collect().is_empty());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = lock();
        let _ = collect();
        enable_with_capacity(4);
        for k in 0..10u64 {
            instant("wrap", k);
        }
        disable();
        assert_eq!(dropped(), 6);
        let events = collect();
        assert_eq!(
            events.len(),
            4,
            "ring keeps only the newest capacity events"
        );
        assert_eq!(
            events.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest events are the ones overwritten"
        );
        assert_eq!(dropped(), 0, "collect resets the dropped counter");
        // Restore the default so later tests in this binary are unaffected.
        CAPACITY.store(DEFAULT_RING_CAPACITY, Ordering::Relaxed);
    }

    #[test]
    fn worker_threads_flush_on_join() {
        let _g = lock();
        let _ = collect();
        enable();
        // Plain spawned threads: `join` waits for full thread exit, so the
        // Drop-based backstop flush is reliable here.
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let _sp = span("worker_span", t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let events = collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn scoped_workers_flush_explicitly() {
        let _g = lock();
        let _ = collect();
        enable();
        // Scoped threads can outlive the scope's join as far as TLS
        // destructors are concerned, so workers flush before returning;
        // every event must be visible to the collect right after.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..16u64 {
                        instant("scoped", t * 100 + i);
                    }
                    flush();
                });
            }
        });
        disable();
        let events = collect();
        assert_eq!(events.len(), 64, "no scoped worker's events may be lost");
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            TraceEvent {
                name: "tick",
                key: 3,
                worker: 1,
                start_us: 10,
                dur_us: 4,
                instant: false,
            },
            TraceEvent {
                name: "degrade",
                key: 0,
                worker: 0,
                start_us: 11,
                dur_us: 0,
                instant: true,
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("\"args\":{\"key\":3}"));
    }
}
