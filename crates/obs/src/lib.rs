//! `p7-obs`: zero-overhead observability for the guardband-scheduling stack.
//!
//! The paper's methodology is built on *instrumentation* — AMESTER power
//! telemetry, CPM margin counters, and VRM current sensors are what let the
//! authors decompose the voltage-drop budget in the first place. This crate
//! gives the reproduction the same courtesy: first-class visibility into the
//! simulator's own machinery (fixed-point solve behaviour, memoization cache
//! traffic, journal durability latency, supervisor state transitions) without
//! perturbing the hot path it observes.
//!
//! Two subsystems, both designed around the repo's standing invariants
//! (allocation-free warm ticks, bitwise-deterministic output at any `--jobs`):
//!
//! * [`metrics`] — a lock-free registry of counters, gauges, and fixed-bucket
//!   histograms. Handles are plain `Arc`s over atomics: updating a metric is
//!   a couple of relaxed atomic operations and never allocates or takes a
//!   lock. Registration (naming a metric) takes a mutex and may allocate,
//!   which is why hot call sites resolve their handle once through a
//!   `OnceLock` and reuse it forever. The global registry starts *disabled*:
//!   every update first checks one relaxed `AtomicBool`, so an uninstrumented
//!   run pays a branch per site and nothing else.
//! * [`trace`] — per-worker ring-buffered span events with a deterministic
//!   export order. Spans record wall-clock timestamps (which naturally vary
//!   run to run) but carry a caller-supplied *logical key* (tick index, grid
//!   index, segment index…), and the exporter sorts by `(name, key)` so the
//!   event sequence — and in particular the per-name span counts — is
//!   identical for the same seed/spec at any worker count.
//!
//! Two newer subsystems extend the same contract to long-running
//! processes:
//!
//! * [`timeseries`] — a flight recorder: a background [`timeseries::Sampler`]
//!   takes periodic snapshots of the metrics registry into a bounded
//!   in-memory ring ([`timeseries::Recorder`]), queryable by family over a
//!   time window with downsampling. Idle sampling performs no allocation,
//!   so the zero-alloc warm-tick test holds with a sampler live.
//! * [`log`] — structured leveled logging (logfmt or JSON, stderr only,
//!   rate-limited) via the [`log_error!`]/[`log_warn!`]/[`log_info!`]/
//!   [`log_debug!`] macros, with `key = value` correlation fields.
//!
//! Spans additionally carry a *trace context* ([`trace::TraceContext`]):
//! process-unique span ids with parent edges and a caller-chosen 64-bit
//! tree id, propagated through a per-thread cell (and across thread
//! spawns explicitly), so a collector can reassemble per-task span trees.
//!
//! Exporters live next to the data they serialize: Prometheus text
//! exposition on [`metrics::Registry::render_prometheus`], Chrome
//! `trace_event` JSON on [`trace::render_chrome_trace`].

pub mod log;
pub mod metrics;
pub mod timeseries;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricKind, Registry, Sample, SampleValue};
pub use timeseries::{Frame, Recorder, Sampler, Series};
pub use trace::{Span, TraceContext, TraceEvent};

/// Enable the global metrics registry and the tracer in one call: the shape
/// used by the CLI when `--metrics`/`--trace` are passed.
pub fn enable() {
    metrics::global().set_enabled(true);
    trace::enable();
}

/// Disable both subsystems (updates become no-ops again). Buffered trace
/// events and accumulated metric values are retained until reset/collect.
pub fn disable() {
    metrics::global().set_enabled(false);
    trace::disable();
}
