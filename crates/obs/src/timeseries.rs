//! Time-series flight recorder: periodic snapshots of a metrics registry
//! kept in a bounded in-memory ring, queryable by family over a time
//! window with downsampling.
//!
//! The paper's methodology samples AMESTER power telemetry and CPM margin
//! counters *over time* — one exit snapshot cannot answer "what did queue
//! depth look like during the flash crowd?". The [`Recorder`] holds the
//! last `capacity` [`Frame`]s (one per sampler tick, each a flattened
//! `(key, value)` reading of every registered metric); when the ring is
//! full the oldest frame is overwritten and counted in
//! [`Recorder::dropped`]. A [`Sampler`] drives it from a background
//! thread.
//!
//! The recorder deliberately stores *levels*, not deltas: counters are
//! monotone so consumers can difference adjacent frames themselves, and
//! levels survive partial histories (a ring that wrapped, a log whose
//! tail was truncated) without accumulating error.
//!
//! Persistence is not this module's job — `p7-sim` layers a checksummed
//! on-disk log over the journal substrate and replays it back through
//! [`Recorder::preload`] on restart.

use crate::metrics::{Registry, SampleValue};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default ring capacity in frames. 512 frames at the daemon's default
/// 500 ms sampling interval is a little over four minutes of history.
pub const DEFAULT_CAPACITY: usize = 512;

/// One snapshot of every registered metric at a point in time.
///
/// Keys are the Prometheus-style series identity: the family name,
/// followed by `{k="v",…}` when the series is labelled. Histograms
/// flatten to two series, `<family>_count` and `<family>_sum`.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Wall-clock milliseconds since the Unix epoch.
    pub t_ms: u64,
    /// `(series key, value)` readings, in registry snapshot order.
    pub series: Vec<(String, f64)>,
}

/// One queried series: a key plus `(t_ms, value)` points in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub key: String,
    pub points: Vec<(u64, f64)>,
}

/// A bounded ring of [`Frame`]s.
pub struct Recorder {
    capacity: usize,
    dropped: AtomicU64,
    frames: Mutex<VecDeque<Frame>>,
}

impl Recorder {
    /// A recorder holding at most `capacity` frames (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            capacity,
            dropped: AtomicU64::new(0),
            frames: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Append one frame, evicting the oldest when full.
    pub fn push(&self, frame: Frame) {
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        if frames.len() == self.capacity {
            frames.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        frames.push_back(frame);
    }

    /// Snapshot `registry` into a frame stamped `t_ms`, push it, and
    /// return a clone (persistence layers append the clone to disk).
    pub fn sample(&self, registry: &Registry, t_ms: u64) -> Frame {
        let frame = snapshot_frame(registry, t_ms);
        self.push(frame.clone());
        frame
    }

    /// Seed the ring with previously persisted frames (oldest first), as
    /// on daemon restart. Keeps only the newest `capacity` frames.
    pub fn preload(&self, frames: impl IntoIterator<Item = Frame>) {
        for f in frames {
            self.push(f);
        }
    }

    /// Number of buffered frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring holds no frames yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames evicted by ring wrap since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of every buffered frame, oldest first.
    #[must_use]
    pub fn frames(&self) -> Vec<Frame> {
        self.frames
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Query buffered history: series whose key matches `family` (exact
    /// family, any labelling of it, or a histogram `_count`/`_sum`
    /// flattening; `None` matches everything), restricted to frames with
    /// `t_ms >= now_ms - window_ms`, each downsampled to at most
    /// `max_points` points. Series are returned sorted by key.
    #[must_use]
    pub fn history(
        &self,
        family: Option<&str>,
        window_ms: u64,
        now_ms: u64,
        max_points: usize,
    ) -> Vec<Series> {
        let cutoff = now_ms.saturating_sub(window_ms);
        let mut by_key: Vec<(String, Vec<(u64, f64)>)> = Vec::new();
        {
            let frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
            for frame in frames.iter().filter(|f| f.t_ms >= cutoff) {
                for (key, value) in &frame.series {
                    if !key_matches(key, family) {
                        continue;
                    }
                    match by_key.iter_mut().find(|(k, _)| k == key) {
                        Some((_, points)) => points.push((frame.t_ms, *value)),
                        None => by_key.push((key.clone(), vec![(frame.t_ms, *value)])),
                    }
                }
            }
        }
        by_key.sort_by(|a, b| a.0.cmp(&b.0));
        by_key
            .into_iter()
            .map(|(key, points)| Series {
                key,
                points: downsample(&points, max_points),
            })
            .collect()
    }
}

/// Does series `key` belong to `family`? Exact match, a labelled series
/// of the family (`family{…}`), or a histogram flattening
/// (`family_count` / `family_sum`, labelled or not).
fn key_matches(key: &str, family: Option<&str>) -> bool {
    let Some(family) = family else { return true };
    if key == family {
        return true;
    }
    let Some(rest) = key.strip_prefix(family) else {
        return false;
    };
    rest.starts_with('{')
        || rest == "_count"
        || rest == "_sum"
        || rest.starts_with("_count{")
        || rest.starts_with("_sum{")
}

/// Flatten a registry snapshot into a frame. Counters and gauges become
/// one series each; histograms become `_count` and `_sum`.
#[must_use]
pub fn snapshot_frame(registry: &Registry, t_ms: u64) -> Frame {
    let snapshot = registry.snapshot();
    let mut series = Vec::with_capacity(snapshot.len());
    for s in snapshot {
        let labels = render_label_suffix(&s.labels);
        match s.value {
            SampleValue::Counter(v) => series.push((format!("{}{labels}", s.family), v as f64)),
            SampleValue::Gauge(v) => series.push((format!("{}{labels}", s.family), v as f64)),
            SampleValue::Histogram { count, sum, .. } => {
                series.push((format!("{}_count{labels}", s.family), count as f64));
                series.push((format!("{}_sum{labels}", s.family), sum));
            }
        }
    }
    Frame { t_ms, series }
}

fn render_label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", parts.join(","))
}

/// Reduce `points` to at most `max_points` by bucketing the index range
/// evenly and keeping the *last* point of each bucket (so the newest
/// reading always survives and counter levels stay exact at the points
/// that remain). `max_points == 0` means no limit.
#[must_use]
pub fn downsample(points: &[(u64, f64)], max_points: usize) -> Vec<(u64, f64)> {
    if max_points == 0 || points.len() <= max_points {
        return points.to_vec();
    }
    let n = points.len();
    let mut out = Vec::with_capacity(max_points);
    for bucket in 0..max_points {
        // Last index whose bucket assignment `i * max_points / n` equals
        // `bucket`: the exclusive end of the bucket's index range.
        let end = ((bucket + 1) * n).div_ceil(max_points);
        out.push(points[end - 1]);
    }
    out
}

/// A background thread sampling `registry` into a [`Recorder`] at a
/// fixed interval. The first sample is taken immediately on start; the
/// thread then sleeps in short increments so [`Sampler::stop`] (and
/// drop) return promptly, and so an idle sampler performs no allocation
/// between samples — the warm-tick zero-allocation test runs with a
/// sampler live.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling `registry` into `recorder` every `interval`.
    #[must_use]
    pub fn start(
        recorder: Arc<Recorder>,
        registry: &'static Registry,
        interval: Duration,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ags-obs-sampler".into())
            .spawn(move || {
                recorder.sample(registry, wall_ms());
                let chunk = Duration::from_millis(50).min(interval.max(Duration::from_millis(1)));
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(chunk);
                    elapsed += chunk;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        recorder.sample(registry, wall_ms());
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Milliseconds since the Unix epoch.
#[must_use]
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t_ms: u64, v: f64) -> Frame {
        Frame {
            t_ms,
            series: vec![("depth".into(), v)],
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let r = Recorder::new(3);
        for i in 0..5u64 {
            r.push(frame(i, i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let t: Vec<u64> = r.frames().iter().map(|f| f.t_ms).collect();
        assert_eq!(t, vec![2, 3, 4], "oldest frames are the ones evicted");
    }

    #[test]
    fn history_windows_and_filters() {
        let r = Recorder::new(16);
        for i in 0..10u64 {
            r.push(Frame {
                t_ms: i * 1000,
                series: vec![
                    ("depth".into(), i as f64),
                    ("lat_count".into(), (i * 2) as f64),
                    ("lat_sum".into(), 0.5 * i as f64),
                    ("other{socket=\"0\"}".into(), 1.0),
                ],
            });
        }
        // Window cuts off old frames.
        let all = r.history(Some("depth"), 4000, 9000, 0);
        assert_eq!(all.len(), 1);
        assert_eq!(
            all[0].points,
            vec![
                (5000, 5.0),
                (6000, 6.0),
                (7000, 7.0),
                (8000, 8.0),
                (9000, 9.0)
            ]
        );
        // Histogram flattenings match their family.
        let lat = r.history(Some("lat"), u64::MAX, 9000, 0);
        assert_eq!(
            lat.iter().map(|s| s.key.as_str()).collect::<Vec<_>>(),
            vec!["lat_count", "lat_sum"]
        );
        // Labelled series match their family; prefixes don't leak.
        assert_eq!(r.history(Some("other"), u64::MAX, 9000, 0).len(), 1);
        assert_eq!(r.history(Some("oth"), u64::MAX, 9000, 0).len(), 0);
        assert_eq!(r.history(Some("dep"), u64::MAX, 9000, 0).len(), 0);
        // None matches everything.
        assert_eq!(r.history(None, u64::MAX, 9000, 0).len(), 4);
    }

    #[test]
    fn downsample_keeps_newest_and_bounds_length() {
        let points: Vec<(u64, f64)> = (0..100u64).map(|i| (i, i as f64)).collect();
        let ds = downsample(&points, 10);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.last(), Some(&(99, 99.0)), "newest point survives");
        assert!(
            ds.windows(2).all(|w| w[0].0 < w[1].0),
            "downsampled points stay in time order: {ds:?}"
        );
        // No-ops.
        assert_eq!(downsample(&points, 0).len(), 100);
        assert_eq!(downsample(&points, 200).len(), 100);
        assert_eq!(downsample(&[], 10), vec![]);
        // Uneven split still covers the range.
        let ds7 = downsample(&points, 7);
        assert_eq!(ds7.len(), 7);
        assert_eq!(ds7.last(), Some(&(99, 99.0)));
    }

    #[test]
    fn snapshot_flattens_every_metric_kind() {
        static BOUNDS: &[f64] = &[1.0, 2.0];
        let reg = Registry::new();
        reg.counter("c_total", "c").add(3);
        reg.gauge("g", "g").set(-2);
        let h = reg.histogram("h", "h", BOUNDS);
        h.observe(0.5);
        h.observe(5.0);
        reg.counter_with("lbl_total", "l", &[("socket", "1")]).inc();
        let f = snapshot_frame(&reg, 42);
        assert_eq!(f.t_ms, 42);
        let keys: Vec<&str> = f.series.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "c_total",
                "g",
                "h_count",
                "h_sum",
                "lbl_total{socket=\"1\"}"
            ]
        );
        assert_eq!(f.series[0].1, 3.0);
        assert_eq!(f.series[1].1, -2.0);
        assert_eq!(f.series[2].1, 2.0);
        assert!((f.series[3].1 - 5.5).abs() < 1e-9);
    }

    #[test]
    fn preload_seeds_then_ring_still_bounds() {
        let r = Recorder::new(4);
        r.preload((0..6u64).map(|i| frame(i, 0.0)));
        assert_eq!(r.len(), 4);
        let t: Vec<u64> = r.frames().iter().map(|f| f.t_ms).collect();
        assert_eq!(t, vec![2, 3, 4, 5]);
    }
}
