//! Structured, leveled logging to stderr: logfmt by default, JSON on
//! request, correlated by whatever fields the call site attaches (a task
//! id, a trace id, a journal segment…).
//!
//! Design constraints, matching the rest of `p7-obs`:
//!
//! 1. **Disabled means one branch.** Every macro expands to a relaxed
//!    load of the max-level byte before touching its arguments, so a
//!    `log_debug!` in a hot path costs a predictable branch when the
//!    level is `Info`.
//! 2. **stderr only.** Campaign stdout is byte-compared across `--jobs`
//!    in CI; diagnostics must never leak there. The writer locks stderr
//!    per line, so concurrent workers interleave whole lines, never
//!    fragments.
//! 3. **Rate-limited.** A misbehaving loop cannot flood the terminal: at
//!    most [`RATE_LIMIT_PER_SEC`] lines per wall-clock second are
//!    emitted; the rest are counted and summarized in one line when the
//!    window rolls over. `Error` lines bypass the limiter.
//!
//! Call sites use the exported macros; fields precede the message and a
//! semicolon separates the two:
//!
//! ```
//! let task = 42u64;
//! p7_obs::log_info!("serve", task = task, state = "queued"; "accepted sweep");
//! ```

use std::fmt::{self, Write as _};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    /// Lowercase name as rendered in log lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse `"error" | "warn" | "info" | "debug"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }
}

/// Output encoding for emitted lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `ts=… level=… target=… k=v … msg="…"` — the default.
    Logfmt,
    /// One JSON object per line, all values as strings.
    Json,
}

/// Maximum non-error lines emitted per wall-clock second; the overflow is
/// counted and summarized when the window rolls.
pub const RATE_LIMIT_PER_SEC: u64 = 200;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Logfmt, 1 = Json

// Rate-limiter state: the current one-second window and its line count,
// plus lines suppressed since the last summary.
static WINDOW_SEC: AtomicU64 = AtomicU64::new(0);
static WINDOW_COUNT: AtomicU64 = AtomicU64::new(0);
static SUPPRESSED: AtomicU64 = AtomicU64::new(0);

/// Set the maximum level that is emitted (default [`Level::Info`]).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum emitted level.
#[must_use]
pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Choose logfmt or JSON encoding (default logfmt).
pub fn set_format(format: Format) {
    FORMAT.store(matches!(format, Format::Json) as u8, Ordering::Relaxed);
}

/// The current output encoding.
#[must_use]
pub fn format() -> Format {
    if FORMAT.load(Ordering::Relaxed) == 1 {
        Format::Json
    } else {
        Format::Logfmt
    }
}

/// Configure level and format from `AGS_LOG` (`error|warn|info|debug`)
/// and `AGS_LOG_FORMAT` (`logfmt|json`). Unset or unparseable variables
/// leave the current configuration untouched.
pub fn init_from_env() {
    if let Some(level) = std::env::var("AGS_LOG").ok().and_then(|v| Level::parse(&v)) {
        set_max_level(level);
    }
    if let Ok(v) = std::env::var("AGS_LOG_FORMAT") {
        match v.to_ascii_lowercase().as_str() {
            "json" => set_format(Format::Json),
            "logfmt" => set_format(Format::Logfmt),
            _ => {}
        }
    }
}

/// Whether a line at `level` would currently be emitted. The macros check
/// this before evaluating their arguments.
#[inline]
#[must_use]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Lines dropped by the rate limiter since the last window summary.
#[must_use]
pub fn suppressed() -> u64 {
    SUPPRESSED.load(Ordering::Relaxed)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn wall_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Admit-or-suppress under the per-second budget. Returns the number of
/// lines suppressed in the *previous* window when this call rolls it
/// (the caller emits one summary line for them).
fn admit(now_ms: u64, level: Level) -> Option<u64> {
    if level == Level::Error {
        return Some(0);
    }
    let sec = now_ms / 1000;
    let prev = WINDOW_SEC.swap(sec, Ordering::Relaxed);
    if prev != sec {
        WINDOW_COUNT.store(0, Ordering::Relaxed);
        let missed = SUPPRESSED.swap(0, Ordering::Relaxed);
        if WINDOW_COUNT.fetch_add(1, Ordering::Relaxed) < RATE_LIMIT_PER_SEC {
            return Some(missed);
        }
        SUPPRESSED.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    if WINDOW_COUNT.fetch_add(1, Ordering::Relaxed) < RATE_LIMIT_PER_SEC {
        Some(0)
    } else {
        SUPPRESSED.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// Emit one structured line to stderr. Call sites normally go through the
/// [`log_error!`](crate::log_error)/[`log_warn!`](crate::log_warn)/
/// [`log_info!`](crate::log_info)/[`log_debug!`](crate::log_debug)
/// macros, which gate on [`enabled`] before evaluating arguments.
pub fn write(
    level: Level,
    target: &str,
    fields: &[(&str, &dyn fmt::Display)],
    msg: fmt::Arguments,
) {
    if !enabled(level) {
        return;
    }
    let now = wall_ms();
    let Some(missed) = admit(now, level) else {
        return;
    };
    let mut out = String::with_capacity(96);
    if missed > 0 {
        render_line(
            &mut out,
            format(),
            now,
            Level::Warn,
            "obs",
            &[("suppressed", &missed)],
            format_args!("rate limit: dropped {missed} log lines"),
        );
        out.push('\n');
    }
    render_line(&mut out, format(), now, level, target, fields, msg);
    out.push('\n');
    // One locked write per line group: concurrent threads interleave
    // whole lines, never fragments.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(out.as_bytes());
}

/// Render one line (no trailing newline) into `out`. Public for tests and
/// for exporters that want the encoding without the stderr side effect.
pub fn render_line(
    out: &mut String,
    format: Format,
    t_ms: u64,
    level: Level,
    target: &str,
    fields: &[(&str, &dyn fmt::Display)],
    msg: fmt::Arguments,
) {
    let ts = format_rfc3339_ms(t_ms);
    match format {
        Format::Logfmt => {
            let _ = write!(out, "ts={ts} level={} target={target}", level.as_str());
            for (k, v) in fields {
                let _ = write!(out, " {k}={}", LogfmtValue(&format!("{v}")));
            }
            let _ = write!(out, " msg=\"{}\"", escape_quoted(&format!("{msg}")));
        }
        Format::Json => {
            let _ = write!(
                out,
                "{{\"ts\":\"{ts}\",\"level\":\"{}\",\"target\":\"{}\"",
                level.as_str(),
                escape_quoted(target)
            );
            for (k, v) in fields {
                let _ = write!(
                    out,
                    ",\"{}\":\"{}\"",
                    escape_quoted(k),
                    escape_quoted(&format!("{v}"))
                );
            }
            let _ = write!(out, ",\"msg\":\"{}\"}}", escape_quoted(&format!("{msg}")));
        }
    }
}

/// A logfmt value: bare if it needs no quoting, quoted-and-escaped else.
struct LogfmtValue<'a>(&'a str);

impl fmt::Display for LogfmtValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bare = !self.0.is_empty()
            && self
                .0
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_-./:@".contains(c));
        if bare {
            f.write_str(self.0)
        } else {
            write!(f, "\"{}\"", escape_quoted(self.0))
        }
    }
}

fn escape_quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `2026-08-08T12:34:56.789Z` from Unix milliseconds (proleptic Gregorian,
/// Howard Hinnant's civil-from-days).
fn format_rfc3339_ms(t_ms: u64) -> String {
    let secs = (t_ms / 1000) as i64;
    let ms = t_ms % 1000;
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let (h, m, s) = (sod / 3600, (sod % 3600) / 60, sod % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}.{ms:03}Z")
}

/// Log at an explicit [`Level`]; the leveled wrappers below are the
/// usual entry points. Fields are `key = value` pairs (values render via
/// `Display`), a `;` separates them from the `format!`-style message.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $($k:ident = $v:expr),+ ; $($arg:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::write(
                $level,
                $target,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),+],
                format_args!($($arg)+),
            );
        }
    };
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::write($level, $target, &[], format_args!($($arg)+));
        }
    };
}

/// `log_error!(target, fields…; msg…)` — always emitted, bypasses the
/// rate limiter.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Error, $target, $($rest)+)
    };
}

/// `log_warn!(target, fields…; msg…)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Warn, $target, $($rest)+)
    };
}

/// `log_info!(target, fields…; msg…)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Info, $target, $($rest)+)
    };
}

/// `log_debug!(target, fields…; msg…)` — compiled in, filtered out by
/// default (`AGS_LOG=debug` enables it).
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Debug, $target, $($rest)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(format: Format, fields: &[(&str, &dyn fmt::Display)], msg: &str) -> String {
        let mut out = String::new();
        render_line(
            &mut out,
            format,
            1_754_650_000_123,
            Level::Info,
            "serve",
            fields,
            format_args!("{msg}"),
        );
        out
    }

    #[test]
    fn logfmt_line_shape() {
        let task = 42u64;
        let out = line(Format::Logfmt, &[("task", &task)], "accepted sweep");
        assert_eq!(
            out,
            "ts=2025-08-08T10:46:40.123Z level=info target=serve task=42 msg=\"accepted sweep\""
        );
    }

    #[test]
    fn logfmt_quotes_values_with_spaces_and_escapes() {
        let v = "two words \"quoted\"";
        let out = line(Format::Logfmt, &[("state", &v)], "x");
        assert!(out.contains("state=\"two words \\\"quoted\\\"\""), "{out}");
    }

    #[test]
    fn json_line_is_valid_json() {
        let task = 7u64;
        let out = line(Format::Json, &[("task", &task)], "msg with \"quotes\"");
        let v = serde::Value::parse_json(&out).expect("log line parses as JSON");
        assert_eq!(v.field("level").unwrap(), &serde::Value::Str("info".into()));
        assert_eq!(v.field("task").unwrap(), &serde::Value::Str("7".into()));
        assert_eq!(
            v.field("msg").unwrap(),
            &serde::Value::Str("msg with \"quotes\"".into())
        );
    }

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        set_max_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(Level::Info);
    }

    #[test]
    fn rfc3339_epoch_and_leap_year() {
        assert_eq!(format_rfc3339_ms(0), "1970-01-01T00:00:00.000Z");
        // 2024-02-29 00:00:00 UTC
        assert_eq!(
            format_rfc3339_ms(1_709_164_800_000),
            "2024-02-29T00:00:00.000Z"
        );
    }

    #[test]
    fn rate_limiter_admits_errors_unconditionally() {
        // Drive the window directly rather than through wall time.
        assert_eq!(admit(5_000, Level::Error), Some(0));
        for _ in 0..RATE_LIMIT_PER_SEC + 10 {
            let _ = admit(5_000, Level::Info);
        }
        assert_eq!(admit(5_000, Level::Info), None, "window budget exhausted");
        assert_eq!(admit(5_000, Level::Error), Some(0), "errors bypass");
        // Rolling the window reports what was suppressed.
        let missed = admit(6_000, Level::Info).expect("fresh window admits");
        assert!(missed > 0, "rollover surfaces the suppressed count");
    }
}
