//! Lock-free metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Design constraints, in order of priority:
//!
//! 1. **Updates never allocate and never lock.** A counter bump is one
//!    relaxed load (the enabled flag) plus one relaxed `fetch_add`. A
//!    histogram observation is the same plus a short linear scan over its
//!    (fixed, `'static`) bucket bounds and a CAS loop for the running sum.
//!    This is what lets the warm-tick zero-allocation test hold with metrics
//!    enabled.
//! 2. **Disabled means free.** Every handle shares the registry's enabled
//!    flag; when it is false the update returns after the first branch. The
//!    global registry starts disabled, so code paths that never opt in pay
//!    a predictable, branch-predictor-friendly cost of one load per site.
//! 3. **Registration is rare and may be slow.** Naming a metric takes the
//!    registry mutex, validates the name, and allocates the entry. Hot sites
//!    cache the returned `Arc` handle (typically in a `OnceLock`), so the
//!    mutex is touched once per site per process.
//!
//! Snapshots and the Prometheus exporter sort samples by
//! `(family, labels)`, making rendered output deterministic regardless of
//! registration order or worker interleaving.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Add one. No-op while the owning registry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while the owning registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (readable even while disabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Set the gauge. No-op while the owning registry is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add (possibly negative) `delta`. No-op while disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (readable even while disabled).
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Maximum number of finite bucket bounds a histogram may declare. Bounds
/// are fixed at registration; the implicit `+Inf` bucket is always present.
pub const MAX_HISTOGRAM_BUCKETS: usize = 24;

/// A fixed-bucket histogram. Bucket bounds are `'static` (no allocation per
/// instance beyond the atomics themselves) and cumulative counts follow
/// Prometheus semantics: `buckets[i]` counts observations `<= bounds[i]`,
/// with a final implicit `+Inf` bucket equal to the total count.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    bounds: &'static [f64],
    /// Per-bucket (non-cumulative) hit counts; `buckets[bounds.len()]` is
    /// the overflow (`+Inf`) bucket. Cumulated at snapshot time.
    buckets: [AtomicU64; MAX_HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    /// Running sum, stored as f64 bits and updated with a CAS loop; the
    /// loop is contention-rare in practice (one writer per worker).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>, bounds: &'static [f64]) -> Self {
        assert!(
            bounds.len() <= MAX_HISTOGRAM_BUCKETS,
            "histogram declares {} buckets; max is {}",
            bounds.len(),
            MAX_HISTOGRAM_BUCKETS
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bucket bounds must be strictly increasing"
        );
        Histogram {
            enabled,
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation. Allocation-free and lock-free; no-op while
    /// the owning registry is disabled.
    #[inline]
    pub fn observe(&self, value: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Declared finite bucket bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Cumulative bucket counts, one per finite bound plus the `+Inf`
    /// bucket (always equal to [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        (0..=self.bounds.len())
            .map(|i| {
                acc += self.buckets[i].load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// What kind of metric a registry entry is — mirrors the Prometheus
/// `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// The value part of a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram {
        /// `(upper_bound, cumulative_count)` per finite bound; the `+Inf`
        /// bucket is implied by `count`.
        buckets: Vec<(f64, u64)>,
        count: u64,
        sum: f64,
    },
}

/// A point-in-time reading of one metric, as produced by
/// [`Registry::snapshot`]. Snapshots are sorted by `(family, labels)` so
/// they compare deterministically across runs and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub family: String,
    pub labels: Vec<(String, String)>,
    pub kind: MetricKind,
    pub value: SampleValue,
}

/// A metrics registry. Instantiable for tests; production code uses the
/// process-wide [`global`] registry, which starts disabled.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, *enabled* registry (handy in tests; the global one starts
    /// disabled instead).
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Turn updates on or off for every handle this registry has issued.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether updates are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get-or-register an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-register a counter with labels. Panics if `name` is already
    /// registered with a different metric kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let enabled = Arc::clone(&self.enabled);
        match self.get_or_insert(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new(enabled)))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {:?}", other.kind()),
        }
    }

    /// Get-or-register an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-register a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let enabled = Arc::clone(&self.enabled);
        match self.get_or_insert(name, help, labels, || {
            Metric::Gauge(Arc::new(Gauge::new(enabled)))
        }) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as {:?}", other.kind()),
        }
    }

    /// Get-or-register an unlabelled fixed-bucket histogram. `bounds` must
    /// be strictly increasing and is fixed for the life of the metric; a
    /// re-registration with different bounds panics.
    pub fn histogram(&self, name: &str, help: &str, bounds: &'static [f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-register a labelled fixed-bucket histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &'static [f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let enabled = Arc::clone(&self.enabled);
        match self.get_or_insert(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(enabled, bounds)))
        }) {
            Metric::Histogram(h) => {
                assert!(
                    std::ptr::eq(h.bounds.as_ptr(), bounds.as_ptr()) || h.bounds == bounds,
                    "histogram `{name}` re-registered with different bucket bounds"
                );
                h
            }
            other => panic!("metric `{name}` already registered as {:?}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        validate_name(name);
        for (k, _) in labels {
            validate_label_key(k);
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| {
            e.family == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((ek, ev), (k, v))| ek == k && ev == v)
        }) {
            return clone_metric(&e.metric);
        }
        let metric = make();
        let cloned = clone_metric(&metric);
        entries.push(Entry {
            family: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric,
        });
        cloned
    }

    /// Deterministic point-in-time reading of every registered metric,
    /// sorted by `(family, labels)`.
    pub fn snapshot(&self) -> Vec<Sample> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                family: e.family.clone(),
                labels: e.labels.clone(),
                kind: e.metric.kind(),
                value: match &e.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let cum = h.cumulative_buckets();
                        SampleValue::Histogram {
                            buckets: h.bounds.iter().copied().zip(cum.iter().copied()).collect(),
                            count: h.count(),
                            sum: h.sum(),
                        }
                    }
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.family, &a.labels).cmp(&(&b.family, &b.labels)));
        out
    }

    /// Zero every registered metric (registrations are kept — handles stay
    /// valid). Used between deterministic-comparison runs.
    pub fn reset(&self) {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, samples sorted by
    /// `(family, labels)`, histograms expanded to
    /// `_bucket{le=…}` / `_sum` / `_count` series.
    pub fn render_prometheus(&self) -> String {
        let samples = self.snapshot();
        // HELP text per family: first registration wins.
        let helps: Vec<(String, String, MetricKind)> = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            let mut seen: Vec<(String, String, MetricKind)> = Vec::new();
            for e in entries.iter() {
                if !seen.iter().any(|(f, _, _)| *f == e.family) {
                    seen.push((e.family.clone(), e.help.clone(), e.metric.kind()));
                }
            }
            seen
        };
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in &samples {
            if last_family != Some(s.family.as_str()) {
                let (help, kind) = helps
                    .iter()
                    .find(|(f, _, _)| *f == s.family)
                    .map(|(_, h, k)| (h.as_str(), *k))
                    .unwrap_or(("", s.kind));
                out.push_str(&format!("# HELP {} {}\n", s.family, escape_help(help)));
                out.push_str(&format!("# TYPE {} {}\n", s.family, kind.as_str()));
                last_family = Some(s.family.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.family,
                        render_labels(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.family,
                        render_labels(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    for (bound, cum) in buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.family,
                            render_labels(&s.labels, Some(&format_bound(*bound))),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.family,
                        render_labels(&s.labels, Some("+Inf")),
                        count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.family,
                        render_labels(&s.labels, None),
                        format_float(*sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.family,
                        render_labels(&s.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

/// The process-wide registry used by the instrumented crates. Starts
/// disabled; the CLI flips it on when `--metrics`/`--trace` are passed.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = Registry::new();
        r.set_enabled(false);
        r
    })
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_first =
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(
        ok_first && ok_rest && !name.is_empty(),
        "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
    );
}

fn validate_label_key(key: &str) {
    let mut chars = key.chars();
    let ok_first = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(
        ok_first && ok_rest,
        "invalid label key `{key}` (want [a-zA-Z_][a-zA-Z0-9_]*)"
    );
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{bound}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_bound(b: f64) -> String {
    // Integral bounds print without a trailing `.0` to match common
    // Prometheus client conventions (`le="8"`, not `le="8.0"`).
    if b.fract() == 0.0 && b.abs() < 1e15 {
        format!("{}", b as i64)
    } else {
        format!("{b}")
    }
}

fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("test_total", "a counter");
        let g = r.gauge("test_gauge", "a gauge");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        let c = r.counter("test_total", "a counter");
        let h = r.histogram("test_hist", "a histogram", &[1.0, 2.0]);
        r.set_enabled(false);
        c.inc();
        h.observe(1.5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        h.observe(1.5);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.7, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_buckets(), vec![1, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.7).abs() < 1e-9);
    }

    #[test]
    fn same_name_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("dup_total", "first");
        let b = r.counter("dup_total", "second registration reuses first");
        a.inc();
        assert_eq!(b.get(), 1);
        let la = r.counter_with("dup_total", "labelled", &[("socket", "0")]);
        la.add(3);
        assert_eq!(a.get(), 1, "labelled series is a distinct cell");
        assert_eq!(la.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("kind_clash", "counter first");
        let _ = r.gauge("kind_clash", "gauge second");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = Registry::new();
        let _ = r.counter("9starts_with_digit", "bad");
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("reset_total", "c");
        let h = r.histogram("reset_hist", "h", &[1.0]);
        c.add(9);
        h.observe(0.5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1, "handle still live after reset");
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("zzz_total", "late alphabetically").inc();
        r.counter("aaa_total", "early alphabetically").inc();
        r.counter_with("mid_total", "labelled", &[("socket", "1")])
            .inc();
        r.counter_with("mid_total", "labelled", &[("socket", "0")])
            .inc();
        let snap = r.snapshot();
        let names: Vec<_> = snap
            .iter()
            .map(|s| (s.family.as_str(), s.labels.clone()))
            .collect();
        assert_eq!(names[0].0, "aaa_total");
        assert_eq!(names[1].0, "mid_total");
        assert_eq!(names[1].1, vec![("socket".into(), "0".into())]);
        assert_eq!(names[2].1, vec![("socket".into(), "1".into())]);
        assert_eq!(names[3].0, "zzz_total");
    }
}
