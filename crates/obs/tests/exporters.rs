//! Exporter contract tests: the Prometheus text rendering is compared
//! against a golden file and checked line-by-line for exposition-format
//! validity; the Chrome trace rendering is parsed back as JSON and
//! checked against the `trace_event` schema.
//!
//! Both tests run against a local [`Registry`] / hand-built events, so
//! they touch no process-global state and can run in parallel.

use p7_obs::metrics::Registry;
use p7_obs::trace::{render_chrome_trace, TraceEvent};
use serde::Value;

/// Bounds used by the golden histogram (must be `'static`).
static GOLDEN_BOUNDS: &[f64] = &[0.5, 2.0, 8.0];

/// A registry with one of everything, at known values.
fn golden_registry() -> Registry {
    let r = Registry::new();
    let requests = r.counter("test_requests_total", "Requests handled");
    requests.add(3);
    let errors = r.counter_with(
        "test_errors_total",
        "Errors by kind and socket",
        &[("kind", "io"), ("socket", "0")],
    );
    errors.inc();
    let depth = r.gauge("test_queue_depth", "Entries currently queued");
    depth.add(5);
    depth.add(-2);
    let latency = r.histogram("test_latency_seconds", "Request latency", GOLDEN_BOUNDS);
    latency.observe(0.25);
    latency.observe(1.0);
    latency.observe(9.5);
    r
}

#[test]
fn prometheus_rendering_matches_golden_file() {
    let actual = golden_registry().render_prometheus();
    let expected = include_str!("golden/metrics.prom");
    assert_eq!(
        actual, expected,
        "Prometheus rendering drifted from tests/golden/metrics.prom; \
         if the change is intentional, update the golden file"
    );
}

/// Is `name` a valid Prometheus metric/label identifier?
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Splits a sample line into (family, labels, value-text), where family
/// strips the `_bucket`/`_sum`/`_count` histogram suffixes.
fn parse_sample(line: &str) -> (String, Option<String>, String) {
    let (name_and_labels, value) = line.rsplit_once(' ').expect("sample has a value");
    let (name, labels) = match name_and_labels.split_once('{') {
        Some((n, rest)) => {
            let labels = rest.strip_suffix('}').expect("labels close with }");
            (n.to_owned(), Some(labels.to_owned()))
        }
        None => (name_and_labels.to_owned(), None),
    };
    (name, labels, value.to_owned())
}

#[test]
fn prometheus_rendering_is_format_valid() {
    let text = golden_registry().render_prometheus();
    assert!(text.ends_with('\n'), "exposition ends with a newline");
    let mut typed: Vec<(String, String)> = Vec::new(); // (family, type)
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').expect("HELP has text");
            assert!(valid_name(family), "bad family name `{family}`");
            assert!(!help.is_empty());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(valid_name(family), "bad family name `{family}`");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown metric type `{kind}`"
            );
            typed.push((family.to_owned(), kind.to_owned()));
        } else {
            let (name, labels, value) = parse_sample(line);
            // Every sample belongs to a declared family (histograms via
            // their _bucket/_sum/_count series).
            let family = typed
                .iter()
                .find(|(f, kind)| {
                    if kind == "histogram" {
                        name == format!("{f}_bucket")
                            || name == format!("{f}_sum")
                            || name == format!("{f}_count")
                    } else {
                        &name == f
                    }
                })
                .unwrap_or_else(|| panic!("sample `{name}` precedes its # TYPE line"));
            assert!(valid_name(&name));
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable value `{value}`"));
            if let Some(labels) = labels {
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label is k=\"v\"");
                    assert!(valid_name(k), "bad label name `{k}`");
                    assert!(v.starts_with('"') && v.ends_with('"') && v.len() >= 2);
                }
            }
            // Counters never go negative.
            if family.1 == "counter" {
                assert!(value.parse::<f64>().unwrap() >= 0.0);
            }
        }
    }
    // Histogram series are complete: +Inf bucket present and equal to _count.
    let buckets: Vec<_> = text
        .lines()
        .filter(|l| l.starts_with("test_latency_seconds_bucket"))
        .collect();
    let inf = buckets
        .iter()
        .find(|l| l.contains("le=\"+Inf\""))
        .expect("+Inf bucket present");
    let inf_count = inf.rsplit_once(' ').unwrap().1;
    let count_line = text
        .lines()
        .find(|l| l.starts_with("test_latency_seconds_count"))
        .expect("_count series present");
    assert_eq!(count_line.rsplit_once(' ').unwrap().1, inf_count);
    // Cumulative buckets are monotonically non-decreasing.
    let counts: Vec<u64> = buckets
        .iter()
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn chrome_trace_rendering_is_schema_valid_json() {
    let events = vec![
        TraceEvent {
            name: "tick",
            key: 7,
            worker: 2,
            start_us: 100,
            dur_us: 35,
            instant: false,
            ..TraceEvent::default()
        },
        TraceEvent {
            name: "supervisor_degrade",
            key: 1,
            worker: 0,
            start_us: 140,
            dur_us: 0,
            instant: true,
            ..TraceEvent::default()
        },
        TraceEvent {
            name: "weird\"name\n",
            key: 0,
            worker: 1,
            start_us: 150,
            dur_us: 1,
            instant: false,
            ..TraceEvent::default()
        },
    ];
    let json = render_chrome_trace(&events);
    let root = Value::parse_json(&json).expect("rendered trace is valid JSON");

    let trace_events = root.field("traceEvents").unwrap().as_seq().unwrap();
    assert_eq!(trace_events.len(), events.len());
    for (event, rendered) in events.iter().zip(trace_events) {
        let name = match rendered.field("name").unwrap() {
            Value::Str(s) => s.clone(),
            other => panic!("name must be a string, got {}", other.kind()),
        };
        assert_eq!(name, event.name, "names round-trip through escaping");
        let ph = match rendered.field("ph").unwrap() {
            Value::Str(s) => s.clone(),
            other => panic!("ph must be a string, got {}", other.kind()),
        };
        if event.instant {
            assert_eq!(ph, "i");
            // Instant events carry a scope and no duration.
            assert!(rendered.field("s").is_ok());
            assert!(rendered.field("dur").is_err());
        } else {
            assert_eq!(ph, "X");
            assert_eq!(
                rendered.field("dur").unwrap().as_int().unwrap(),
                i128::from(event.dur_us)
            );
        }
        assert_eq!(
            rendered.field("ts").unwrap().as_int().unwrap(),
            i128::from(event.start_us)
        );
        assert_eq!(
            rendered.field("tid").unwrap().as_int().unwrap(),
            i128::from(event.worker)
        );
        assert_eq!(
            rendered
                .field("args")
                .unwrap()
                .field("key")
                .unwrap()
                .as_int()
                .unwrap(),
            i128::from(event.key)
        );
    }
    match root.field("displayTimeUnit").unwrap() {
        Value::Str(s) => assert_eq!(s, "ms"),
        other => panic!("displayTimeUnit must be a string, got {}", other.kind()),
    }
}
