//! coremark and its throttled co-runner variants.
//!
//! The paper uses coremark for the colocation studies "because its
//! footprint is core-contained, so it isolates interference from the memory
//! subsystem and shows frequency changes due only to adaptive guardbanding"
//! (Sec. 5.2). The light/medium/heavy co-runners of the WebSearch QoS study
//! are built "from coremark threads by constraining the issue rate of the
//! other seven cores" with chip MIPS of about 13 000, 28 000 and 70 000
//! (Sec. 5.2.2).

use crate::catalog::Catalog;
use crate::error::WorkloadError;
use crate::profile::WorkloadProfile;
use crate::suites::Suite;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three co-runner intensity classes of the paper's Fig. 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoRunnerClass {
    /// ~13 000 chip MIPS across seven cores.
    Light,
    /// ~28 000 chip MIPS across seven cores.
    Medium,
    /// ~70 000 chip MIPS across seven cores (unconstrained issue).
    Heavy,
}

impl CoRunnerClass {
    /// The issue-rate fraction that produces this class's MIPS level.
    #[must_use]
    pub fn issue_fraction(self) -> f64 {
        match self {
            CoRunnerClass::Light => 0.21,
            CoRunnerClass::Medium => 0.46,
            CoRunnerClass::Heavy => 1.0,
        }
    }

    /// The paper's approximate chip MIPS for this class (seven threads).
    #[must_use]
    pub fn paper_chip_mips(self) -> f64 {
        match self {
            CoRunnerClass::Light => 13_000.0,
            CoRunnerClass::Medium => 28_000.0,
            CoRunnerClass::Heavy => 70_000.0,
        }
    }

    /// All classes, lightest first.
    #[must_use]
    pub fn all() -> [CoRunnerClass; 3] {
        [
            CoRunnerClass::Light,
            CoRunnerClass::Medium,
            CoRunnerClass::Heavy,
        ]
    }
}

impl fmt::Display for CoRunnerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoRunnerClass::Light => "light",
            CoRunnerClass::Medium => "medium",
            CoRunnerClass::Heavy => "heavy",
        };
        f.write_str(s)
    }
}

/// The unconstrained coremark profile from the catalog.
///
/// # Examples
///
/// ```
/// use p7_workloads::coremark;
///
/// let cm = coremark();
/// assert!(cm.memory_intensity() < 0.05);
/// ```
#[must_use]
pub fn coremark() -> WorkloadProfile {
    Catalog::power7plus()
        .get("coremark")
        .expect("coremark is in the catalog")
        .clone()
}

/// A coremark variant with its issue rate constrained to `fraction` of
/// full rate (the paper's co-runner construction).
///
/// Throughput scales with the issue rate; switching activity scales
/// sublinearly because the front end and clock grid stay busy.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidProfile`] when `fraction` is outside
/// `(0, 1]`.
pub fn throttled_coremark(fraction: f64) -> Result<WorkloadProfile, WorkloadError> {
    if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
        return Err(WorkloadError::InvalidProfile {
            name: "coremark-throttled".to_owned(),
            field: "issue_fraction",
            value: fraction,
        });
    }
    let base = coremark();
    let name = format!("coremark@{:.0}%", fraction * 100.0);
    WorkloadProfile::builder(&name, Suite::Micro)
        .ceff_nf(base.ceff_nf())
        .activity((0.12 + 0.88 * fraction) * base.activity())
        .mips_per_core(base.mips_per_core() * fraction)
        .memory_intensity(base.memory_intensity())
        .comm_intensity(base.comm_intensity())
        .membw_intensity(base.membw_intensity())
        .variability(base.variability())
        .serial_fraction(base.serial_fraction())
        .t1_seconds(base.t1_seconds())
        .build()
}

/// The co-runner profile for one intensity class.
#[must_use]
pub fn co_runner(class: CoRunnerClass) -> WorkloadProfile {
    throttled_coremark(class.issue_fraction()).expect("class fractions are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_by_mips() {
        let mips = |c: CoRunnerClass| co_runner(c).chip_mips(7, 1.0);
        assert!(mips(CoRunnerClass::Light) < mips(CoRunnerClass::Medium));
        assert!(mips(CoRunnerClass::Medium) < mips(CoRunnerClass::Heavy));
    }

    #[test]
    fn class_mips_land_near_paper_values() {
        for class in CoRunnerClass::all() {
            let got = co_runner(class).chip_mips(7, 1.0);
            let want = class.paper_chip_mips();
            let rel = (got - want).abs() / want;
            assert!(rel < 0.15, "{class}: {got} vs paper {want}");
        }
    }

    #[test]
    fn throttling_reduces_power_footprint() {
        let light = co_runner(CoRunnerClass::Light);
        let heavy = co_runner(CoRunnerClass::Heavy);
        assert!(light.activity() < heavy.activity());
        assert_eq!(light.ceff_nf(), heavy.ceff_nf());
    }

    #[test]
    fn rejects_bad_fractions() {
        assert!(throttled_coremark(0.0).is_err());
        assert!(throttled_coremark(1.5).is_err());
        assert!(throttled_coremark(f64::NAN).is_err());
    }

    #[test]
    fn full_throttle_matches_base() {
        let full = throttled_coremark(1.0).unwrap();
        let base = coremark();
        assert!((full.mips_per_core() - base.mips_per_core()).abs() < 1e-9);
        assert!((full.activity() - base.activity()).abs() < 1e-9);
    }
}
