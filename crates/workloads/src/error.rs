//! Error types of the workloads crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or resolving workload profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A profile field was out of its valid range.
    InvalidProfile {
        /// Benchmark name.
        name: String,
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A benchmark name is not in the catalog.
    UnknownWorkload {
        /// The requested name.
        name: String,
    },
    /// A thread placement exceeds the server's core resources.
    InvalidPlacement {
        /// The total requested thread count.
        requested: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidProfile { name, field, value } => {
                write!(
                    f,
                    "workload `{name}` field `{field}` is out of range: {value}"
                )
            }
            WorkloadError::UnknownWorkload { name } => {
                write!(f, "unknown workload `{name}`")
            }
            WorkloadError::InvalidPlacement { requested } => {
                write!(
                    f,
                    "placement of {requested} threads exceeds socket capacity"
                )
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_workload() {
        let err = WorkloadError::UnknownWorkload {
            name: "quake".to_owned(),
        };
        assert!(format!("{err}").contains("quake"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>(_: E) {}
        check(WorkloadError::InvalidPlacement { requested: 99 });
    }
}
