//! Benchmark suites used by the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The suite a benchmark belongs to.
///
/// The paper uses PARSEC and SPLASH-2 for the core-scaling studies (they
/// let parallelism be controlled thread-by-thread, Sec. 3.1), SPEC CPU2006
/// as SPECrate copies for the throughput studies (Sec. 5.1.2), and
/// microbenchmarks (coremark, WebSearch) for the QoS studies (Sec. 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC multithreaded benchmarks.
    Parsec,
    /// SPLASH-2 multithreaded benchmarks.
    Splash2,
    /// SPEC CPU2006 run as SPECrate (independent copies).
    SpecCpu2006,
    /// Microbenchmarks and datacenter applications.
    Micro,
}

impl Suite {
    /// True for suites whose threads cooperate (and therefore pay
    /// cross-socket communication costs when split).
    #[must_use]
    pub fn is_multithreaded(self) -> bool {
        matches!(self, Suite::Parsec | Suite::Splash2)
    }

    /// All suites.
    #[must_use]
    pub fn all() -> [Suite; 4] {
        [
            Suite::Parsec,
            Suite::Splash2,
            Suite::SpecCpu2006,
            Suite::Micro,
        ]
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Parsec => "PARSEC",
            Suite::Splash2 => "SPLASH-2",
            Suite::SpecCpu2006 => "SPEC CPU2006",
            Suite::Micro => "micro",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multithreading_flags() {
        assert!(Suite::Parsec.is_multithreaded());
        assert!(Suite::Splash2.is_multithreaded());
        assert!(!Suite::SpecCpu2006.is_multithreaded());
        assert!(!Suite::Micro.is_multithreaded());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Suite::Splash2), "SPLASH-2");
        assert_eq!(Suite::all().len(), 4);
    }
}
