//! The calibrated benchmark library.
//!
//! One [`WorkloadProfile`] per benchmark the paper's figures name, with
//! footprints chosen so each benchmark lands where the paper's measurements
//! put it:
//!
//! * `swaptions`, `lu_cb`, `povray`, `namd` — power-hungry compute-bound
//!   codes whose adaptive-guardband benefit collapses at eight cores
//!   (Fig. 5a: swaptions 13 % → 3 %),
//! * `radix`, `ocean_cp`, `mcf`, `lbm`, `GemsFDTD` — memory-bound codes
//!   with modest chip power whose benefit survives core scaling (radix
//!   stays ≈12 %) and which gain most from loadline borrowing's contention
//!   relief (Fig. 14 right side, 50–171 % energy improvement),
//! * `lu_ncb`, `radiosity` — communication-heavy codes that lose >20 %
//!   performance when split across sockets (Fig. 14 left side),
//! * `coremark` — core-contained (negligible memory traffic), used for the
//!   QoS studies because it isolates frequency effects (Sec. 5.2),
//! * `websearch` — the latency-critical application of Fig. 17.

use crate::error::WorkloadError;
use crate::profile::WorkloadProfile;
use crate::suites::Suite;

/// The calibrated registry of every benchmark used by the paper.
///
/// # Examples
///
/// ```
/// use p7_workloads::Catalog;
///
/// let c = Catalog::power7plus();
/// let lu_cb = c.get("lu_cb").unwrap();
/// assert!(lu_cb.ceff_nf() > c.get("radix").unwrap().ceff_nf());
/// assert_eq!(c.core_scaling_set().len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    profiles: Vec<WorkloadProfile>,
}

/// One calibration row: short-hand tuple for the table below.
type Row = (
    &'static str, // name
    Suite,
    f64, // ceff_nf
    f64, // activity
    f64, // mips_per_core
    f64, // memory_intensity
    f64, // comm_intensity
    f64, // membw_intensity
    f64, // variability
    f64, // serial_fraction
    f64, // t1_seconds
);

#[rustfmt::skip]
const CALIBRATION: &[Row] = &[
    // ---- PARSEC -------------------------------------------------------
    ("blackscholes",    Suite::Parsec,      1.30, 0.90, 7200.0, 0.10, 0.05, 0.08, 0.70, 0.01,  90.0),
    ("bodytrack",       Suite::Parsec,      1.40, 0.85, 5800.0, 0.30, 0.30, 0.30, 1.30, 0.04, 110.0),
    ("ferret",          Suite::Parsec,      1.35, 0.82, 5200.0, 0.38, 0.10, 0.42, 1.00, 0.03, 105.0),
    ("freqmine",        Suite::Parsec,      1.45, 0.88, 5600.0, 0.28, 0.35, 0.25, 0.90, 0.05, 120.0),
    ("raytrace",        Suite::Parsec,      1.55, 0.92, 6400.0, 0.22, 0.08, 0.18, 1.00, 0.02, 100.0),
    ("swaptions",       Suite::Parsec,      1.80, 0.97, 8200.0, 0.06, 0.04, 0.03, 0.80, 0.01,  95.0),
    ("vips",            Suite::Parsec,      1.50, 0.88, 6100.0, 0.30, 0.06, 0.38, 1.25, 0.02, 100.0),
    // ---- SPLASH-2 -----------------------------------------------------
    ("barnes",          Suite::Splash2,     1.42, 0.88, 6000.0, 0.22, 0.25, 0.20, 1.10, 0.03, 100.0),
    ("fft",             Suite::Splash2,     1.25, 0.72, 4300.0, 0.55, 0.20, 0.80, 1.00, 0.02,  80.0),
    ("lu_cb",           Suite::Splash2,     1.90, 1.00, 7000.0, 0.15, 0.08, 0.22, 1.00, 0.01, 110.0),
    ("lu_ncb",          Suite::Splash2,     1.60, 0.90, 6200.0, 0.25, 0.85, 0.08, 1.00, 0.02, 115.0),
    ("ocean_cp",        Suite::Splash2,     1.25, 0.75, 4600.0, 0.55, 0.22, 0.65, 0.90, 0.02,  90.0),
    ("ocean_ncp",       Suite::Splash2,     1.30, 0.76, 4500.0, 0.55, 0.45, 0.62, 0.90, 0.02,  95.0),
    ("radiosity",       Suite::Splash2,     1.55, 0.88, 5900.0, 0.25, 0.80, 0.06, 1.00, 0.03, 105.0),
    ("radix",           Suite::Splash2,     1.10, 0.70, 4200.0, 0.60, 0.10, 0.85, 0.85, 0.01,  70.0),
    ("water_nsquared",  Suite::Splash2,     1.45, 0.90, 6300.0, 0.15, 0.08, 0.12, 1.30, 0.02, 100.0),
    ("water_spatial",   Suite::Splash2,     1.40, 0.89, 6200.0, 0.16, 0.07, 0.12, 1.00, 0.02, 100.0),
    // ---- SPEC CPU2006 (SPECrate copies) -------------------------------
    ("perl",            Suite::SpecCpu2006, 1.45, 0.90, 6800.0, 0.18, 0.0, 0.15, 0.90, 0.0,  95.0),
    ("bzip2",           Suite::SpecCpu2006, 1.40, 0.88, 6200.0, 0.25, 0.0, 0.22, 0.90, 0.0,  90.0),
    ("gcc",             Suite::SpecCpu2006, 1.35, 0.80, 5200.0, 0.42, 0.0, 0.50, 1.00, 0.0, 100.0),
    ("mcf",             Suite::SpecCpu2006, 0.95, 0.55, 1600.0, 0.78, 0.0, 0.72, 0.70, 0.0, 130.0),
    ("gobmk",           Suite::SpecCpu2006, 1.45, 0.89, 6400.0, 0.20, 0.0, 0.12, 0.95, 0.0, 100.0),
    ("hmmer",           Suite::SpecCpu2006, 1.55, 0.95, 7800.0, 0.08, 0.0, 0.10, 0.80, 0.0,  85.0),
    ("sjeng",           Suite::SpecCpu2006, 1.45, 0.90, 6500.0, 0.15, 0.0, 0.10, 0.90, 0.0,  95.0),
    ("h264ref",         Suite::SpecCpu2006, 1.60, 0.94, 7500.0, 0.12, 0.0, 0.15, 0.85, 0.0,  90.0),
    ("omnetpp",         Suite::SpecCpu2006, 1.15, 0.65, 3200.0, 0.60, 0.0, 0.55, 0.90, 0.0, 110.0),
    ("astar",           Suite::SpecCpu2006, 1.20, 0.70, 3800.0, 0.52, 0.0, 0.45, 0.90, 0.0, 105.0),
    ("xalancbmk",       Suite::SpecCpu2006, 1.25, 0.72, 4200.0, 0.50, 0.0, 0.52, 1.00, 0.0, 100.0),
    ("bwaves",          Suite::SpecCpu2006, 1.35, 0.75, 4200.0, 0.58, 0.0, 0.68, 1.00, 0.0, 110.0),
    ("gamess",          Suite::SpecCpu2006, 1.60, 0.95, 7600.0, 0.08, 0.0, 0.08, 0.80, 0.0, 100.0),
    ("milc",            Suite::SpecCpu2006, 1.25, 0.70, 3800.0, 0.62, 0.0, 0.70, 1.00, 0.0,  95.0),
    ("zeusmp",          Suite::SpecCpu2006, 1.40, 0.78, 4600.0, 0.55, 0.0, 0.80, 1.05, 0.0, 100.0),
    ("gromacs",         Suite::SpecCpu2006, 1.60, 0.93, 7200.0, 0.12, 0.0, 0.15, 0.85, 0.0,  95.0),
    ("cactusADM",       Suite::SpecCpu2006, 1.35, 0.74, 4000.0, 0.60, 0.0, 0.72, 1.00, 0.0, 110.0),
    ("leslie3d",        Suite::SpecCpu2006, 1.35, 0.74, 4200.0, 0.58, 0.0, 0.74, 1.00, 0.0, 105.0),
    ("namd",            Suite::SpecCpu2006, 1.65, 0.95, 7400.0, 0.10, 0.0, 0.10, 0.80, 0.0, 100.0),
    ("dealII",          Suite::SpecCpu2006, 1.50, 0.90, 6600.0, 0.20, 0.0, 0.22, 0.90, 0.0, 100.0),
    ("soplex",          Suite::SpecCpu2006, 1.25, 0.72, 4000.0, 0.55, 0.0, 0.58, 1.00, 0.0, 100.0),
    ("povray",          Suite::SpecCpu2006, 1.65, 0.96, 7900.0, 0.05, 0.0, 0.05, 0.85, 0.0, 100.0),
    ("calculix",        Suite::SpecCpu2006, 1.55, 0.92, 7000.0, 0.15, 0.0, 0.18, 0.90, 0.0, 100.0),
    ("GemsFDTD",        Suite::SpecCpu2006, 1.30, 0.72, 3900.0, 0.62, 0.0, 0.90, 1.05, 0.0, 110.0),
    ("tonto",           Suite::SpecCpu2006, 1.55, 0.92, 6900.0, 0.15, 0.0, 0.15, 0.90, 0.0, 100.0),
    ("sphinx3",         Suite::SpecCpu2006, 1.30, 0.75, 4400.0, 0.50, 0.0, 0.55, 1.00, 0.0, 100.0),
    ("wrf",             Suite::SpecCpu2006, 1.40, 0.80, 4900.0, 0.45, 0.0, 0.52, 1.00, 0.0, 105.0),
    ("lbm",             Suite::SpecCpu2006, 1.45, 0.78, 4400.0, 0.60, 0.0, 0.95, 1.10, 0.0,  90.0),
    // ---- microbenchmarks / datacenter ----------------------------------
    ("coremark",        Suite::Micro,       1.35, 1.00, 8750.0, 0.02, 0.0, 0.02, 0.70, 0.0,  60.0),
    ("websearch",       Suite::Micro,       1.25, 0.80, 5200.0, 0.45, 0.0, 0.35, 1.00, 0.0, 100.0),
];

/// The five benchmarks of the paper's core-scaling figures (Figs. 5 and 7).
pub const CORE_SCALING_SET: [&str; 5] = ["lu_cb", "raytrace", "swaptions", "radix", "ocean_cp"];

/// The ten benchmarks decomposed in the paper's Fig. 9.
pub const DECOMPOSITION_SET: [&str; 10] = [
    "raytrace",
    "barnes",
    "blackscholes",
    "bodytrack",
    "ferret",
    "lu_ncb",
    "ocean_cp",
    "swaptions",
    "vips",
    "water_nsquared",
];

/// The 42 benchmarks of the paper's Fig. 14, in the figure's x-axis order.
pub const FIG14_SET: [&str; 42] = [
    "lu_ncb",
    "radiosity",
    "dealII",
    "bodytrack",
    "freqmine",
    "povray",
    "ocean_ncp",
    "barnes",
    "raytrace",
    "lu_cb",
    "vips",
    "gromacs",
    "namd",
    "blackscholes",
    "hmmer",
    "bzip2",
    "ferret",
    "h264ref",
    "swaptions",
    "water_nsquared",
    "gobmk",
    "perl",
    "calculix",
    "water_spatial",
    "astar",
    "xalancbmk",
    "ocean_cp",
    "sjeng",
    "sphinx3",
    "omnetpp",
    "wrf",
    "soplex",
    "gcc",
    "bwaves",
    "mcf",
    "leslie3d",
    "cactusADM",
    "radix",
    "zeusmp",
    "lbm",
    "fft",
    "GemsFDTD",
];

impl Catalog {
    /// Builds the calibrated catalog.
    ///
    /// # Panics
    ///
    /// Never panics for the shipped calibration table: every row is
    /// validated by a unit test.
    #[must_use]
    pub fn power7plus() -> Self {
        let profiles = CALIBRATION
            .iter()
            .map(|row| {
                WorkloadProfile::builder(row.0, row.1)
                    .ceff_nf(row.2)
                    .activity(row.3)
                    .mips_per_core(row.4)
                    .memory_intensity(row.5)
                    .comm_intensity(row.6)
                    .membw_intensity(row.7)
                    .variability(row.8)
                    .serial_fraction(row.9)
                    .t1_seconds(row.10)
                    .build()
                    .expect("calibration table is valid")
            })
            .collect();
        Catalog { profiles }
    }

    /// The process-wide calibrated catalog, built once.
    ///
    /// [`Catalog::power7plus`] re-validates the whole calibration table on
    /// every call; hot callers (the sweep engine compiles specs per run)
    /// share this instance instead.
    #[must_use]
    pub fn shared() -> &'static Catalog {
        static SHARED: std::sync::OnceLock<Catalog> = std::sync::OnceLock::new();
        SHARED.get_or_init(Catalog::power7plus)
    }

    /// Looks a benchmark up by its paper name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&WorkloadProfile> {
        self.profiles.iter().find(|p| p.name() == name)
    }

    /// Like [`Catalog::get`] but with a typed error for missing names.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownWorkload`] when no benchmark has
    /// that name.
    pub fn require(&self, name: &str) -> Result<&WorkloadProfile, WorkloadError> {
        self.get(name)
            .ok_or_else(|| WorkloadError::UnknownWorkload {
                name: name.to_owned(),
            })
    }

    /// Iterates over every profile.
    pub fn iter(&self) -> impl Iterator<Item = &WorkloadProfile> {
        self.profiles.iter()
    }

    /// All profiles of one suite.
    pub fn by_suite(&self, suite: Suite) -> impl Iterator<Item = &WorkloadProfile> {
        self.profiles.iter().filter(move |p| p.suite() == suite)
    }

    /// The 17 PARSEC + SPLASH-2 workloads the scaling studies use.
    #[must_use]
    pub fn parsec_splash(&self) -> Vec<&WorkloadProfile> {
        self.profiles
            .iter()
            .filter(|p| p.suite().is_multithreaded())
            .collect()
    }

    /// The five benchmarks of Figs. 5 and 7.
    #[must_use]
    pub fn core_scaling_set(&self) -> Vec<&WorkloadProfile> {
        CORE_SCALING_SET
            .iter()
            .map(|n| self.get(n).expect("core-scaling benchmark present"))
            .collect()
    }

    /// The ten benchmarks of Fig. 9.
    #[must_use]
    pub fn decomposition_set(&self) -> Vec<&WorkloadProfile> {
        DECOMPOSITION_SET
            .iter()
            .map(|n| self.get(n).expect("decomposition benchmark present"))
            .collect()
    }

    /// The 42 benchmarks of Fig. 14, in x-axis order.
    #[must_use]
    pub fn fig14_set(&self) -> Vec<&WorkloadProfile> {
        FIG14_SET
            .iter()
            .map(|n| self.get(n).expect("fig14 benchmark present"))
            .collect()
    }

    /// The workload population for the Fig. 10 / Fig. 16 scatter studies:
    /// all PARSEC, SPLASH-2 and SPEC CPU2006 profiles.
    #[must_use]
    pub fn scatter_set(&self) -> Vec<&WorkloadProfile> {
        self.profiles
            .iter()
            .filter(|p| p.suite() != Suite::Micro)
            .collect()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_validates() {
        let c = Catalog::power7plus();
        for p in c.iter() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique() {
        let c = Catalog::power7plus();
        let mut names: Vec<&str> = c.iter().map(|p| p.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn suite_counts_match_paper() {
        let c = Catalog::power7plus();
        assert_eq!(c.by_suite(Suite::Parsec).count(), 7);
        assert_eq!(c.by_suite(Suite::Splash2).count(), 10);
        assert_eq!(c.parsec_splash().len(), 17, "Sec. 4.3: 17 PARSEC+SPLASH-2");
        assert!(
            c.by_suite(Suite::SpecCpu2006).count() >= 27,
            "Sec. 4.3: 27 SPECrate workloads"
        );
    }

    #[test]
    fn named_sets_resolve() {
        let c = Catalog::power7plus();
        assert_eq!(c.core_scaling_set().len(), 5);
        assert_eq!(c.decomposition_set().len(), 10);
        assert_eq!(c.fig14_set().len(), 42);
        assert!(c.scatter_set().len() >= 44);
    }

    #[test]
    fn unknown_name_is_typed_error() {
        let c = Catalog::power7plus();
        let err = c.require("doom3").unwrap_err();
        assert!(matches!(err, WorkloadError::UnknownWorkload { .. }));
        assert!(c.require("lu_cb").is_ok());
    }

    #[test]
    fn power_ordering_matches_paper_roles() {
        let c = Catalog::power7plus();
        // Power-hungry compute codes vs. memory-bound codes: per-core
        // switched power factor ceff·activity.
        let power = |n: &str| {
            let p = c.get(n).unwrap();
            p.ceff_nf() * p.activity()
        };
        assert!(power("swaptions") > power("raytrace"));
        assert!(power("lu_cb") > power("raytrace"));
        assert!(power("raytrace") > power("radix"));
        assert!(power("ocean_cp") < power("raytrace"));
        assert!(power("mcf") < power("radix"));
    }

    #[test]
    fn comm_and_membw_extremes_match_fig14() {
        let c = Catalog::power7plus();
        // Left extreme: communication-heavy multithreaded codes.
        assert!(c.get("lu_ncb").unwrap().comm_intensity() > 0.7);
        assert!(c.get("radiosity").unwrap().comm_intensity() > 0.7);
        // Right extreme: bandwidth-starved codes.
        for n in ["radix", "zeusmp", "lbm", "fft", "GemsFDTD"] {
            assert!(
                c.get(n).unwrap().membw_intensity() >= 0.8,
                "{n} should be bandwidth-bound"
            );
        }
    }

    #[test]
    fn coremark_is_core_contained() {
        let c = Catalog::power7plus();
        let cm = c.get("coremark").unwrap();
        assert!(cm.memory_intensity() < 0.05);
        assert!(cm.membw_intensity() < 0.05);
    }

    #[test]
    fn mips_span_covers_fig16_range() {
        // Fig. 16's x-axis spans ~13k to ~80k chip MIPS for 8 threads.
        let c = Catalog::power7plus();
        let mips: Vec<f64> = c
            .scatter_set()
            .iter()
            .map(|p| p.chip_mips(8, 1.0))
            .collect();
        let min = mips.iter().cloned().fold(f64::MAX, f64::min);
        let max = mips.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 15_000.0, "min chip MIPS {min}");
        assert!(max > 60_000.0, "max chip MIPS {max}");
    }
}
