//! The workload descriptor.

use crate::error::WorkloadError;
use crate::suites::Suite;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The footprint of one benchmark, sufficient to reproduce its behaviour in
/// every figure of the paper.
///
/// Instances are built with [`WorkloadProfile::builder`]; the calibrated
/// library lives in [`crate::catalog`].
///
/// # Examples
///
/// ```
/// use p7_workloads::{Suite, WorkloadProfile};
///
/// let w = WorkloadProfile::builder("toy", Suite::Micro)
///     .ceff_nf(1.4)
///     .activity(0.9)
///     .mips_per_core(6000.0)
///     .build()?;
/// assert_eq!(w.name(), "toy");
/// assert!(w.chip_mips(8, 1.0) > w.chip_mips(1, 1.0));
/// # Ok::<(), p7_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    suite: Suite,
    ceff_nf: f64,
    activity: f64,
    mips_per_core: f64,
    memory_intensity: f64,
    comm_intensity: f64,
    membw_intensity: f64,
    variability: f64,
    serial_fraction: f64,
    t1_seconds: f64,
}

impl WorkloadProfile {
    /// Starts building a profile with neutral defaults.
    #[must_use]
    pub fn builder(name: &str, suite: Suite) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.to_owned(),
                suite,
                ceff_nf: 1.4,
                activity: 0.9,
                mips_per_core: 5000.0,
                memory_intensity: 0.3,
                comm_intensity: 0.1,
                membw_intensity: 0.3,
                variability: 1.0,
                serial_fraction: 0.02,
                t1_seconds: 100.0,
            },
        }
    }

    /// Benchmark name as the paper spells it (e.g. `lu_cb`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite this benchmark belongs to.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Effective switched capacitance per core at full activity, in nF.
    #[must_use]
    pub fn ceff_nf(&self) -> f64 {
        self.ceff_nf
    }

    /// Mean activity factor while running (0–1).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Instructions per second per core (in millions) at the 4.2 GHz
    /// reference clock.
    #[must_use]
    pub fn mips_per_core(&self) -> f64 {
        self.mips_per_core
    }

    /// How memory-latency-bound the workload is (0 = pure compute,
    /// 1 = fully memory bound). Governs how performance responds to clock
    /// frequency.
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// Cross-thread communication intensity (0–1): the cost of splitting
    /// the thread group across sockets.
    #[must_use]
    pub fn comm_intensity(&self) -> f64 {
        self.comm_intensity
    }

    /// Memory-bandwidth demand (0–1): contention among threads sharing one
    /// socket's memory controllers.
    #[must_use]
    pub fn membw_intensity(&self) -> f64 {
        self.membw_intensity
    }

    /// Relative current-swing intensity feeding the di/dt noise model
    /// (1.0 = suite average).
    #[must_use]
    pub fn variability(&self) -> f64 {
        self.variability
    }

    /// Amdahl serial fraction of the parallel region.
    #[must_use]
    pub fn serial_fraction(&self) -> f64 {
        self.serial_fraction
    }

    /// Single-core execution time at the reference clock, seconds.
    #[must_use]
    pub fn t1_seconds(&self) -> f64 {
        self.t1_seconds
    }

    /// Performance speedup for a relative clock change, attenuated by
    /// memory intensity: a fully memory-bound workload gains nothing from
    /// a faster clock.
    ///
    /// # Examples
    ///
    /// ```
    /// use p7_workloads::Catalog;
    ///
    /// let c = Catalog::power7plus();
    /// let mcf = c.get("mcf").unwrap();
    /// let swaptions = c.get("swaptions").unwrap();
    /// // A 10% overclock helps the compute-bound workload far more.
    /// assert!(swaptions.frequency_speedup(1.10) > mcf.frequency_speedup(1.10));
    /// ```
    #[must_use]
    pub fn frequency_speedup(&self, freq_ratio: f64) -> f64 {
        1.0 + (freq_ratio - 1.0) * (1.0 - self.memory_intensity)
    }

    /// Aggregate MIPS of `threads` copies/threads at a relative clock
    /// `freq_ratio` (1.0 = the 4.2 GHz reference).
    #[must_use]
    pub fn chip_mips(&self, threads: usize, freq_ratio: f64) -> f64 {
        self.mips_per_core * threads as f64 * self.frequency_speedup(freq_ratio)
    }

    /// Validates all invariants; used by the builder and by serde
    /// consumers that deserialize profiles from configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProfile`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let checks = [
            ("ceff_nf", self.ceff_nf, 0.05, 5.0),
            ("activity", self.activity, 0.0, 1.0),
            ("mips_per_core", self.mips_per_core, 1.0, 100_000.0),
            ("memory_intensity", self.memory_intensity, 0.0, 1.0),
            ("comm_intensity", self.comm_intensity, 0.0, 1.0),
            ("membw_intensity", self.membw_intensity, 0.0, 1.0),
            ("variability", self.variability, 0.05, 3.0),
            ("serial_fraction", self.serial_fraction, 0.0, 0.9),
            ("t1_seconds", self.t1_seconds, 0.001, 1.0e6),
        ];
        for (field, value, lo, hi) in checks {
            if !(value.is_finite() && (lo..=hi).contains(&value)) {
                return Err(WorkloadError::InvalidProfile {
                    name: self.name.clone(),
                    field,
                    value,
                });
            }
        }
        if self.name.is_empty() {
            return Err(WorkloadError::InvalidProfile {
                name: self.name.clone(),
                field: "name",
                value: 0.0,
            });
        }
        Ok(())
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.suite)
    }
}

/// Builder for [`WorkloadProfile`].
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $field:ident) => {
        $(#[$doc])*
        #[must_use]
        pub fn $field(mut self, value: f64) -> Self {
            self.profile.$field = value;
            self
        }
    };
}

impl WorkloadProfileBuilder {
    builder_setter!(
        /// Sets the effective switched capacitance per core (nF).
        ceff_nf
    );
    builder_setter!(
        /// Sets the mean activity factor (0–1).
        activity
    );
    builder_setter!(
        /// Sets per-core MIPS at the 4.2 GHz reference.
        mips_per_core
    );
    builder_setter!(
        /// Sets memory-latency-boundedness (0–1).
        memory_intensity
    );
    builder_setter!(
        /// Sets cross-socket communication intensity (0–1).
        comm_intensity
    );
    builder_setter!(
        /// Sets memory-bandwidth demand (0–1).
        membw_intensity
    );
    builder_setter!(
        /// Sets di/dt current variability (suite average = 1.0).
        variability
    );
    builder_setter!(
        /// Sets the Amdahl serial fraction.
        serial_fraction
    );
    builder_setter!(
        /// Sets single-core execution time (seconds).
        t1_seconds
    );

    /// Finishes the build, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProfile`] when any field is out of
    /// range.
    pub fn build(self) -> Result<WorkloadProfile, WorkloadError> {
        self.profile.validate()?;
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_profile() {
        let w = WorkloadProfile::builder("x", Suite::Parsec)
            .ceff_nf(1.8)
            .activity(0.95)
            .build()
            .unwrap();
        assert_eq!(w.ceff_nf(), 1.8);
        assert_eq!(w.suite(), Suite::Parsec);
    }

    #[test]
    fn rejects_out_of_range_activity() {
        let err = WorkloadProfile::builder("x", Suite::Parsec)
            .activity(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidProfile {
                field: "activity",
                ..
            }
        ));
    }

    #[test]
    fn rejects_nan() {
        assert!(WorkloadProfile::builder("x", Suite::Micro)
            .ceff_nf(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn memory_bound_ignores_frequency() {
        let mem = WorkloadProfile::builder("m", Suite::SpecCpu2006)
            .memory_intensity(1.0)
            .build()
            .unwrap();
        assert!((mem.frequency_speedup(1.10) - 1.0).abs() < 1e-12);
        let cpu = WorkloadProfile::builder("c", Suite::SpecCpu2006)
            .memory_intensity(0.0)
            .build()
            .unwrap();
        assert!((cpu.frequency_speedup(1.10) - 1.10).abs() < 1e-12);
    }

    #[test]
    fn chip_mips_scales_with_threads() {
        let w = WorkloadProfile::builder("x", Suite::Splash2)
            .mips_per_core(4000.0)
            .memory_intensity(0.0)
            .build()
            .unwrap();
        assert!((w.chip_mips(8, 1.0) - 32_000.0).abs() < 1e-9);
        assert!(w.chip_mips(8, 1.05) > w.chip_mips(8, 1.0));
    }

    #[test]
    fn display_includes_suite() {
        let w = WorkloadProfile::builder("lu_cb", Suite::Splash2)
            .build()
            .unwrap();
        assert_eq!(format!("{w}"), "lu_cb (SPLASH-2)");
    }
}
