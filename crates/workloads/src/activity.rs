//! Per-window activity traces.
//!
//! Real benchmarks are not flat: activity wanders through phases and
//! carries short-term jitter, which is what feeds current swings into the
//! di/dt noise model and window-to-window variation into telemetry. The
//! trace is a seeded combination of a slow sinusoidal phase and white
//! jitter around the profile's mean activity.

use crate::profile::WorkloadProfile;
use p7_types::{seed_for, SplitMix64};
use serde::{Deserialize, Serialize};

/// A deterministic per-window activity generator for one thread.
///
/// # Examples
///
/// ```
/// use p7_workloads::{ActivityTrace, Catalog};
///
/// let c = Catalog::power7plus();
/// let mut trace = ActivityTrace::new(c.get("raytrace").unwrap(), 42);
/// let a = trace.next_window();
/// assert!((0.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityTrace {
    base: f64,
    jitter: f64,
    phase_amplitude: f64,
    phase_period_windows: f64,
    window: u64,
    rng: SplitMix64,
}

impl ActivityTrace {
    /// Relative white jitter per window.
    const JITTER: f64 = 0.03;
    /// Relative amplitude of the slow phase swing.
    const PHASE_AMPLITUDE: f64 = 0.06;
    /// Period of the phase swing, in 32 ms windows (~4 s).
    const PHASE_PERIOD: f64 = 125.0;

    /// Creates a trace for one thread of `profile`, seeded by `seed` (vary
    /// the seed per thread so threads stagger rather than align).
    #[must_use]
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed_for(seed, profile.name()));
        // Random initial phase so threads with different seeds stagger.
        let window = (rng.next_f64() * Self::PHASE_PERIOD) as u64;
        ActivityTrace {
            base: profile.activity(),
            jitter: Self::JITTER * profile.variability(),
            phase_amplitude: Self::PHASE_AMPLITUDE * profile.variability(),
            phase_period_windows: Self::PHASE_PERIOD,
            window,
            rng,
        }
    }

    /// The profile-mean activity this trace wanders around.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Produces the activity factor for the next 32 ms window, in `[0, 1]`.
    pub fn next_window(&mut self) -> f64 {
        let phase = (self.window as f64 / self.phase_period_windows) * std::f64::consts::TAU;
        self.window += 1;
        let swing = self.phase_amplitude * phase.sin();
        let noise = self.jitter * self.rng.normal();
        (self.base * (1.0 + swing + noise)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn trace(name: &str, seed: u64) -> ActivityTrace {
        let c = Catalog::power7plus();
        ActivityTrace::new(c.get(name).unwrap(), seed)
    }

    #[test]
    fn stays_in_unit_range() {
        let mut t = trace("vips", 1);
        for _ in 0..10_000 {
            let a = t.next_window();
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn mean_tracks_profile_activity() {
        let mut t = trace("raytrace", 2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| t.next_window()).sum::<f64>() / f64::from(n);
        assert!(
            (mean - t.base()).abs() < 0.01,
            "mean {mean} vs {}",
            t.base()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = trace("lu_cb", 7);
        let mut b = trace("lu_cb", 7);
        for _ in 0..100 {
            assert_eq!(a.next_window(), b.next_window());
        }
    }

    #[test]
    fn different_seeds_stagger() {
        let mut a = trace("raytrace", 1);
        let mut b = trace("raytrace", 2);
        let same = (0..100)
            .filter(|_| a.next_window() == b.next_window())
            .count();
        assert!(same < 5);
    }

    #[test]
    fn high_variability_swings_more() {
        let spread = |name: &str| {
            let mut t = trace(name, 3);
            let vals: Vec<f64> = (0..2000).map(|_| t.next_window()).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt() / mean
        };
        // bodytrack (variability 1.3) vs blackscholes (0.7).
        assert!(spread("bodytrack") > spread("blackscholes"));
    }
}
