//! Workload mixes: aggregate footprints of hypothetical colocations.
//!
//! The adaptive-mapping scheduler "is exploring the workload-combination
//! space during runtime, every quantum" (Sec. 5.2.1) — it must score
//! candidate colocations *without running them*. [`WorkloadMix`] carries
//! one candidate combination and exposes the aggregate quantities the
//! MIPS-based frequency predictor consumes.

use crate::error::WorkloadError;
use crate::profile::WorkloadProfile;
use p7_types::CORES_PER_SOCKET;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One candidate colocation: workloads with thread counts, on one socket.
///
/// # Examples
///
/// ```
/// use p7_workloads::{Catalog, WorkloadMix};
///
/// let c = Catalog::power7plus();
/// let mut mix = WorkloadMix::new();
/// mix.push(c.get("websearch").unwrap().clone(), 1)?;
/// mix.push(c.get("coremark").unwrap().clone(), 7)?;
/// assert_eq!(mix.threads(), 8);
/// assert!(mix.chip_mips(1.0) > 60_000.0);
/// # Ok::<(), p7_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    entries: Vec<(WorkloadProfile, usize)>,
}

impl WorkloadMix {
    /// Creates an empty mix.
    #[must_use]
    pub fn new() -> Self {
        WorkloadMix::default()
    }

    /// Adds `threads` copies of `workload` to the mix.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidPlacement`] when the mix would
    /// exceed the socket's eight cores.
    pub fn push(&mut self, workload: WorkloadProfile, threads: usize) -> Result<(), WorkloadError> {
        let total = self.threads() + threads;
        if total > CORES_PER_SOCKET {
            return Err(WorkloadError::InvalidPlacement { requested: total });
        }
        self.entries.push((workload, threads));
        Ok(())
    }

    /// The `(workload, threads)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(WorkloadProfile, usize)] {
        &self.entries
    }

    /// Total thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// Aggregate chip MIPS at a relative clock — the predictor's input.
    #[must_use]
    pub fn chip_mips(&self, freq_ratio: f64) -> f64 {
        self.entries
            .iter()
            .map(|(w, n)| w.chip_mips(*n, freq_ratio))
            .sum()
    }

    /// Thread-weighted mean di/dt variability (1.0 when empty).
    #[must_use]
    pub fn mean_variability(&self) -> f64 {
        let threads = self.threads();
        if threads == 0 {
            return 1.0;
        }
        self.entries
            .iter()
            .map(|(w, n)| w.variability() * *n as f64)
            .sum::<f64>()
            / threads as f64
    }

    /// A dimensionless power index: total `ceff · activity` across the
    /// mix. Proportional to the mix's switching power at fixed voltage
    /// and frequency, hence to the passive drop it will induce.
    #[must_use]
    pub fn power_index(&self) -> f64 {
        self.entries
            .iter()
            .map(|(w, n)| w.ceff_nf() * w.activity() * *n as f64)
            .sum()
    }

    /// Enumerates every `(primary, co-runner × count)` combination that a
    /// scheduler with `pool` candidates can build around a pinned primary
    /// job, filling the remaining `CORES_PER_SOCKET − 1` cores with 1..=7
    /// co-runner threads. This is exactly the space Fig. 18's frequency
    /// predictor scores every quantum.
    #[must_use]
    pub fn colocation_space(
        primary: &WorkloadProfile,
        pool: &[WorkloadProfile],
    ) -> Vec<WorkloadMix> {
        let mut out = Vec::new();
        for co_runner in pool {
            for n in 1..CORES_PER_SOCKET {
                let mut mix = WorkloadMix::new();
                mix.push(primary.clone(), 1).expect("1 <= 8");
                mix.push(co_runner.clone(), n).expect("1 + n <= 8");
                out.push(mix);
            }
        }
        out
    }
}

impl fmt::Display for WorkloadMix {
    /// Shows the paper's `<a,b>` mix notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(w, n)| format!("{}×{}", n, w.name()))
            .collect();
        write!(f, "<{}>", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn catalog() -> Catalog {
        Catalog::power7plus()
    }

    #[test]
    fn push_enforces_socket_capacity() {
        let c = catalog();
        let mut mix = WorkloadMix::new();
        mix.push(c.get("coremark").unwrap().clone(), 8).unwrap();
        let err = mix.push(c.get("mcf").unwrap().clone(), 1).unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::InvalidPlacement { requested: 9 }
        ));
    }

    #[test]
    fn aggregates_sum_over_entries() {
        let c = catalog();
        let cm = c.get("coremark").unwrap().clone();
        let mcf = c.get("mcf").unwrap().clone();
        let mut mix = WorkloadMix::new();
        mix.push(cm.clone(), 2).unwrap();
        mix.push(mcf.clone(), 3).unwrap();
        assert_eq!(mix.threads(), 5);
        let expect = cm.chip_mips(2, 1.0) + mcf.chip_mips(3, 1.0);
        assert!((mix.chip_mips(1.0) - expect).abs() < 1e-9);
        let expect_power =
            cm.ceff_nf() * cm.activity() * 2.0 + mcf.ceff_nf() * mcf.activity() * 3.0;
        assert!((mix.power_index() - expect_power).abs() < 1e-12);
    }

    #[test]
    fn variability_is_thread_weighted() {
        let c = catalog();
        let bt = c.get("bodytrack").unwrap().clone(); // variability 1.3
        let bs = c.get("blackscholes").unwrap().clone(); // variability 0.7
        let mut mix = WorkloadMix::new();
        mix.push(bt, 1).unwrap();
        mix.push(bs, 3).unwrap();
        let expect = (1.3 + 3.0 * 0.7) / 4.0;
        assert!((mix.mean_variability() - expect).abs() < 1e-12);
        assert_eq!(WorkloadMix::new().mean_variability(), 1.0);
    }

    #[test]
    fn colocation_space_covers_pool_times_counts() {
        let c = catalog();
        let primary = c.get("websearch").unwrap().clone();
        let pool = vec![
            c.get("coremark").unwrap().clone(),
            c.get("mcf").unwrap().clone(),
        ];
        let space = WorkloadMix::colocation_space(&primary, &pool);
        assert_eq!(space.len(), 2 * 7);
        for mix in &space {
            assert!(mix.threads() >= 2 && mix.threads() <= 8);
            assert_eq!(mix.entries()[0].0.name(), "websearch");
        }
    }

    #[test]
    fn heavier_mixes_have_higher_mips_and_power() {
        let c = catalog();
        let primary = c.get("websearch").unwrap().clone();
        let pool = vec![c.get("coremark").unwrap().clone()];
        let space = WorkloadMix::colocation_space(&primary, &pool);
        for pair in space.windows(2) {
            assert!(pair[1].chip_mips(1.0) > pair[0].chip_mips(1.0));
            assert!(pair[1].power_index() > pair[0].power_index());
        }
    }

    #[test]
    fn display_uses_mix_notation() {
        let c = catalog();
        let mut mix = WorkloadMix::new();
        mix.push(c.get("coremark").unwrap().clone(), 1).unwrap();
        mix.push(c.get("lu_cb").unwrap().clone(), 7).unwrap();
        assert_eq!(format!("{mix}"), "<1×coremark, 7×lu_cb>");
    }
}
