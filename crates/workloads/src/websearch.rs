//! The latency-critical WebSearch application (the paper's Fig. 17).
//!
//! WebSearch runs on one core and must keep its 90th-percentile query
//! latency under a 0.5 s service-level target. Queries arrive as a Poisson
//! process into a FCFS service queue whose service rate scales with the
//! core's clock frequency — which on an adaptive-guardband chip depends on
//! what the co-runners do to the shared voltage margin. Operating close to
//! saturation, a ~2 % frequency loss inflates the tail nonlinearly; that is
//! what makes the colocation choice matter.

use p7_types::{seed_for, MegaHertz, Seconds, SplitMix64};
use serde::{Deserialize, Serialize};

/// Latency percentiles of one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median sojourn time, seconds.
    pub p50: Seconds,
    /// 90th-percentile sojourn time, seconds — the paper's QoS metric.
    pub p90: Seconds,
    /// 99th-percentile sojourn time, seconds.
    pub p99: Seconds,
    /// Number of completed queries in the window.
    pub completed: usize,
}

/// The WebSearch service model.
///
/// # Examples
///
/// ```
/// use p7_workloads::WebSearch;
/// use p7_types::MegaHertz;
///
/// let ws = WebSearch::power7plus();
/// let slow = ws.p90_windows(MegaHertz(4500.0), 60, 99);
/// let fast = ws.p90_windows(MegaHertz(4670.0), 60, 99);
/// let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
/// assert!(mean(&slow) > mean(&fast));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebSearch {
    /// Mean query arrival rate, queries per second.
    pub arrival_qps: f64,
    /// Mean service time at the reference frequency, seconds.
    pub mean_service: Seconds,
    /// Coefficient of variation of service times (log-normal).
    pub service_cv: f64,
    /// Reference frequency for `mean_service`.
    pub ref_frequency: MegaHertz,
    /// Effective elasticity of service time to clock frequency. Larger
    /// than 1 because near saturation a small clock loss compounds through
    /// the whole query pipeline; calibrated so the simulated co-runner
    /// frequency spread (~4500–4675 MHz) produces Fig. 17's violation-rate
    /// ordering (heavy > 25 %, light < 7 %).
    pub freq_sensitivity: f64,
}

impl WebSearch {
    /// The calibrated model: ~80 % utilized at the reference frequency so
    /// the 0.5 s p90 target is met when running alone (~4660 MHz on the
    /// simulated chip), while a heavy co-runner's ~160 MHz frequency loss
    /// pushes more than a quarter of the windows over the target.
    #[must_use]
    pub fn power7plus() -> Self {
        WebSearch {
            arrival_qps: 50.0,
            mean_service: Seconds(0.0158),
            service_cv: 1.2,
            ref_frequency: MegaHertz(4690.0),
            freq_sensitivity: 4.0,
        }
    }

    /// Mean service time at clock frequency `f`.
    #[must_use]
    pub fn service_time_at(&self, f: MegaHertz) -> Seconds {
        let ratio = f.0 / self.ref_frequency.0;
        let speedup = 1.0 + self.freq_sensitivity * (ratio - 1.0);
        Seconds(self.mean_service.0 / speedup.max(0.05))
    }

    /// Offered utilization (`ρ = λ·E[S]`) at frequency `f`.
    #[must_use]
    pub fn utilization_at(&self, f: MegaHertz) -> f64 {
        self.arrival_qps * self.service_time_at(f).0
    }

    /// Simulates the queue at frequency `f` for `windows` one-second
    /// windows and returns each window's p90 sojourn time in seconds.
    ///
    /// The queue is FCFS with a single server; state carries across
    /// windows so busy periods span window boundaries like on real
    /// hardware. Windows with no completions are skipped.
    #[must_use]
    pub fn p90_windows(&self, f: MegaHertz, windows: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed_for(seed, "websearch"));
        let mean_s = self.service_time_at(f).0;
        // Log-normal service times with the configured CV.
        let sigma2 = (1.0 + self.service_cv * self.service_cv).ln();
        let mu = mean_s.ln() - sigma2 / 2.0;
        let sigma = sigma2.sqrt();

        let horizon = windows as f64;
        let mut arrivals: Vec<f64> = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(self.arrival_qps);
            if t >= horizon {
                break;
            }
            arrivals.push(t);
        }

        let mut per_window: Vec<Vec<f64>> = vec![Vec::new(); windows];
        let mut server_free_at = 0.0f64;
        for &arrival in &arrivals {
            let start = server_free_at.max(arrival);
            let service = (mu + sigma * rng.normal()).exp();
            let completion = start + service;
            server_free_at = completion;
            let sojourn = completion - arrival;
            let w = completion as usize;
            if w < windows {
                per_window[w].push(sojourn);
            }
        }

        per_window
            .into_iter()
            .filter(|w| !w.is_empty())
            .map(|mut w| {
                w.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                percentile_sorted(&w, 0.90)
            })
            .collect()
    }

    /// Full latency statistics over a single long run at frequency `f`.
    #[must_use]
    pub fn latency_stats(&self, f: MegaHertz, duration: Seconds, seed: u64) -> LatencyStats {
        let windows = duration.0.ceil() as usize;
        let mut rng = SplitMix64::new(seed_for(seed, "websearch-stats"));
        let mean_s = self.service_time_at(f).0;
        let sigma2 = (1.0 + self.service_cv * self.service_cv).ln();
        let mu = mean_s.ln() - sigma2 / 2.0;
        let sigma = sigma2.sqrt();

        let mut sojourns: Vec<f64> = Vec::new();
        let mut t = 0.0;
        let mut server_free_at = 0.0f64;
        loop {
            t += rng.exponential(self.arrival_qps);
            if t >= windows as f64 {
                break;
            }
            let start = server_free_at.max(t);
            let service = (mu + sigma * rng.normal()).exp();
            server_free_at = start + service;
            sojourns.push(server_free_at - t);
        }
        sojourns.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let completed = sojourns.len();
        if completed == 0 {
            return LatencyStats {
                p50: Seconds(0.0),
                p90: Seconds(0.0),
                p99: Seconds(0.0),
                completed,
            };
        }
        LatencyStats {
            p50: Seconds(percentile_sorted(&sojourns, 0.50)),
            p90: Seconds(percentile_sorted(&sojourns, 0.90)),
            p99: Seconds(percentile_sorted(&sojourns, 0.99)),
            completed,
        }
    }

    /// Fraction of windows whose p90 exceeds `target` at frequency `f`.
    #[must_use]
    pub fn violation_rate(&self, f: MegaHertz, target: Seconds, windows: usize, seed: u64) -> f64 {
        let p90s = self.p90_windows(f, windows, seed);
        if p90s.is_empty() {
            return 0.0;
        }
        p90s.iter().filter(|&&p| p > target.0).count() as f64 / p90s.len() as f64
    }
}

impl Default for WebSearch {
    fn default() -> Self {
        WebSearch::power7plus()
    }
}

/// Interpolated percentile of a sorted slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QOS: Seconds = Seconds(0.5);

    #[test]
    fn utilization_is_subcritical_at_reference() {
        let ws = WebSearch::power7plus();
        let rho = ws.utilization_at(ws.ref_frequency);
        assert!((0.70..0.90).contains(&rho), "rho {rho}");
    }

    #[test]
    fn service_time_shrinks_with_frequency() {
        let ws = WebSearch::power7plus();
        assert!(ws.service_time_at(MegaHertz(4600.0)) < ws.service_time_at(MegaHertz(4400.0)));
    }

    #[test]
    fn p90_grows_as_frequency_drops() {
        let ws = WebSearch::power7plus();
        let mean = |v: Vec<f64>| {
            let n = v.len() as f64;
            v.into_iter().sum::<f64>() / n
        };
        let fast = mean(ws.p90_windows(MegaHertz(4670.0), 120, 1));
        let slow = mean(ws.p90_windows(MegaHertz(4500.0), 120, 1));
        assert!(slow > fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn solo_run_meets_qos() {
        // "its 90th percentile latency meets the 0.5-second target 100% of
        // time when it runs by itself" — allow a little sampling slack.
        let ws = WebSearch::power7plus();
        let rate = ws.violation_rate(MegaHertz(4660.0), QOS, 300, 7);
        assert!(rate < 0.05, "solo violation rate {rate}");
    }

    #[test]
    fn violation_rates_are_monotone_in_frequency() {
        let ws = WebSearch::power7plus();
        let heavy = ws.violation_rate(MegaHertz(4500.0), QOS, 300, 7);
        let medium = ws.violation_rate(MegaHertz(4610.0), QOS, 300, 7);
        let light = ws.violation_rate(MegaHertz(4670.0), QOS, 300, 7);
        assert!(heavy > medium, "heavy {heavy} medium {medium}");
        assert!(medium > light, "medium {medium} light {light}");
        assert!(
            heavy > 0.15,
            "heavy co-runner should violate often: {heavy}"
        );
        assert!(
            light < 0.10,
            "light co-runner should mostly meet QoS: {light}"
        );
    }

    #[test]
    fn stats_are_ordered() {
        let ws = WebSearch::power7plus();
        let s = ws.latency_stats(MegaHertz(4600.0), Seconds(120.0), 3);
        assert!(s.completed > 4000);
        assert!(s.p50 <= s.p90);
        assert!(s.p90 <= s.p99);
    }

    #[test]
    fn deterministic_per_seed() {
        let ws = WebSearch::power7plus();
        let a = ws.p90_windows(MegaHertz(4600.0), 50, 11);
        let b = ws.p90_windows(MegaHertz(4600.0), 50, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile_sorted(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }
}
