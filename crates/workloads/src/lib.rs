//! Synthetic workload substrate for the POWER7+ adaptive-guardband
//! simulator.
//!
//! The paper drives its measurements with PARSEC, SPLASH-2, SPEC CPU2006
//! (as SPECrate), coremark, and CloudSuite WebSearch. We cannot run those
//! binaries inside an analytic simulator, but the paper's results depend
//! only on each workload's *footprint*: per-core power (effective switched
//! capacitance × activity), instruction throughput (MIPS), memory-bandwidth
//! demand, cross-thread communication intensity, current variability (for
//! di/dt noise), and parallel scaling. [`profile::WorkloadProfile`]
//! captures exactly those parameters and [`catalog`] provides a calibrated
//! entry for every benchmark the paper's figures name.
//!
//! * [`profile`] — the workload descriptor and its validation,
//! * [`suites`] — PARSEC / SPLASH-2 / SPEC CPU2006 / microbenchmark
//!   groupings and the registry,
//! * [`catalog`] — the ~44 calibrated benchmark profiles,
//! * [`scaling`] — execution-time model: Amdahl scaling, memory-bandwidth
//!   contention per socket, cross-socket communication penalty,
//! * [`activity`] — per-window activity/MIPS traces with seeded jitter,
//! * [`mod@coremark`] — coremark and its issue-rate-throttled co-runner
//!   variants (the paper's light/medium/heavy co-runners, Sec. 5.2.2),
//! * [`websearch`] — the latency-critical WebSearch application: Poisson
//!   query arrivals into a frequency-sensitive service queue with
//!   90th-percentile latency tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod catalog;
pub mod coremark;
pub mod error;
pub mod mix;
pub mod profile;
pub mod scaling;
pub mod suites;
pub mod websearch;

pub use activity::ActivityTrace;
pub use catalog::Catalog;
pub use coremark::{co_runner, coremark, throttled_coremark, CoRunnerClass};
pub use error::WorkloadError;
pub use mix::WorkloadMix;
pub use profile::WorkloadProfile;
pub use scaling::{ExecutionModel, PlacementShape};
pub use suites::Suite;
pub use websearch::{LatencyStats, WebSearch};
