//! Execution-time model: parallel scaling, memory-bandwidth contention,
//! and cross-socket communication.
//!
//! Three effects govern how long a workload runs in our experiments:
//!
//! 1. **Amdahl scaling with synchronization overhead** — multithreaded
//!    codes speed up sublinearly with thread count,
//! 2. **memory-bandwidth contention** — threads sharing one socket's
//!    memory controllers slow each other down superlinearly as the socket
//!    saturates; splitting across sockets relieves it. This produces the
//!    large right-side energy wins of the paper's Fig. 14 ("less memory
//!    subsystem contention"),
//! 3. **cross-socket communication** — cooperating threads split across
//!    sockets pay interchip latency. This produces the left-side losses of
//!    Fig. 14 ("performance decreases by more than 20 % due to interchip
//!    communication overhead" for `lu_ncb` and `radiosity`).

use crate::error::WorkloadError;
use crate::profile::WorkloadProfile;
use p7_types::{Seconds, NUM_SOCKETS};
use serde::{Deserialize, Serialize};

/// How a workload's threads are spread over the server's two sockets.
///
/// # Examples
///
/// ```
/// use p7_workloads::PlacementShape;
///
/// let consolidated = PlacementShape::consolidated(6);
/// let balanced = PlacementShape::balanced(6);
/// assert_eq!(consolidated.threads_per_socket(), [6, 0]);
/// assert_eq!(balanced.threads_per_socket(), [3, 3]);
/// assert!(balanced.spans_sockets());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacementShape {
    threads: [usize; NUM_SOCKETS],
}

impl PlacementShape {
    /// All threads on socket 0 (the conventional consolidation schedule).
    #[must_use]
    pub fn consolidated(total: usize) -> Self {
        PlacementShape {
            threads: [total, 0],
        }
    }

    /// Threads split as evenly as possible (the loadline-borrowing
    /// schedule); socket 0 receives the remainder.
    #[must_use]
    pub fn balanced(total: usize) -> Self {
        let half = total / 2;
        PlacementShape {
            threads: [total - half, half],
        }
    }

    /// An explicit split.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidPlacement`] when any socket exceeds
    /// its eight cores.
    pub fn explicit(threads: [usize; NUM_SOCKETS]) -> Result<Self, WorkloadError> {
        if threads.iter().any(|&t| t > 8) {
            return Err(WorkloadError::InvalidPlacement {
                requested: threads.iter().sum(),
            });
        }
        Ok(PlacementShape { threads })
    }

    /// Threads on each socket, socket 0 first.
    #[must_use]
    pub fn threads_per_socket(&self) -> [usize; NUM_SOCKETS] {
        self.threads
    }

    /// Total thread count.
    #[must_use]
    pub fn total(&self) -> usize {
        self.threads.iter().sum()
    }

    /// True when more than one socket holds threads.
    #[must_use]
    pub fn spans_sockets(&self) -> bool {
        self.threads.iter().filter(|&&t| t > 0).count() > 1
    }

    /// The largest per-socket thread count.
    #[must_use]
    pub fn max_on_one_socket(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(0)
    }
}

/// The calibrated execution-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    /// Strength of same-socket memory-bandwidth contention.
    pub membw_contention: f64,
    /// Exponent of the contention growth with socket occupancy.
    pub membw_exponent: f64,
    /// Exponent applied to the workload's bandwidth demand: contention is
    /// a saturation phenomenon, so only genuinely bandwidth-starved codes
    /// (demand ≳ 0.7) feel it strongly — the paper's Fig. 14 shows large
    /// distribution gains only for the rightmost group.
    pub membw_saturation_exponent: f64,
    /// Relative slowdown per unit of communication intensity when threads
    /// span sockets.
    pub comm_penalty: f64,
    /// Synchronization overhead per additional thread (Amdahl erosion).
    pub sync_overhead: f64,
}

impl ExecutionModel {
    /// The calibrated Power 720 model.
    #[must_use]
    pub fn power7plus() -> Self {
        ExecutionModel {
            membw_contention: 1.92,
            membw_exponent: 2.0,
            membw_saturation_exponent: 5.0,
            comm_penalty: 0.30,
            sync_overhead: 0.012,
        }
    }

    /// The contention multiplier a socket holding `threads_on_socket`
    /// threads of workload `w` experiences (1.0 = uncontended).
    #[must_use]
    pub fn contention_factor(&self, w: &WorkloadProfile, threads_on_socket: usize) -> f64 {
        if threads_on_socket <= 1 {
            return 1.0;
        }
        let occupancy = (threads_on_socket as f64 - 1.0) / 7.0;
        let demand = w.membw_intensity().powf(self.membw_saturation_exponent);
        1.0 + demand * self.membw_contention * occupancy.powf(self.membw_exponent)
    }

    /// Execution time of workload `w` under `placement` at the relative
    /// clock `freq_ratio` (1.0 = the 4.2 GHz reference).
    ///
    /// For cooperating (PARSEC/SPLASH-2) workloads this applies Amdahl
    /// scaling over the total thread count plus the cross-socket
    /// communication penalty; for rate-style workloads (SPECrate,
    /// microbenchmarks) each copy processes fixed work, so only contention
    /// and clock matter.
    #[must_use]
    pub fn execution_time(
        &self,
        w: &WorkloadProfile,
        placement: &PlacementShape,
        freq_ratio: f64,
    ) -> Seconds {
        let n = placement.total().max(1);
        // Contention is set by the most loaded socket (critical path).
        let contention = self.contention_factor(w, placement.max_on_one_socket());
        let clock = w.frequency_speedup(freq_ratio).max(0.01);

        let base = if w.suite().is_multithreaded() {
            let serial = w.serial_fraction();
            let eff = 1.0 + self.sync_overhead * (n as f64 - 1.0);
            let scaled = serial + (1.0 - serial) * eff / n as f64;
            let comm = if placement.spans_sockets() {
                1.0 + self.comm_penalty * w.comm_intensity()
            } else {
                1.0
            };
            w.t1_seconds() * scaled * comm
        } else {
            // Rate mode: each copy runs the same fixed work.
            w.t1_seconds()
        };
        Seconds(base * contention / clock)
    }
}

impl Default for ExecutionModel {
    fn default() -> Self {
        ExecutionModel::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn model() -> ExecutionModel {
        ExecutionModel::power7plus()
    }

    #[test]
    fn placement_shapes() {
        assert_eq!(PlacementShape::consolidated(8).threads_per_socket(), [8, 0]);
        assert_eq!(PlacementShape::balanced(7).threads_per_socket(), [4, 3]);
        assert!(!PlacementShape::consolidated(8).spans_sockets());
        assert!(PlacementShape::balanced(2).spans_sockets());
        assert_eq!(PlacementShape::balanced(1).threads_per_socket(), [1, 0]);
        assert!(PlacementShape::explicit([9, 0]).is_err());
    }

    #[test]
    fn more_threads_run_faster_for_parallel_code() {
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("raytrace").unwrap();
        let mut last = f64::MAX;
        for n in 1..=8 {
            let t = m.execution_time(w, &PlacementShape::consolidated(n), 1.0);
            assert!(t.0 < last, "{n} threads -> {t}");
            last = t.0;
        }
    }

    #[test]
    fn lu_cb_speedup_matches_fig4b_scale() {
        // Fig. 4b: lu_cb runs ~100 s on one core, ~20 s on eight.
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("lu_cb").unwrap();
        let t1 = m.execution_time(w, &PlacementShape::consolidated(1), 1.0);
        let t8 = m.execution_time(w, &PlacementShape::consolidated(8), 1.0);
        let speedup = t1 / t8;
        assert!((4.0..7.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn comm_heavy_codes_lose_over_20_percent_when_split() {
        // Fig. 14 left side: lu_ncb and radiosity slow >20 % distributed.
        let c = Catalog::power7plus();
        let m = model();
        for name in ["lu_ncb", "radiosity"] {
            let w = c.get(name).unwrap();
            let consolidated = m.execution_time(w, &PlacementShape::consolidated(8), 1.0);
            let balanced = m.execution_time(w, &PlacementShape::balanced(8), 1.0);
            let slowdown = balanced / consolidated - 1.0;
            assert!(
                slowdown > 0.10,
                "{name} slowdown {slowdown} should be large"
            );
        }
    }

    #[test]
    fn bandwidth_bound_codes_speed_up_when_split() {
        // Fig. 14 right side: radix/lbm/fft-class codes gain from the
        // second memory subsystem.
        let c = Catalog::power7plus();
        let m = model();
        for name in ["radix", "lbm", "GemsFDTD", "fft"] {
            let w = c.get(name).unwrap();
            let consolidated = m.execution_time(w, &PlacementShape::consolidated(8), 1.0);
            let balanced = m.execution_time(w, &PlacementShape::balanced(8), 1.0);
            let speedup = consolidated / balanced;
            assert!(speedup > 1.3, "{name} speedup {speedup}");
        }
    }

    #[test]
    fn compute_bound_codes_are_placement_insensitive() {
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("swaptions").unwrap();
        let consolidated = m.execution_time(w, &PlacementShape::consolidated(8), 1.0);
        let balanced = m.execution_time(w, &PlacementShape::balanced(8), 1.0);
        let delta = (balanced / consolidated - 1.0).abs();
        assert!(delta < 0.05, "swaptions placement delta {delta}");
    }

    #[test]
    fn faster_clock_shortens_compute_bound_runs() {
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("swaptions").unwrap();
        let base = m.execution_time(w, &PlacementShape::consolidated(4), 1.0);
        let boosted = m.execution_time(w, &PlacementShape::consolidated(4), 1.08);
        let speedup = base / boosted;
        assert!((1.05..1.09).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn rate_workloads_ignore_amdahl() {
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("hmmer").unwrap(); // compute-bound SPECrate
        let one = m.execution_time(w, &PlacementShape::consolidated(1), 1.0);
        let eight = m.execution_time(w, &PlacementShape::consolidated(8), 1.0);
        // Same per-copy work; only (tiny) contention differs.
        assert!(eight.0 >= one.0);
        assert!(eight / one < 1.3);
    }

    #[test]
    fn contention_is_monotone_in_occupancy() {
        let c = Catalog::power7plus();
        let m = model();
        let w = c.get("lbm").unwrap();
        let mut last = 0.0;
        for k in 1..=8 {
            let f = m.contention_factor(w, k);
            assert!(f >= last);
            last = f;
        }
        assert!(last > 2.0, "lbm saturated contention {last}");
        // Mid-range bandwidth demand feels little contention (saturation).
        let gcc = c.get("gcc").unwrap();
        assert!(m.contention_factor(gcc, 8) < 1.15);
    }
}
