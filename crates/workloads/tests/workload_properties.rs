//! Property-based tests of the workload substrate.

use p7_types::MegaHertz;
use p7_workloads::{
    throttled_coremark, ActivityTrace, Catalog, ExecutionModel, PlacementShape, Suite, WebSearch,
    WorkloadProfile,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn profile_builder_accepts_exactly_the_documented_ranges(
        ceff in 0.05f64..=5.0,
        activity in 0.0f64..=1.0,
        mips in 1.0f64..=100_000.0,
        mem in 0.0f64..=1.0,
        comm in 0.0f64..=1.0,
        membw in 0.0f64..=1.0,
    ) {
        let w = WorkloadProfile::builder("prop", Suite::Parsec)
            .ceff_nf(ceff)
            .activity(activity)
            .mips_per_core(mips)
            .memory_intensity(mem)
            .comm_intensity(comm)
            .membw_intensity(membw)
            .build();
        prop_assert!(w.is_ok());
    }

    #[test]
    fn out_of_range_fields_are_rejected(
        bad_activity in prop_oneof![-10.0f64..-0.001, 1.001f64..10.0],
    ) {
        let w = WorkloadProfile::builder("prop", Suite::Parsec)
            .activity(bad_activity)
            .build();
        prop_assert!(w.is_err());
    }

    #[test]
    fn execution_time_is_monotone_in_contention(
        idx in 0usize..17,
        threads in 2usize..=8,
    ) {
        // With everything else equal, the consolidated schedule can never
        // be *less* contended than the balanced one.
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx];
        let m = ExecutionModel::power7plus();
        let cons = m.contention_factor(w, PlacementShape::consolidated(threads).max_on_one_socket());
        let bal = m.contention_factor(w, PlacementShape::balanced(threads).max_on_one_socket());
        prop_assert!(bal <= cons + 1e-12);
    }

    #[test]
    fn throttled_coremark_scales_monotonically(
        f1 in 0.05f64..1.0,
        f2 in 0.05f64..1.0,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let a = throttled_coremark(lo).unwrap();
        let b = throttled_coremark(hi).unwrap();
        prop_assert!(a.mips_per_core() <= b.mips_per_core());
        prop_assert!(a.activity() <= b.activity());
    }

    #[test]
    fn activity_traces_stay_in_unit_range_for_every_workload(
        idx in 0usize..47,
        seed in 0u64..50,
    ) {
        let catalog = Catalog::power7plus();
        let all: Vec<&WorkloadProfile> = catalog.iter().collect();
        let mut trace = ActivityTrace::new(all[idx % all.len()], seed);
        for _ in 0..200 {
            let a = trace.next_window();
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn websearch_violations_monotone_in_frequency(
        f_lo in 4440.0f64..4540.0,
        delta in 60.0f64..200.0,
    ) {
        let ws = WebSearch::power7plus();
        let target = p7_types::Seconds(0.5);
        let slow = ws.violation_rate(MegaHertz(f_lo), target, 120, 5);
        let fast = ws.violation_rate(MegaHertz(f_lo + delta), target, 120, 5);
        // Allow equality (both may saturate at 0), never inversion beyond
        // sampling noise.
        prop_assert!(fast <= slow + 0.05, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn frequency_speedup_is_bounded_by_clock_gain(
        idx in 0usize..17,
        ratio in 1.0f64..1.15,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx];
        let s = w.frequency_speedup(ratio);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= ratio + 1e-12, "speedup cannot exceed the clock gain");
    }
}
