//! Property-based tests of the CPM and telemetry substrate.

use p7_sensors::{calibration, Amester, CpmBank, CpmReading, CriticalPathMonitor};
use p7_types::{CoreId, CpmId, MegaHertz, Seconds, Volts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cpm_transfer_function_is_monotone_everywhere(
        sensitivity in 10.0f64..30.0,
        skew in -10.0f64..10.0,
        m1 in -100.0f64..300.0,
        m2 in -100.0f64..300.0,
        fmhz in 3000.0f64..4400.0,
    ) {
        let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
        let cpm = CriticalPathMonitor::with_variation(id, sensitivity, skew);
        let f = MegaHertz(fmhz);
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(
            cpm.read(Volts::from_millivolts(lo), f)
                <= cpm.read(Volts::from_millivolts(hi), f)
        );
    }

    #[test]
    fn calibration_is_idempotent(
        seed in 0u64..200,
        margin_mv in 20.0f64..150.0,
    ) {
        let mut bank = CpmBank::with_seed(seed);
        let margin = Volts::from_millivolts(margin_mv);
        let f = MegaHertz(4200.0);
        let first = calibration::calibrate_bank(&mut bank, margin, f).unwrap();
        let second = calibration::calibrate_bank(&mut bank, margin, f).unwrap();
        prop_assert_eq!(first.worst_error_taps, 0);
        prop_assert_eq!(second.worst_error_taps, 0);
        // Post-calibration the whole bank reads the target at the margin.
        let mins = bank.core_min_readings(&[margin; 8], &[f; 8]);
        for r in mins {
            prop_assert_eq!(r.value(), calibration::CALIBRATION_TARGET);
        }
    }

    #[test]
    fn readings_saturate_rather_than_wrap(
        seed in 0u64..200,
        margin_mv in -2000.0f64..2000.0,
    ) {
        let bank = CpmBank::with_seed(seed);
        let f = MegaHertz(4200.0);
        let readings = bank.read_all(&[Volts::from_millivolts(margin_mv); 8], &[f; 8]);
        for r in readings {
            prop_assert!(r >= CpmReading::MIN && r <= CpmReading::MAX);
        }
    }

    #[test]
    fn amester_round_trip_preserves_windows(
        samples in prop::collection::vec(0u8..12, 1..20),
    ) {
        let mut amester = Amester::new();
        for (i, &v) in samples.iter().enumerate() {
            let sample = [CpmReading::new(v).unwrap(); 40];
            let sticky = [CpmReading::new(v.saturating_sub(1)).unwrap(); 40];
            amester
                .record(Seconds(i as f64 * 0.032), sample, sticky)
                .unwrap();
        }
        prop_assert_eq!(amester.windows().len(), samples.len());
        let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
        let expected_worst = samples.iter().map(|v| v.saturating_sub(1)).min().unwrap();
        prop_assert_eq!(amester.worst_sticky(id).unwrap().value(), expected_worst);
        let expected_mean =
            samples.iter().map(|&v| f64::from(v)).sum::<f64>() / samples.len() as f64;
        prop_assert!((amester.mean_sample(id).unwrap() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_grows_with_frequency(
        seed in 0u64..100,
        f1 in 3000.0f64..4000.0,
        delta in 50.0f64..400.0,
    ) {
        let bank = CpmBank::with_seed(seed);
        let low = bank.mean_sensitivity(MegaHertz(f1));
        let high = bank.mean_sensitivity(MegaHertz(f1 + delta));
        prop_assert!(high > low, "sensitivity must grow with clock: {low} vs {high}");
    }
}
