//! Guardband calibration of the CPM bank.
//!
//! During bring-up, POWER7+ calibrates every CPM to output a target value
//! at the calibrated operating point (Sec. 2.2). At runtime, readings below
//! the target mean the margin has shrunk; above, it has grown. This module
//! wraps [`CpmBank::calibrate_all`](crate::bank::CpmBank::calibrate_all)
//! with verification and a report of residual calibration error.

use crate::bank::CpmBank;
use crate::cpm::CpmReading;
use crate::error::SensorError;
use p7_types::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// The CPM value POWER7+ calibration servoes to (readings "typically hover
/// around an output value of 2 when adaptive guardbanding is active").
pub const CALIBRATION_TARGET: u8 = 2;

/// Result of a calibration pass over the whole bank.
///
/// # Examples
///
/// ```
/// use p7_sensors::{calibration, CpmBank};
/// use p7_types::{MegaHertz, Volts};
///
/// let mut bank = CpmBank::with_seed(42);
/// let report = calibration::calibrate_bank(
///     &mut bank,
///     Volts::from_millivolts(75.0),
///     MegaHertz(4200.0),
/// ).unwrap();
/// assert_eq!(report.worst_error_taps, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The margin the bank was calibrated at.
    pub margin: Volts,
    /// The frequency the bank was calibrated at.
    pub frequency: MegaHertz,
    /// The target tap value.
    pub target: u8,
    /// Largest post-calibration deviation from the target, in taps.
    pub worst_error_taps: u8,
    /// Number of monitors that failed to reach the target exactly.
    pub miscalibrated: usize,
}

/// Calibrates every monitor of `bank` to read [`CALIBRATION_TARGET`] at the
/// given margin and frequency, then verifies the result.
///
/// # Errors
///
/// Returns [`SensorError::CalibrationFailed`] when any monitor ends more
/// than one tap away from the target — the situation real hardware guards
/// against with its residual guardband (stuck detectors, for instance,
/// cannot be calibrated).
pub fn calibrate_bank(
    bank: &mut CpmBank,
    margin: Volts,
    frequency: MegaHertz,
) -> Result<CalibrationReport, SensorError> {
    let target = CpmReading::new(CALIBRATION_TARGET).expect("target in range");
    bank.calibrate_all(margin, frequency, target);

    let mut worst = 0u8;
    let mut miscalibrated = 0usize;
    for monitor in bank.iter() {
        let got = monitor.read(margin, frequency);
        let err = got.value().abs_diff(target.value());
        if err > 0 {
            miscalibrated += 1;
        }
        worst = worst.max(err);
    }
    let report = CalibrationReport {
        margin,
        frequency,
        target: CALIBRATION_TARGET,
        worst_error_taps: worst,
        miscalibrated,
    };
    if worst > 1 {
        return Err(SensorError::CalibrationFailed {
            worst_error_taps: worst,
            miscalibrated,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::{CoreId, CpmId};

    #[test]
    fn clean_bank_calibrates_exactly() {
        let mut bank = CpmBank::with_seed(21);
        let report =
            calibrate_bank(&mut bank, Volts::from_millivolts(80.0), MegaHertz(4200.0)).unwrap();
        assert_eq!(report.worst_error_taps, 0);
        assert_eq!(report.miscalibrated, 0);
        assert_eq!(report.target, 2);
    }

    #[test]
    fn stuck_monitor_fails_calibration() {
        let mut bank = CpmBank::with_seed(22);
        let id = CpmId::new(CoreId::new(2).unwrap(), 3).unwrap();
        bank.monitor_mut(id).set_stuck_at(CpmReading::new(9));
        let err =
            calibrate_bank(&mut bank, Volts::from_millivolts(80.0), MegaHertz(4200.0)).unwrap_err();
        match err {
            SensorError::CalibrationFailed {
                worst_error_taps,
                miscalibrated,
            } => {
                assert!(worst_error_taps >= 7);
                assert_eq!(miscalibrated, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn calibrated_bank_reads_low_when_margin_shrinks() {
        let mut bank = CpmBank::with_seed(23);
        let margin = Volts::from_millivolts(80.0);
        let f = MegaHertz(4200.0);
        calibrate_bank(&mut bank, margin, f).unwrap();
        let shrunk = Volts::from_millivolts(30.0);
        let mins = bank.core_min_readings(&[shrunk; 8], &[f; 8]);
        for r in mins {
            assert!(r.value() < 2, "reading {r} should be below target");
        }
    }
}
