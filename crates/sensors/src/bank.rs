//! The chip-wide array of 40 CPMs with seeded process variation.

use crate::cpm::{CpmReading, CriticalPathMonitor};
use p7_types::{
    seed_for, CoreId, CpmId, MegaHertz, SplitMix64, Volts, CPMS_PER_CORE, CPMS_PER_SOCKET,
};
use serde::{Deserialize, Serialize};

/// All 40 CPMs of one chip.
///
/// Construction seeds per-core and per-CPM variation so that, as in the
/// paper's Fig. 6b, some cores' monitors track each other tightly while
/// others spread — "we attribute this behavior to process variation and CPM
/// calibration error".
///
/// # Examples
///
/// ```
/// use p7_sensors::CpmBank;
/// use p7_types::{CoreId, MegaHertz, Volts};
///
/// let bank = CpmBank::with_seed(42);
/// let margins = [Volts::from_millivolts(80.0); 8];
/// let freqs = [MegaHertz(4200.0); 8];
/// let worst = bank.core_min_readings(&margins, &freqs);
/// assert!(worst[0].value() <= 11);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpmBank {
    monitors: Vec<CriticalPathMonitor>,
}

impl CpmBank {
    /// Relative per-core spread of CPM sensitivity.
    const CORE_SENSITIVITY_SPREAD: f64 = 0.10;
    /// Relative per-CPM spread of sensitivity within a core.
    const CPM_SENSITIVITY_SPREAD: f64 = 0.06;
    /// Absolute per-CPM path-skew spread (mV).
    const SKEW_SPREAD_MV: f64 = 4.0;

    /// Builds a bank with process variation drawn from `seed`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed_for(seed, "cpm-bank"));
        let mut monitors = Vec::with_capacity(40);
        for core in CoreId::all() {
            // Cores differ from each other more than CPMs within a core.
            let core_factor = 1.0 + Self::CORE_SENSITIVITY_SPREAD * rng.normal();
            for slot in 0..CPMS_PER_CORE as u8 {
                let id = CpmId::new(core, slot).expect("slot in range");
                let cpm_factor = 1.0 + Self::CPM_SENSITIVITY_SPREAD * rng.normal();
                let sensitivity =
                    CriticalPathMonitor::NOMINAL_SENSITIVITY_MV * core_factor * cpm_factor;
                let skew = Self::SKEW_SPREAD_MV * rng.normal();
                monitors.push(CriticalPathMonitor::with_variation(
                    id,
                    sensitivity.max(8.0),
                    skew,
                ));
            }
        }
        CpmBank { monitors }
    }

    /// Borrows one monitor.
    #[must_use]
    pub fn monitor(&self, id: CpmId) -> &CriticalPathMonitor {
        &self.monitors[id.flat_index()]
    }

    /// Mutably borrows one monitor (for calibration or fault injection).
    pub fn monitor_mut(&mut self, id: CpmId) -> &mut CriticalPathMonitor {
        &mut self.monitors[id.flat_index()]
    }

    /// Iterates over all 40 monitors in flat-index order.
    pub fn iter(&self) -> impl Iterator<Item = &CriticalPathMonitor> {
        self.monitors.iter()
    }

    /// Reads every monitor given each core's margin and frequency.
    ///
    /// Returns a fixed array (flat-index order) so the per-tick sampling
    /// path never touches the heap.
    #[must_use]
    pub fn read_all(
        &self,
        core_margins: &[Volts; 8],
        core_freqs: &[MegaHertz; 8],
    ) -> [CpmReading; CPMS_PER_SOCKET] {
        let mut out = [CpmReading::MAX; CPMS_PER_SOCKET];
        for (slot, m) in out.iter_mut().zip(&self.monitors) {
            let c = m.id().core().index();
            *slot = m.read(core_margins[c], core_freqs[c]);
        }
        out
    }

    /// One firmware window's complete readout in a single pass over the
    /// bank: sample-mode and sticky-mode readings for every monitor plus
    /// each core's worst sample reading.
    ///
    /// Equivalent to two [`CpmBank::read_all`] calls and one
    /// [`CpmBank::core_min_readings`] call (bit for bit), but each
    /// monitor's frequency-dependent sensitivity is evaluated once
    /// instead of three times — this is the tick hot path's entry point.
    #[must_use]
    pub fn read_window(
        &self,
        sample_margins: &[Volts; 8],
        sticky_margins: &[Volts; 8],
        core_freqs: &[MegaHertz; 8],
    ) -> WindowReadout {
        let mut out = WindowReadout {
            sample: [CpmReading::MAX; CPMS_PER_SOCKET],
            sticky: [CpmReading::MAX; CPMS_PER_SOCKET],
            core_min: [CpmReading::MAX; 8],
        };
        for (i, m) in self.monitors.iter().enumerate() {
            let c = m.id().core().index();
            let (sample, sticky) = m.read_pair(sample_margins[c], sticky_margins[c], core_freqs[c]);
            out.sample[i] = sample;
            out.sticky[i] = sticky;
            if sample < out.core_min[c] {
                out.core_min[c] = sample;
            }
        }
        out
    }

    /// The worst (lowest) reading in each core — the value the per-core
    /// DPLL compares against the calibration point every cycle (Sec. 2.2).
    #[must_use]
    pub fn core_min_readings(
        &self,
        core_margins: &[Volts; 8],
        core_freqs: &[MegaHertz; 8],
    ) -> [CpmReading; 8] {
        let mut out = [CpmReading::MAX; 8];
        for m in &self.monitors {
            let c = m.id().core().index();
            let r = m.read(core_margins[c], core_freqs[c]);
            if r < out[c] {
                out[c] = r;
            }
        }
        out
    }

    /// Clears any injected stuck-at faults, restoring healthy monitors.
    pub fn clear_stuck_faults(&mut self) {
        for m in &mut self.monitors {
            m.set_stuck_at(None);
        }
    }

    /// Calibrates every monitor so that margin `margin` reads `target` at
    /// frequency `f` (the firmware's calibration step).
    pub fn calibrate_all(&mut self, margin: Volts, f: MegaHertz, target: CpmReading) {
        for m in &mut self.monitors {
            m.calibrate(margin, f, target);
        }
    }

    /// Mean mV-per-tap sensitivity across the bank at frequency `f`.
    #[must_use]
    pub fn mean_sensitivity(&self, f: MegaHertz) -> Volts {
        let sum: Volts = self.monitors.iter().map(|m| m.sensitivity_at(f)).sum();
        sum / self.monitors.len() as f64
    }
}

/// One firmware window's complete CPM readout, produced by
/// [`CpmBank::read_window`]. Fixed arrays throughout: building one never
/// touches the heap.
#[derive(Debug, Clone)]
pub struct WindowReadout {
    /// Sample-mode readings (40, flat-indexed).
    pub sample: [CpmReading; CPMS_PER_SOCKET],
    /// Sticky-mode readings (40, flat-indexed).
    pub sticky: [CpmReading; CPMS_PER_SOCKET],
    /// The worst sample-mode reading of each core.
    pub core_min: [CpmReading; 8],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_has_forty_monitors() {
        let bank = CpmBank::with_seed(1);
        assert_eq!(bank.iter().count(), 40);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CpmBank::with_seed(5);
        let b = CpmBank::with_seed(5);
        assert_eq!(a, b);
        let c = CpmBank::with_seed(6);
        assert_ne!(a, c);
    }

    #[test]
    fn variation_exists_but_is_bounded() {
        let bank = CpmBank::with_seed(7);
        let f = MegaHertz(4200.0);
        let sens: Vec<f64> = bank
            .iter()
            .map(|m| m.sensitivity_at(f).millivolts())
            .collect();
        let min = sens.iter().cloned().fold(f64::MAX, f64::min);
        let max = sens.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < max, "no variation present");
        assert!(min > 10.0, "min sensitivity degenerate: {min}");
        assert!(max < 35.0, "max sensitivity excessive: {max}");
        // The bank mean should stay near the nominal 21 mV/tap.
        let mean = bank.mean_sensitivity(f).millivolts();
        assert!((18.0..24.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn read_window_matches_the_three_separate_passes() {
        // The fused single-pass readout must be bit-identical to the
        // separate sample/sticky/core-min reads it replaces — including
        // through a stuck-at fault, which must show up in all three
        // views.
        let mut bank = CpmBank::with_seed(13);
        let stuck = CpmId::new(CoreId::new(3).unwrap(), 1).unwrap();
        bank.monitor_mut(stuck).set_stuck_at(CpmReading::new(0));
        let sample_margins: [Volts; 8] =
            std::array::from_fn(|i| Volts::from_millivolts(40.0 + 7.0 * i as f64));
        let sticky_margins: [Volts; 8] =
            std::array::from_fn(|i| sample_margins[i] - Volts::from_millivolts(15.0));
        let freqs: [MegaHertz; 8] = std::array::from_fn(|i| MegaHertz(3600.0 + 80.0 * i as f64));

        let fused = bank.read_window(&sample_margins, &sticky_margins, &freqs);
        assert_eq!(fused.sample, bank.read_all(&sample_margins, &freqs));
        assert_eq!(fused.sticky, bank.read_all(&sticky_margins, &freqs));
        assert_eq!(
            fused.core_min,
            bank.core_min_readings(&sample_margins, &freqs)
        );
    }

    #[test]
    fn core_min_is_at_most_every_member() {
        let bank = CpmBank::with_seed(11);
        let margins = [Volts::from_millivolts(90.0); 8];
        let freqs = [MegaHertz(4200.0); 8];
        let mins = bank.core_min_readings(&margins, &freqs);
        for m in bank.iter() {
            let c = m.id().core().index();
            assert!(mins[c] <= m.read(margins[c], freqs[c]));
        }
    }

    #[test]
    fn calibration_brings_all_cores_to_target() {
        let mut bank = CpmBank::with_seed(3);
        let f = MegaHertz(4200.0);
        let margin = Volts::from_millivolts(75.0);
        let target = CpmReading::new(2).unwrap();
        bank.calibrate_all(margin, f, target);
        let mins = bank.core_min_readings(&[margin; 8], &[f; 8]);
        for r in mins {
            assert_eq!(r, target);
        }
    }

    #[test]
    fn read_all_matches_individual_reads() {
        let bank = CpmBank::with_seed(9);
        let margins = [Volts::from_millivolts(60.0); 8];
        let freqs = [MegaHertz(4000.0); 8];
        let all = bank.read_all(&margins, &freqs);
        for (i, m) in bank.iter().enumerate() {
            let c = m.id().core().index();
            assert_eq!(all[i], m.read(margins[c], freqs[c]));
        }
    }

    #[test]
    fn fault_injection_changes_core_min() {
        let mut bank = CpmBank::with_seed(13);
        let margin = Volts::from_millivolts(120.0);
        let f = MegaHertz(4200.0);
        bank.calibrate_all(margin, f, CpmReading::new(6).unwrap());
        let id = CpmId::new(CoreId::new(4).unwrap(), 0).unwrap();
        bank.monitor_mut(id).set_stuck_at(CpmReading::new(0));
        let mins = bank.core_min_readings(&[margin; 8], &[f; 8]);
        assert_eq!(mins[4], CpmReading::MIN);
        assert_eq!(mins[3], CpmReading::new(6).unwrap());
    }
}
