//! Critical-path-monitor (CPM) and telemetry substrate for the POWER7+
//! adaptive-guardband simulator.
//!
//! POWER7+ distributes 40 CPMs across the chip (5 per core). Each CPM
//! launches a signal down synthetic paths into a 12-position edge detector
//! every cycle; the tap the edge reaches is the CPM output (0..=11), a
//! direct measurement of the remaining timing margin (Sec. 2.2 of the
//! paper). Sec. 4.1 shows the output maps near-linearly to on-chip voltage
//! at ≈21 mV per tap at peak frequency, with per-CPM and per-core spread
//! from process variation and calibration error (Fig. 6).
//!
//! * [`cpm`] — the transfer function of a single monitor,
//! * [`bank`] — the chip's 40-CPM array with seeded process variation,
//! * [`calibration`] — setting the taps so a target margin reads a target
//!   value (the calibrated point adaptive guardbanding servoes to),
//! * [`amester`] — a facade modelled on IBM's AMESTER tool: 32 ms sampling
//!   of every CPM in *sample* (instantaneous) and *sticky* (worst-case
//!   latched) modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amester;
pub mod bank;
pub mod calibration;
pub mod cpm;
pub mod error;

pub use amester::{Amester, CpmWindow};
pub use bank::{CpmBank, WindowReadout};
pub use calibration::CalibrationReport;
pub use cpm::{CpmReading, CriticalPathMonitor};
pub use error::SensorError;
