//! A single critical path monitor.

use p7_types::{CpmId, MegaHertz, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of edge-detector positions in a POWER7+ CPM.
pub const CPM_TAPS: u8 = 12;

/// The output of one CPM read: an edge-detector tap index in `0..=11`.
///
/// Lower values mean less timing margin; during calibrated adaptive
/// guardbanding operation the readings hover around 2.
///
/// # Examples
///
/// ```
/// use p7_sensors::CpmReading;
///
/// let r = CpmReading::new(5).unwrap();
/// assert_eq!(r.value(), 5);
/// assert!(CpmReading::new(12).is_none());
/// assert!(CpmReading::new(0).unwrap() < r);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CpmReading(u8);

impl CpmReading {
    /// The lowest possible reading (no margin left).
    pub const MIN: CpmReading = CpmReading(0);
    /// The highest possible reading (edge traversed the full detector).
    pub const MAX: CpmReading = CpmReading(CPM_TAPS - 1);

    /// Creates a reading, returning `None` when out of the 0..=11 range.
    #[must_use]
    pub fn new(value: u8) -> Option<Self> {
        (value < CPM_TAPS).then_some(CpmReading(value))
    }

    /// Creates a reading by clamping an arbitrary tap estimate.
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() || value <= 0.0 {
            CpmReading::MIN
        } else if value >= f64::from(CPM_TAPS - 1) {
            CpmReading::MAX
        } else {
            CpmReading(value.round() as u8)
        }
    }

    /// The raw tap index.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for CpmReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One critical path monitor.
///
/// The transfer function is linear in the available timing margin:
/// `tap = zero_margin_tap + (margin − path_skew) / sensitivity(f)`, clamped
/// to the 12-tap detector. Sensitivity (mV per tap) shrinks at lower
/// frequency because a longer cycle leaves more absolute slack per tap —
/// the spread of lines in the paper's Fig. 6b.
///
/// # Examples
///
/// ```
/// use p7_sensors::CriticalPathMonitor;
/// use p7_types::{CoreId, CpmId, MegaHertz, Volts};
///
/// let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
/// let cpm = CriticalPathMonitor::nominal(id);
/// let low = cpm.read(Volts::from_millivolts(40.0), MegaHertz(4200.0));
/// let high = cpm.read(Volts::from_millivolts(120.0), MegaHertz(4200.0));
/// assert!(high > low);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathMonitor {
    id: CpmId,
    /// mV of margin per tap at the peak frequency.
    peak_sensitivity: Volts,
    /// Frequency at which `peak_sensitivity` applies.
    peak_frequency: MegaHertz,
    /// Tap the detector reads at exactly zero margin.
    zero_margin_tap: f64,
    /// Per-CPM critical-path bias from process variation.
    path_skew: Volts,
    /// Failure injection: a stuck detector always returns this value.
    stuck_at: Option<CpmReading>,
}

impl CriticalPathMonitor {
    /// The paper's average sensitivity: ~21 mV per tap at 4.2 GHz.
    pub const NOMINAL_SENSITIVITY_MV: f64 = 21.0;

    /// Creates a monitor with nominal (variation-free) parameters.
    #[must_use]
    pub fn nominal(id: CpmId) -> Self {
        CriticalPathMonitor::with_variation(id, Self::NOMINAL_SENSITIVITY_MV, 0.0)
    }

    /// Creates a monitor with explicit process-variation parameters.
    ///
    /// `sensitivity_mv` is the mV-per-tap at peak frequency; `skew_mv`
    /// biases where the synthetic paths sit relative to the true critical
    /// path.
    #[must_use]
    pub fn with_variation(id: CpmId, sensitivity_mv: f64, skew_mv: f64) -> Self {
        CriticalPathMonitor {
            id,
            peak_sensitivity: Volts::from_millivolts(sensitivity_mv.max(1.0)),
            peak_frequency: MegaHertz(4200.0),
            zero_margin_tap: 0.0,
            path_skew: Volts::from_millivolts(skew_mv),
            stuck_at: None,
        }
    }

    /// This monitor's identifier.
    #[must_use]
    pub fn id(&self) -> CpmId {
        self.id
    }

    /// The mV-per-tap sensitivity at clock frequency `f`.
    ///
    /// Calibrated to the paper's Fig. 6b: ~21 mV/tap at 4.2 GHz shrinking
    /// toward ~11 mV/tap at 3.6 GHz.
    #[must_use]
    pub fn sensitivity_at(&self, f: MegaHertz) -> Volts {
        let ratio = (f.0 / self.peak_frequency.0).clamp(0.3, 1.3);
        self.peak_sensitivity * ratio.powi(4)
    }

    /// Reads the detector for a given timing margin at frequency `f`.
    ///
    /// `margin` is the voltage slack above the minimum the circuit needs at
    /// `f`; the caller (the chip model) computes it from the on-chip
    /// voltage and the frequency–voltage curve.
    #[must_use]
    pub fn read(&self, margin: Volts, f: MegaHertz) -> CpmReading {
        if let Some(stuck) = self.stuck_at {
            return stuck;
        }
        let taps = self.zero_margin_tap + (margin - self.path_skew) / self.sensitivity_at(f);
        CpmReading::saturating(taps)
    }

    /// Reads the detector at two margins sharing one frequency — the
    /// sample-mode and sticky-mode readouts of a firmware window.
    ///
    /// One sensitivity evaluation serves both reads, so this is the tick
    /// hot path's form; each component is bit-identical to
    /// [`CriticalPathMonitor::read`] at the same inputs (a stuck detector
    /// returns its stuck value for both).
    #[must_use]
    pub fn read_pair(
        &self,
        sample_margin: Volts,
        sticky_margin: Volts,
        f: MegaHertz,
    ) -> (CpmReading, CpmReading) {
        if let Some(stuck) = self.stuck_at {
            return (stuck, stuck);
        }
        let sensitivity = self.sensitivity_at(f);
        let sample = self.zero_margin_tap + (sample_margin - self.path_skew) / sensitivity;
        let sticky = self.zero_margin_tap + (sticky_margin - self.path_skew) / sensitivity;
        (
            CpmReading::saturating(sample),
            CpmReading::saturating(sticky),
        )
    }

    /// Shifts the zero-margin tap so that `margin` reads `target` at `f`
    /// (guardband calibration, Sec. 2.2).
    pub fn calibrate(&mut self, margin: Volts, f: MegaHertz, target: CpmReading) {
        self.zero_margin_tap =
            f64::from(target.value()) - (margin - self.path_skew) / self.sensitivity_at(f);
    }

    /// Forces the detector to a fixed output (failure injection), or clears
    /// the fault with `None`.
    pub fn set_stuck_at(&mut self, reading: Option<CpmReading>) {
        self.stuck_at = reading;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::CoreId;

    fn cpm() -> CriticalPathMonitor {
        let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
        CriticalPathMonitor::nominal(id)
    }

    #[test]
    fn reading_bounds() {
        assert!(CpmReading::new(11).is_some());
        assert!(CpmReading::new(12).is_none());
        assert_eq!(CpmReading::saturating(-3.0), CpmReading::MIN);
        assert_eq!(CpmReading::saturating(40.0), CpmReading::MAX);
        assert_eq!(CpmReading::saturating(f64::NAN), CpmReading::MIN);
        assert_eq!(CpmReading::saturating(4.4).value(), 4);
    }

    #[test]
    fn monotone_in_margin() {
        let c = cpm();
        let f = MegaHertz(4200.0);
        let mut last = CpmReading::MIN;
        for mv in (0..240).step_by(20) {
            let r = c.read(Volts::from_millivolts(f64::from(mv)), f);
            assert!(r >= last, "margin {mv} mV read {r}");
            last = r;
        }
    }

    #[test]
    fn one_tap_is_about_21mv_at_peak() {
        let c = cpm();
        let f = MegaHertz(4200.0);
        let r0 = c.read(Volts::from_millivolts(42.0), f);
        let r1 = c.read(Volts::from_millivolts(63.0), f);
        assert_eq!(i16::from(r1.value()) - i16::from(r0.value()), 1);
    }

    #[test]
    fn sensitivity_shrinks_at_lower_frequency() {
        let c = cpm();
        let hi = c.sensitivity_at(MegaHertz(4200.0));
        let lo = c.sensitivity_at(MegaHertz(3600.0));
        assert!(lo < hi);
        // Fig. 6b scale: ~11–13 mV at 3.6 GHz, ~21 mV at 4.2 GHz.
        assert!((hi.millivolts() - 21.0).abs() < 0.5, "hi {hi}");
        assert!((9.0..15.0).contains(&lo.millivolts()), "lo {lo}");
    }

    #[test]
    fn higher_frequency_reads_lower_at_fixed_voltage() {
        // Fig. 6a: at a fixed supply voltage, raising frequency shrinks
        // margin and therefore the CPM value. Margin itself is computed by
        // the chip model; here we emulate it with a simple linear curve.
        let c = cpm();
        let v = Volts(1.15);
        let margin = |f: MegaHertz| v - Volts(0.47 + f.0 / 5800.0); // v_circuit
        let slow = c.read(margin(MegaHertz(3600.0)), MegaHertz(3600.0));
        let fast = c.read(margin(MegaHertz(4200.0)), MegaHertz(4200.0));
        assert!(slow > fast);
    }

    #[test]
    fn calibration_hits_target() {
        let mut c = cpm();
        let f = MegaHertz(4200.0);
        let margin = Volts::from_millivolts(80.0);
        let target = CpmReading::new(2).unwrap();
        c.calibrate(margin, f, target);
        assert_eq!(c.read(margin, f), target);
        // One tap above the calibrated margin reads one higher.
        let above = margin + c.sensitivity_at(f);
        assert_eq!(c.read(above, f).value(), 3);
    }

    #[test]
    fn skew_shifts_readings() {
        let id = CpmId::new(CoreId::new(1).unwrap(), 2).unwrap();
        let skewed = CriticalPathMonitor::with_variation(id, 21.0, 25.0);
        let plain = CriticalPathMonitor::with_variation(id, 21.0, 0.0);
        let f = MegaHertz(4200.0);
        let m = Volts::from_millivolts(100.0);
        assert!(skewed.read(m, f) < plain.read(m, f));
    }

    #[test]
    fn stuck_fault_dominates() {
        let mut c = cpm();
        c.set_stuck_at(CpmReading::new(7));
        let f = MegaHertz(4200.0);
        assert_eq!(c.read(Volts::ZERO, f).value(), 7);
        assert_eq!(c.read(Volts(0.3), f).value(), 7);
        c.set_stuck_at(None);
        assert_ne!(c.read(Volts::ZERO, f).value(), 7);
    }

    #[test]
    fn sensitivity_never_degenerates() {
        let id = CpmId::new(CoreId::new(0).unwrap(), 1).unwrap();
        let c = CriticalPathMonitor::with_variation(id, 0.0, 0.0);
        assert!(c.sensitivity_at(MegaHertz(4200.0)).0 > 0.0);
    }
}
