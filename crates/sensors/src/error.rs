//! Error types of the sensors crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the CPM and telemetry models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// Calibration could not bring every monitor to the target value.
    CalibrationFailed {
        /// Largest post-calibration deviation in taps.
        worst_error_taps: u8,
        /// Number of monitors off target.
        miscalibrated: usize,
    },
    /// Telemetry was requested faster than the service processor allows.
    SamplingTooFast {
        /// The attempted interval in milliseconds.
        interval_ms: f64,
    },
    /// A telemetry window was structurally invalid.
    MalformedWindow {
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::CalibrationFailed {
                worst_error_taps,
                miscalibrated,
            } => write!(
                f,
                "cpm calibration failed: {miscalibrated} monitors off target, worst {worst_error_taps} taps"
            ),
            SensorError::SamplingTooFast { interval_ms } => write!(
                f,
                "sampling interval {interval_ms:.1} ms is below the 32 ms service-processor minimum"
            ),
            SensorError::MalformedWindow { reason } => {
                write!(f, "malformed telemetry window: {reason}")
            }
        }
    }
}

impl Error for SensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_interval() {
        let err = SensorError::SamplingTooFast { interval_ms: 10.0 };
        assert!(format!("{err}").contains("10.0 ms"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync>(_: E) {}
        assert_error(SensorError::MalformedWindow { reason: "x" });
    }
}
