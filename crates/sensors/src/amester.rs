//! AMESTER-style telemetry facade.
//!
//! The paper reads CPMs through IBM's Automated Measurement of Systems for
//! Temperature and Energy Reporting (AMESTER) tool, which samples through
//! the service processor at a minimum interval of 32 ms in two modes
//! (Sec. 4.1):
//!
//! * **sample mode** — an instantaneous reading of each CPM, characterizing
//!   normal operation,
//! * **sticky mode** — the worst-case (smallest) output of each CPM over
//!   the past window, capturing the deepest droop.
//!
//! [`Amester`] records per-window snapshots pushed by the simulator and
//! exposes history queries the figure harnesses consume.

use crate::cpm::CpmReading;
use crate::error::SensorError;
use p7_types::{CpmId, Seconds, CPMS_PER_SOCKET};
use serde::{Deserialize, Serialize};

/// The service-processor minimum sampling interval.
pub const MIN_SAMPLE_INTERVAL: Seconds = Seconds(0.032);

/// One 32 ms telemetry window: both readout modes for all 40 CPMs.
///
/// Readings are fixed-size arrays so recording a window never allocates
/// (beyond the recorder's own reserved backing storage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpmWindow {
    /// Window start time since experiment begin.
    pub timestamp: Seconds,
    /// Sample-mode (instantaneous) reading per CPM, flat-indexed.
    pub sample: [CpmReading; CPMS_PER_SOCKET],
    /// Sticky-mode (worst in window) reading per CPM, flat-indexed.
    pub sticky: [CpmReading; CPMS_PER_SOCKET],
}

impl CpmWindow {
    /// Sample-mode reading of one monitor.
    #[must_use]
    pub fn sample_of(&self, id: CpmId) -> CpmReading {
        self.sample[id.flat_index()]
    }

    /// Sticky-mode reading of one monitor.
    #[must_use]
    pub fn sticky_of(&self, id: CpmId) -> CpmReading {
        self.sticky[id.flat_index()]
    }
}

/// Telemetry recorder with AMESTER's interface restrictions.
///
/// # Examples
///
/// ```
/// use p7_sensors::{Amester, CpmReading};
/// use p7_types::Seconds;
///
/// let mut amester = Amester::new();
/// amester.record(
///     Seconds(0.0),
///     [CpmReading::new(5).unwrap(); 40],
///     [CpmReading::new(3).unwrap(); 40],
/// ).unwrap();
/// assert_eq!(amester.windows().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Amester {
    windows: Vec<CpmWindow>,
}

impl Amester {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Amester::default()
    }

    /// Creates an empty recorder with room for `windows` windows.
    #[must_use]
    pub fn with_capacity(windows: usize) -> Self {
        Amester {
            windows: Vec::with_capacity(windows),
        }
    }

    /// Ensures room for `additional` more windows without reallocating.
    ///
    /// Simulation drivers call this once per run so the per-tick
    /// [`Amester::record`] path never grows the backing storage.
    pub fn reserve(&mut self, additional: usize) {
        self.windows.reserve(additional);
    }

    /// Records one window of telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::SamplingTooFast`] when the window starts less
    /// than 32 ms after the previous one (the service-processor limit), and
    /// [`SensorError::MalformedWindow`] when a sticky value exceeds its
    /// sample value (a worst-case reading can never be larger than the
    /// instantaneous one).
    pub fn record(
        &mut self,
        timestamp: Seconds,
        sample: [CpmReading; CPMS_PER_SOCKET],
        sticky: [CpmReading; CPMS_PER_SOCKET],
    ) -> Result<(), SensorError> {
        if sticky.iter().zip(&sample).any(|(st, sa)| st > sa) {
            return Err(SensorError::MalformedWindow {
                reason: "sticky reading above sample reading",
            });
        }
        if let Some(last) = self.windows.last() {
            if (timestamp - last.timestamp).0 < MIN_SAMPLE_INTERVAL.0 - 1e-9 {
                return Err(SensorError::SamplingTooFast {
                    interval_ms: (timestamp - last.timestamp).millis(),
                });
            }
        }
        self.windows.push(CpmWindow {
            timestamp,
            sample,
            sticky,
        });
        Ok(())
    }

    /// All recorded windows in time order.
    #[must_use]
    pub fn windows(&self) -> &[CpmWindow] {
        &self.windows
    }

    /// The most recent window, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&CpmWindow> {
        self.windows.last()
    }

    /// Mean sample-mode reading of one monitor across all windows.
    #[must_use]
    pub fn mean_sample(&self, id: CpmId) -> Option<f64> {
        if self.windows.is_empty() {
            return None;
        }
        let sum: u32 = self
            .windows
            .iter()
            .map(|w| u32::from(w.sample_of(id).value()))
            .sum();
        Some(f64::from(sum) / self.windows.len() as f64)
    }

    /// Worst sticky-mode reading of one monitor across all windows.
    #[must_use]
    pub fn worst_sticky(&self, id: CpmId) -> Option<CpmReading> {
        self.windows.iter().map(|w| w.sticky_of(id)).min()
    }

    /// Clears the recording (e.g. between experiment phases).
    ///
    /// Keeps the reserved backing storage so a reset recorder can be
    /// refilled without reallocating.
    pub fn clear(&mut self) {
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::CoreId;

    fn readings(v: u8) -> [CpmReading; CPMS_PER_SOCKET] {
        [CpmReading::new(v).unwrap(); CPMS_PER_SOCKET]
    }

    #[test]
    fn records_and_queries() {
        let mut a = Amester::new();
        a.record(Seconds(0.0), readings(6), readings(4)).unwrap();
        a.record(Seconds(0.032), readings(8), readings(2)).unwrap();
        let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
        assert_eq!(a.windows().len(), 2);
        assert_eq!(a.mean_sample(id), Some(7.0));
        assert_eq!(a.worst_sticky(id).unwrap().value(), 2);
        assert_eq!(a.latest().unwrap().sample_of(id).value(), 8);
    }

    #[test]
    fn rejects_fast_sampling() {
        let mut a = Amester::new();
        a.record(Seconds(0.0), readings(5), readings(5)).unwrap();
        let err = a
            .record(Seconds(0.010), readings(5), readings(5))
            .unwrap_err();
        assert!(matches!(err, SensorError::SamplingTooFast { .. }));
    }

    #[test]
    fn rejects_sticky_above_sample() {
        let mut a = Amester::new();
        let err = a
            .record(Seconds(0.0), readings(3), readings(5))
            .unwrap_err();
        assert!(matches!(err, SensorError::MalformedWindow { .. }));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let a = Amester::new();
        let id = CpmId::new(CoreId::new(0).unwrap(), 0).unwrap();
        assert!(a.mean_sample(id).is_none());
        assert!(a.worst_sticky(id).is_none());
        assert!(a.latest().is_none());
    }

    #[test]
    fn clear_resets_interval_enforcement() {
        let mut a = Amester::new();
        a.record(Seconds(10.0), readings(5), readings(5)).unwrap();
        a.clear();
        // After clear, an earlier timestamp is acceptable again.
        a.record(Seconds(0.0), readings(5), readings(5)).unwrap();
        assert_eq!(a.windows().len(), 1);
    }

    #[test]
    fn reserve_does_not_change_contents() {
        let mut a = Amester::with_capacity(4);
        a.record(Seconds(0.0), readings(5), readings(5)).unwrap();
        a.reserve(100);
        assert_eq!(a.windows().len(), 1);
    }
}
