//! `ags serve` — a persistent campaign daemon in front of the sweep,
//! resilience and fleet engines.
//!
//! The batch CLI runs one campaign per process; this crate turns the
//! same engines into a long-running service in the meilisearch
//! `index-scheduler` mold:
//!
//! * [`http`] — a hand-rolled, dependency-free HTTP/1.1 + JSON wire on
//!   std [`std::net::TcpListener`] alone, hardened against abusive
//!   clients (bounded bodies, per-connection timeouts, connection cap
//!   with `503` load shedding).
//! * [`task`] — the durable task queue: every submitted task is
//!   journaled (the `p7_sim::journal` manifest + checksummed-segment
//!   substrate) *before* it is acknowledged, and every state transition
//!   (`enqueued → batched → processing → succeeded | failed |
//!   canceled`) is an appended event, so a restarted daemon rebuilds
//!   the whole queue from the journal alone.
//! * [`batch`] — the auto-batcher: compatible queued sweeps (same
//!   workloads / modes / placements / seed / ticks / faults) merge into
//!   one engine pass over a shared `SolveCache`, and the merged report
//!   is split back per task, byte-identical to standalone runs.
//! * [`daemon`] — the scheduler loop and listener, with task-level
//!   retry under the engines' `RetryPolicy` (exponential backoff,
//!   quarantined terminal state carrying the panic payload) and
//!   graceful drain: a first SIGINT/SIGTERM stops intake, checkpoints
//!   the in-flight batch and exits 75 (`EX_TEMPFAIL`, "restart me"); a
//!   second signal — re-armed via `ags_harness` — forces immediate
//!   shutdown.
//! * [`telemetry`] — the daemon's `ags_serve_*` Prometheus families
//!   (queue depth, batch width, per-route request latency, retries,
//!   sheds), exported on `GET /metrics`.
//! * [`tracestore`] — bounded per-task span retention behind
//!   `GET /tasks/<id>/trace`: every submission gets a trace id at
//!   accept, the scheduler parents its spans onto the accept root
//!   across the queue boundary, and the completed tree renders as
//!   Chrome-trace JSON.
//! * [`top`] — the `ags top` client: a live terminal dashboard polling
//!   `/healthz`, `/metrics` and `/metrics/history`, rendering queue
//!   depth, batch width, per-route latency percentiles and
//!   degraded/watchdog state as sparklines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod daemon;
pub mod http;
pub mod task;
pub mod telemetry;
pub mod top;
pub mod tracestore;

pub use daemon::{serve, ServeConfig, ServeError};
pub use task::{Task, TaskKind, TaskState, TaskStore};
pub use top::{run_top, TopOptions};
pub use tracestore::TraceStore;
