//! Per-task trace retention for the daemon.
//!
//! The `p7_obs::trace` ring is a process-global firehose: every span
//! from every thread lands in one buffer, and `collect()` drains it.
//! The daemon needs something narrower — "give me the span tree of
//! task 7" long after the scheduler moved on — so this module keeps a
//! bounded, process-global side table of completed events grouped by
//! trace id.
//!
//! Why process-global rather than per-daemon: `trace::collect()` is
//! destructive, and several daemons can share one test process. If
//! each daemon kept its own table, whichever thread drained the ring
//! first would steal the other daemon's events. Instead every drain
//! feeds the same store, and each daemon namespaces its trace ids with
//! [`fnv64`] over its journal directory, so ids never collide and
//! lookups stay per-daemon.
//!
//! Retention is bounded: once more than [`TraceStore::DEFAULT_CAPACITY`]
//! distinct traces are held, the oldest-started trace is evicted whole.
//! A trace is telemetry, not task state — eviction loses nothing a
//! restart would not.

use p7_obs::trace::TraceEvent;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// FNV-1a over `bytes`: the daemon's trace-id namespace hash (the same
/// checksum family the journal substrate uses, picked for determinism
/// and zero dependencies, not for collision resistance).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

struct Inner {
    /// Completed events per trace id.
    traces: HashMap<u64, Vec<TraceEvent>>,
    /// Trace ids in first-seen order, for whole-trace eviction.
    order: VecDeque<u64>,
    /// The accept-span id of each trace, so scheduler-side spans can
    /// parent themselves onto the root across the queue boundary.
    roots: HashMap<u64, u64>,
    /// Tombstones of evicted trace ids: a straggler span from a
    /// dropped trace must not resurrect a one-event tree. Bounded FIFO
    /// (`dead_order`) so the set cannot grow without limit.
    dead: HashSet<u64>,
    dead_order: VecDeque<u64>,
    /// Whole traces evicted since process start.
    evicted: u64,
}

/// A bounded map `trace id → completed events`, shared by every daemon
/// in the process.
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// Distinct traces retained before the oldest is evicted whole.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A store retaining at most `capacity` distinct traces (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                traces: HashMap::new(),
                order: VecDeque::new(),
                roots: HashMap::new(),
                dead: HashSet::new(),
                dead_order: VecDeque::new(),
                evicted: 0,
            }),
        }
    }

    /// The process-wide store every daemon absorbs into.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceStore::new(TraceStore::DEFAULT_CAPACITY))
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admit `trace` into the bounded id set, evicting the oldest trace
    /// whole when over capacity. Returns `false` for a tombstoned
    /// (already-evicted) trace. Caller holds the lock.
    fn admit(&self, inner: &mut Inner, trace: u64) -> bool {
        if inner.traces.contains_key(&trace) || inner.roots.contains_key(&trace) {
            return true;
        }
        if inner.dead.contains(&trace) {
            return false;
        }
        inner.order.push_back(trace);
        // The new trace sits at the back, so eviction (from the front)
        // can never drop what was just admitted.
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.traces.remove(&old);
                inner.roots.remove(&old);
                inner.evicted += 1;
                if inner.dead.insert(old) {
                    inner.dead_order.push_back(old);
                }
                while inner.dead_order.len() > self.capacity * 4 {
                    if let Some(expired) = inner.dead_order.pop_front() {
                        inner.dead.remove(&expired);
                    }
                }
            }
        }
        true
    }

    /// Files a batch of drained events under their trace ids. Events
    /// with no trace id (`trace == 0` — spans recorded outside any
    /// task, e.g. another subsystem's instrumentation) are dropped.
    pub fn absorb(&self, events: Vec<TraceEvent>) {
        let mut inner = self.lock();
        for event in events {
            if event.trace == 0 {
                continue;
            }
            // An evicted trace stays evicted: a straggler span from a
            // dropped trace must not resurrect a one-event tree.
            if !self.admit(&mut inner, event.trace) {
                continue;
            }
            inner.traces.entry(event.trace).or_default().push(event);
        }
    }

    /// Registers the root (accept) span of `trace`, so spans recorded
    /// on the far side of the queue can parent onto it.
    pub fn set_root(&self, trace: u64, span: u64) {
        let mut inner = self.lock();
        if self.admit(&mut inner, trace) {
            inner.roots.insert(trace, span);
        }
    }

    /// The root span id of `trace`, if registered and not evicted.
    #[must_use]
    pub fn root_of(&self, trace: u64) -> Option<u64> {
        self.lock().roots.get(&trace).copied()
    }

    /// Every completed event of `trace`, if any were absorbed.
    #[must_use]
    pub fn events_for(&self, trace: u64) -> Option<Vec<TraceEvent>> {
        let inner = self.lock();
        inner.traces.get(&trace).cloned()
    }

    /// Whole traces evicted since process start.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(trace: u64, span: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            name,
            trace,
            span,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"/tmp/a"), fnv64(b"/tmp/b"));
        assert_eq!(fnv64(b"/tmp/a"), fnv64(b"/tmp/a"));
    }

    #[test]
    fn absorb_groups_by_trace_and_drops_untraced() {
        let store = TraceStore::new(8);
        store.absorb(vec![
            event(1, 10, "a"),
            event(2, 20, "b"),
            event(0, 30, "untraced"),
            event(1, 11, "c"),
        ]);
        let one = store.events_for(1).unwrap();
        assert_eq!(one.len(), 2);
        assert_eq!(store.events_for(2).unwrap().len(), 1);
        assert!(store.events_for(0).is_none());
        assert!(store.events_for(99).is_none());
    }

    #[test]
    fn eviction_drops_whole_oldest_trace_and_blocks_stragglers() {
        let store = TraceStore::new(2);
        store.set_root(1, 100);
        store.absorb(vec![event(1, 100, "root")]);
        store.absorb(vec![event(2, 200, "root")]);
        store.absorb(vec![event(3, 300, "root")]); // evicts trace 1
        assert!(store.events_for(1).is_none());
        assert!(store.root_of(1).is_none());
        assert_eq!(store.evicted(), 1);
        // A straggler from the evicted trace must not resurrect it.
        store.absorb(vec![event(1, 101, "late")]);
        assert!(store.events_for(1).is_none());
        // The survivors are intact.
        assert!(store.events_for(2).is_some());
        assert!(store.events_for(3).is_some());
    }

    #[test]
    fn roots_cross_the_queue_boundary() {
        let store = TraceStore::new(8);
        store.set_root(7, 42);
        assert_eq!(store.root_of(7), Some(42));
        assert_eq!(store.root_of(8), None);
    }
}
