//! `ags top` — a live terminal dashboard over a running daemon.
//!
//! A small HTTP client (std [`TcpStream`] only, mirroring the server
//! side in [`crate::http`]) polls three read-only endpoints:
//!
//! * `GET /healthz` — status, build identity, uptime;
//! * `GET /metrics/history` — the flight recorder's recent frames,
//!   rendered as unicode sparklines (queue depth, oldest-task age,
//!   batch traffic, solve-cache traffic, degraded flag);
//! * `GET /metrics` — the per-route request-latency histogram, reduced
//!   to p50/p95/p99 upper-bound estimates from the cumulative buckets.
//!
//! Everything between the fetch and the final string is pure and
//! unit-tested; `run_top` only adds the poll loop and the ANSI
//! clear-screen. `--once` renders a single frame without any escape
//! codes, which is what the CI smoke drives.

use serde::Value;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How `ags top` connects and refreshes.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// Render one frame (no escape codes) and exit.
    pub once: bool,
    /// Refresh period for the live loop.
    pub interval: Duration,
}

impl TopOptions {
    /// Options for a live session against `addr` at a 1 s refresh.
    #[must_use]
    pub fn new(addr: &str) -> Self {
        TopOptions {
            addr: addr.to_owned(),
            once: false,
            interval: Duration::from_secs(1),
        }
    }
}

/// What `/healthz` told us (all fields best-effort: a daemon that
/// predates a field, or a 503 body, still renders).
#[derive(Debug, Default, Clone)]
struct HealthView {
    status: String,
    reason: Option<String>,
    version: String,
    git: String,
    uptime_seconds: i64,
}

/// One series out of `/metrics/history`: a key plus `(t_ms, value)`
/// points, oldest first.
#[derive(Debug, Clone)]
struct SeriesView {
    key: String,
    points: Vec<(u64, f64)>,
}

/// Per-route latency digest from the request histogram.
#[derive(Debug, Clone)]
struct RouteLatency {
    route: String,
    count: u64,
    p50: Option<f64>,
    p95: Option<f64>,
    p99: Option<f64>,
}

/// Runs the dashboard until the daemon goes away (the error says why)
/// or, with `once`, after a single frame.
///
/// # Errors
///
/// Returns a message when the daemon cannot be reached or answers
/// with an unparseable frame.
pub fn run_top(options: &TopOptions) -> Result<(), String> {
    loop {
        let frame = gather_frame(&options.addr)?;
        if options.once {
            print!("{frame}");
            let _ = std::io::stdout().flush();
            return Ok(());
        }
        // Clear + home, then the frame; plain enough for any terminal.
        print!("\u{1b}[2J\u{1b}[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(options.interval);
    }
}

/// One full fetch-and-render cycle.
fn gather_frame(addr: &str) -> Result<String, String> {
    let (_, health_body) = fetch(addr, "/healthz")?;
    let health = parse_health(&health_body);
    let (history_status, history_body) =
        fetch(addr, "/metrics/history?window_ms=120000&points=48")?;
    let series = if history_status == 200 {
        parse_history(&history_body).unwrap_or_default()
    } else {
        Vec::new()
    };
    let (metrics_status, metrics_body) = fetch(addr, "/metrics")?;
    let routes = if metrics_status == 200 {
        parse_route_latency(&metrics_body)
    } else {
        Vec::new()
    };
    Ok(render_dashboard(addr, &health, &series, &routes))
}

/// Minimal HTTP/1.1 GET: returns `(status, body)`.
fn fetch(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let request = format!("GET {path} HTTP/1.1\r\nHost: ags\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write to `{addr}` failed: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from `{addr}` failed: {e}"))?;
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed response from `{addr}`"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_owned());
    Ok((status, body))
}

/// Best-effort `/healthz` JSON parse; absent fields stay at defaults.
fn parse_health(body: &str) -> HealthView {
    let mut view = HealthView {
        status: "unknown".to_owned(),
        version: "?".to_owned(),
        git: "?".to_owned(),
        ..HealthView::default()
    };
    let Ok(value) = Value::parse_json(body) else {
        return view;
    };
    if let Ok(Value::Str(s)) = value.field("status") {
        view.status.clone_from(s);
    }
    if let Ok(Value::Str(s)) = value.field("reason") {
        view.reason = Some(s.clone());
    }
    if let Ok(Value::Str(s)) = value.field("version") {
        view.version.clone_from(s);
    }
    if let Ok(Value::Str(s)) = value.field("git") {
        view.git.clone_from(s);
    }
    if let Ok(n) = value.field("uptime_seconds").and_then(Value::as_int) {
        view.uptime_seconds = i64::try_from(n).unwrap_or(0);
    }
    view
}

/// Parses the `/metrics/history` JSON body into series views.
fn parse_history(body: &str) -> Result<Vec<SeriesView>, String> {
    let value = Value::parse_json(body).map_err(|e| format!("bad history JSON: {e}"))?;
    let series = value
        .field("series")
        .and_then(Value::as_seq)
        .map_err(|e| format!("bad history JSON: {e}"))?;
    let mut out = Vec::with_capacity(series.len());
    for entry in series {
        let Ok(Value::Str(key)) = entry.field("key") else {
            continue;
        };
        let Ok(raw_points) = entry.field("points").and_then(Value::as_seq) else {
            continue;
        };
        let mut points = Vec::with_capacity(raw_points.len());
        for point in raw_points {
            let Ok(pair) = point.as_seq() else { continue };
            if pair.len() != 2 {
                continue;
            }
            let (Ok(t), Ok(v)) = (pair[0].as_int(), pair[1].as_float()) else {
                continue;
            };
            points.push((u64::try_from(t).unwrap_or(0), v));
        }
        out.push(SeriesView {
            key: key.clone(),
            points,
        });
    }
    Ok(out)
}

/// Extracts per-route `(le, cumulative)` buckets out of the Prometheus
/// text exposition and reduces them to percentile estimates.
fn parse_route_latency(metrics: &str) -> Vec<RouteLatency> {
    const PREFIX: &str = "ags_serve_http_request_seconds_bucket{";
    /// Accumulator per route: `(route, [(le, cumulative)], +Inf count)`.
    type RouteBuckets = (String, Vec<(f64, u64)>, u64);
    let mut routes: Vec<RouteBuckets> = Vec::new();
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix(PREFIX) else {
            continue;
        };
        let Some((labels, value)) = rest.split_once("} ") else {
            continue;
        };
        let Some(route) = label_value(labels, "route") else {
            continue;
        };
        let Some(le) = label_value(labels, "le") else {
            continue;
        };
        let Ok(cum) = value.trim().parse::<u64>() else {
            continue;
        };
        let slot = match routes.iter().position(|(r, _, _)| *r == route) {
            Some(i) => &mut routes[i],
            None => {
                routes.push((route, Vec::new(), 0));
                routes.last_mut().expect("just pushed")
            }
        };
        if le == "+Inf" {
            slot.2 = cum;
        } else if let Ok(bound) = le.parse::<f64>() {
            slot.1.push((bound, cum));
        }
    }
    let mut out: Vec<RouteLatency> = routes
        .into_iter()
        .filter(|(_, _, count)| *count > 0)
        .map(|(route, buckets, count)| RouteLatency {
            route,
            count,
            p50: percentile(&buckets, count, 0.50),
            p95: percentile(&buckets, count, 0.95),
            p99: percentile(&buckets, count, 0.99),
        })
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.route.cmp(&b.route)));
    out
}

/// Pulls `key="…"` out of a Prometheus label string (labels never
/// contain escaped quotes here — routes are a fixed set).
fn label_value(labels: &str, key: &str) -> Option<String> {
    let marker = format!("{key}=\"");
    let start = labels.find(&marker)? + marker.len();
    let end = labels[start..].find('"')? + start;
    Some(labels[start..end].to_owned())
}

/// Upper-bound percentile estimate from cumulative buckets: the first
/// finite bound covering `q` of the observations, `None` when the
/// quantile lands in the `+Inf` overflow (or there is no data).
fn percentile(buckets: &[(f64, u64)], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let target = (q * count as f64).ceil().max(1.0) as u64;
    buckets
        .iter()
        .find(|(_, cum)| *cum >= target)
        .map(|(bound, _)| *bound)
}

/// Eight-level unicode sparkline, scaled to the slice's own min/max.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return "(no data)".to_owned();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|v| {
            if max > min {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let idx = (((v - min) / (max - min)) * 7.0).round() as usize;
                BARS[idx.min(7)]
            } else {
                BARS[0]
            }
        })
        .collect()
}

/// Per-sample increments of a cumulative counter series (clamped at
/// zero so a daemon restart does not render as a negative spike).
fn deltas(values: &[f64]) -> Vec<f64> {
    values.windows(2).map(|w| (w[1] - w[0]).max(0.0)).collect()
}

fn series_values<'a>(series: &'a [SeriesView], key: &str) -> Option<&'a [(u64, f64)]> {
    series
        .iter()
        .find(|s| s.key == key)
        .map(|s| s.points.as_slice())
}

/// One gauge row: sparkline plus the latest value.
fn gauge_row(out: &mut String, label: &str, series: &[SeriesView], key: &str) {
    let values: Vec<f64> = series_values(series, key)
        .map(|pts| pts.iter().map(|(_, v)| *v).collect())
        .unwrap_or_default();
    let last = values.last().copied().unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  {label:<18} {} {}",
        sparkline(&values),
        format_value(last)
    );
}

/// One counter row: sparkline of per-sample increments plus the total.
fn counter_row(out: &mut String, label: &str, series: &[SeriesView], key: &str) {
    let values: Vec<f64> = series_values(series, key)
        .map(|pts| pts.iter().map(|(_, v)| *v).collect())
        .unwrap_or_default();
    let total = values.last().copied().unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  {label:<18} {} {} total",
        sparkline(&deltas(&values)),
        format_value(total)
    );
}

/// Compact numbers: integers without the trailing `.0`, the rest with
/// one decimal.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Milliseconds per latency display, with sub-millisecond precision.
fn format_latency(bound: Option<f64>) -> String {
    match bound {
        Some(b) => format!("≤{:.1}ms", b * 1000.0),
        None => ">2.5s".to_owned(),
    }
}

/// Renders the whole dashboard frame. Pure — everything observable is
/// in the arguments, so the tests drive it without a daemon.
fn render_dashboard(
    addr: &str,
    health: &HealthView,
    series: &[SeriesView],
    routes: &[RouteLatency],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ags top — {addr} — status {} (v{}, git {}, up {}s)",
        health.status, health.version, health.git, health.uptime_seconds
    );
    if let Some(reason) = &health.reason {
        let _ = writeln!(out, "  !! {reason}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "queue");
    gauge_row(&mut out, "depth", series, "ags_serve_queue_depth");
    gauge_row(
        &mut out,
        "oldest age (s)",
        series,
        "ags_serve_queue_oldest_age_seconds",
    );
    gauge_row(&mut out, "degraded", series, "ags_serve_degraded");
    counter_row(
        &mut out,
        "stuck tasks",
        series,
        "ags_serve_tasks_stuck_total",
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "scheduler");
    counter_row(&mut out, "batches", series, "ags_serve_batches_total");
    counter_row(
        &mut out,
        "batch width",
        series,
        "ags_serve_batch_width_count",
    );
    counter_row(
        &mut out,
        "task retries",
        series,
        "ags_serve_task_retries_total",
    );
    counter_row(&mut out, "cache hits", series, "ags_solve_cache_hits_total");
    counter_row(
        &mut out,
        "cache misses",
        series,
        "ags_solve_cache_misses_total",
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "routes (latency upper bounds from histogram buckets)");
    if routes.is_empty() {
        let _ = writeln!(out, "  (no requests observed)");
    }
    for r in routes {
        let _ = writeln!(
            out,
            "  {:<18} n={:<6} p50 {:<8} p95 {:<8} p99 {}",
            r.route,
            r.count,
            format_latency(r.p50),
            format_latency(r.p95),
            format_latency(r.p99),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_and_handles_flats() {
        assert_eq!(sparkline(&[]), "(no data)");
        assert_eq!(sparkline(&[3.0, 3.0, 3.0]), "▁▁▁");
        let line = sparkline(&[0.0, 1.0, 2.0, 7.0]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn deltas_clamp_counter_resets() {
        assert_eq!(deltas(&[1.0, 4.0, 4.0, 2.0]), vec![3.0, 0.0, 0.0]);
        assert!(deltas(&[5.0]).is_empty());
    }

    #[test]
    fn percentile_walks_cumulative_buckets() {
        let buckets = [(0.001, 5), (0.01, 9), (0.1, 10)];
        assert_eq!(percentile(&buckets, 10, 0.50), Some(0.001));
        assert_eq!(percentile(&buckets, 10, 0.90), Some(0.01));
        assert_eq!(percentile(&buckets, 10, 0.99), Some(0.1));
        assert_eq!(percentile(&buckets, 0, 0.50), None);
        // Quantile landing past every finite bound → overflow bucket.
        assert_eq!(percentile(&[(0.001, 2)], 10, 0.99), None);
    }

    #[test]
    fn route_latency_parses_prometheus_text() {
        let text = "\
# HELP ags_serve_http_request_seconds HTTP request latency\n\
# TYPE ags_serve_http_request_seconds histogram\n\
ags_serve_http_request_seconds_bucket{route=\"/tasks\",le=\"0.001\"} 2\n\
ags_serve_http_request_seconds_bucket{route=\"/tasks\",le=\"0.01\"} 4\n\
ags_serve_http_request_seconds_bucket{route=\"/tasks\",le=\"+Inf\"} 4\n\
ags_serve_http_request_seconds_sum{route=\"/tasks\"} 0.01\n\
ags_serve_http_request_seconds_count{route=\"/tasks\"} 4\n\
ags_serve_http_request_seconds_bucket{route=\"/healthz\",le=\"0.001\"} 0\n\
ags_serve_http_request_seconds_bucket{route=\"/healthz\",le=\"+Inf\"} 0\n\
other_metric 7\n";
        let routes = parse_route_latency(text);
        assert_eq!(routes.len(), 1, "zero-count routes are hidden");
        assert_eq!(routes[0].route, "/tasks");
        assert_eq!(routes[0].count, 4);
        assert_eq!(routes[0].p50, Some(0.001));
        assert_eq!(routes[0].p99, Some(0.01));
    }

    #[test]
    fn history_and_health_parse_and_render() {
        let health = parse_health(
            "{\"status\":\"ok\",\"version\":\"0.1.0\",\"git\":\"abc123\",\"uptime_seconds\":42}",
        );
        assert_eq!(health.status, "ok");
        assert_eq!(health.uptime_seconds, 42);
        assert!(health.reason.is_none());

        let degraded = parse_health("{\"status\":\"degraded\",\"reason\":\"journal unwritable\"}");
        assert_eq!(degraded.status, "degraded");
        assert_eq!(degraded.reason.as_deref(), Some("journal unwritable"));

        let history = "{\"now_ms\":1000,\"window_ms\":120000,\"dropped_frames\":0,\
\"series\":[{\"key\":\"ags_serve_queue_depth\",\"points\":[[900,1.0],[950,3.0]]}]}";
        let series = parse_history(history).expect("parses");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points, vec![(900, 1.0), (950, 3.0)]);

        let frame = render_dashboard(
            "127.0.0.1:7075",
            &health,
            &series,
            &[RouteLatency {
                route: "/tasks".to_owned(),
                count: 4,
                p50: Some(0.001),
                p95: Some(0.01),
                p99: None,
            }],
        );
        assert!(frame.contains("status ok"));
        assert!(frame.contains("depth"));
        assert!(frame.contains("/tasks"));
        assert!(frame.contains("≤1.0ms"));
        assert!(frame.contains(">2.5s"));
        // The --once frame carries no escape codes.
        assert!(!frame.contains('\u{1b}'));
    }

    #[test]
    fn malformed_bodies_degrade_gracefully() {
        let health = parse_health("not json at all");
        assert_eq!(health.status, "unknown");
        assert!(parse_history("not json").is_err());
        assert!(parse_route_latency("garbage text\n").is_empty());
        assert_eq!(
            label_value("route=\"/tasks\",le=\"+Inf\"", "le").as_deref(),
            Some("+Inf")
        );
        assert_eq!(label_value("route=\"/tasks\"", "le"), None);
    }
}
