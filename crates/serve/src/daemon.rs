//! The daemon: a durable task queue in front of the campaign engines.
//!
//! Two long-lived threads share the [`TaskStore`]:
//!
//! * the **accept loop** (the caller's thread) parses HTTP requests,
//!   journals submissions before acknowledging them, and answers
//!   status/result/metrics queries;
//! * the **scheduler** claims every ready task, merges compatible
//!   sweeps into one engine pass ([`crate::batch`]), runs it over the
//!   shared `SolveCache`, and journals each member's terminal state —
//!   retrying failed tasks under the [`RetryPolicy`] with exponential
//!   backoff until they quarantine into `failed`. Backoff deadlines are
//!   journaled with the task, so a restart does not reset them.
//!
//! Graceful drain: when [`ServeConfig::drain`] fires (the CLI wires it
//! to SIGINT/SIGTERM) the accept loop stops taking connections, the
//! engine pass in flight is cooperatively interrupted, its member
//! tasks are durably re-enqueued (the in-flight checkpoint), and
//! [`serve`] returns so the CLI can exit 75. The daemon then re-arms
//! the signal handlers at [`ServeConfig::force`]: a second signal
//! exits immediately instead of waiting for the drain.
//!
//! Degraded read-only mode: when a journal append fails (disk full,
//! permissions yanked, device error) the daemon does not crash — it
//! latches a degraded flag, sheds every write with `503` and a
//! `Retry-After` hint, and keeps serving reads (`/healthz`, `/tasks`,
//! results, `/metrics`). The scheduler probes the journal directory
//! every poll; once a probe write round-trips, tasks stranded
//! mid-claim are re-enqueued and normal service resumes. `/healthz`
//! reports the real state: `200` only while the scheduler thread is
//! live *and* the journal is accepting writes.
//!
//! Stuck-task watchdog: with [`ServeConfig::batch_deadline`] set, a
//! sidecar thread cancels any engine pass that outlives the deadline
//! and its member tasks quarantine as `failed` with a `stuck:` reason
//! (a task that blows its deadline would blow it again on retry).
//!
//! Observability: every submission is assigned a trace id
//! (`fnv64(journal dir) ^ task id`) at accept time, and the accept,
//! journal-append, batch-formation, engine-solve and render stages each
//! record a span into that trace — retrievable as Chrome-trace JSON
//! from `GET /tasks/<id>/trace` even though the stages run on different
//! threads on opposite sides of the queue. A sampler thread snapshots
//! the whole metrics registry every [`ServeConfig::sample_interval`]
//! into an in-memory ring served by `GET /metrics/history`, and
//! persists the frames to a `flightrec/` journal inside the queue
//! directory so history survives a restart. Diagnostics go through the
//! structured `p7_obs::log` logger on stderr; stdout stays reserved for
//! the machine-readable startup handshake.

use crate::batch::{build_batches, split_report, QueuedSweep, SweepBatch};
use crate::http::{
    query_param, read_request, split_target, HttpError, HttpLimits, Request, Response,
};
use crate::task::{now_ms, Task, TaskKind, TaskState, TaskStore, TaskUpdate};
use crate::telemetry;
use crate::tracestore::{fnv64, TraceStore};
use ags_harness::{rearm_cancel_on_signals, EXIT_INTERRUPTED};
use p7_fleet::{FleetEngine, FleetRunOptions, FleetSpec};
use p7_obs::timeseries::{wall_ms, Frame, Recorder};
use p7_obs::{log_error, log_info, log_warn, trace};
use p7_sim::journal::render_failed;
use p7_sim::recorder::{FrameRecord, RecorderLog};
use p7_sim::sweep::render_results_table;
use p7_sim::{
    std_fs, CancelToken, DurableOptions, DynFs, FailedPoint, ResilienceSpec, RetryPolicy, SimError,
    SweepEngine, SweepRunOptions, SweepSpec,
};
use p7_workloads::Catalog;
use serde::{Deserialize, Value};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending, and
/// therefore the worst-case latency to notice a drain request.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// The scheduler's idle wait between queue scans (it is also woken
/// eagerly on every submit and on drain). While degraded, this is also
/// the journal-recovery probe cadence.
const SCHEDULER_POLL: Duration = Duration::from_millis(100);

/// The watchdog sidecar's poll interval while a batch deadline is
/// armed, and therefore the enforcement slack on the deadline.
const WATCHDOG_POLL: Duration = Duration::from_millis(10);

/// How long a draining daemon waits for in-flight connections to
/// finish before returning anyway.
const CONNECTION_DRAIN_GRACE: Duration = Duration::from_secs(2);

/// `Retry-After` seconds on degraded-mode `503`s. The scheduler probes
/// for recovery every [`SCHEDULER_POLL`], so one second is an honest
/// earliest-useful-retry hint.
const RETRY_AFTER_SECS: u32 = 1;

/// Subdirectory of the queue journal holding the flight-recorder log.
/// Lives inside the journal dir so one `--journal` flag names all of a
/// daemon's durable state; the queue's segment scan ignores it (only
/// `seg-*.json` names are segments).
const RECORDER_DIR: &str = "flightrec";

/// Sampled frames buffered in memory before one durable append to the
/// flight-recorder log (at the default interval: one segment every
/// two seconds).
const RECORDER_PERSIST_EVERY: usize = 4;

/// The sampler's drain-poll granularity while sleeping between frames.
const SAMPLER_NAP: Duration = Duration::from_millis(50);

/// Everything [`serve`] needs. Construct with [`ServeConfig::new`] and
/// override fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7075` (`:0` picks a free port).
    pub addr: String,
    /// The durable task-queue journal directory (created on first run,
    /// recovered on restart).
    pub journal: PathBuf,
    /// Engine worker threads per pass (0 = available parallelism).
    pub jobs: usize,
    /// Task-level retry/backoff policy (also passed into each engine
    /// pass for point-level panic retries).
    pub retry: RetryPolicy,
    /// Listener hardening knobs.
    pub limits: HttpLimits,
    /// Graceful-drain token; the CLI wires SIGINT/SIGTERM to it.
    pub drain: CancelToken,
    /// Force-shutdown token, re-armed onto the signal handlers once the
    /// drain begins; a second signal then exits immediately.
    pub force: CancelToken,
    /// Whether to re-arm process signal handlers at drain time (true
    /// for the CLI; false for in-process tests).
    pub handle_signals: bool,
    /// Receives the actually-bound address once the listener is up
    /// (read it when binding port 0).
    pub bound_addr: Arc<OnceLock<SocketAddr>>,
    /// Filesystem backend for the queue journal ([`p7_sim::std_fs`] in
    /// production; tests inject a fault-scripted backend).
    pub fs: DynFs,
    /// Per-batch watchdog deadline: an engine pass running longer is
    /// canceled and its member tasks quarantined as stuck. `None`
    /// disables the watchdog.
    pub batch_deadline: Option<Duration>,
    /// Flight-recorder sampling interval: how often the metrics
    /// registry is snapshotted into the `/metrics/history` ring.
    pub sample_interval: Duration,
}

impl ServeConfig {
    /// A config with default limits and retry policy.
    #[must_use]
    pub fn new(addr: impl Into<String>, journal: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            journal: journal.into(),
            jobs: 0,
            retry: RetryPolicy::power7plus(),
            limits: HttpLimits::default(),
            drain: CancelToken::new(),
            force: CancelToken::new(),
            handle_signals: true,
            bound_addr: Arc::new(OnceLock::new()),
            fs: std_fs(),
            batch_deadline: None,
            sample_interval: Duration::from_millis(500),
        }
    }
}

/// Why the daemon could not run (distinct from a graceful drain, which
/// is [`serve`] returning `Ok`).
#[derive(Debug)]
pub enum ServeError {
    /// The queue journal failed: open, recovery, or a durable append.
    Journal(SimError),
    /// The listener could not bind the requested address.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The OS error.
        reason: String,
    },
    /// Listener or scheduler plumbing failed.
    Runtime(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "task queue journal: {e}"),
            ServeError::Bind { addr, reason } => write!(f, "cannot bind `{addr}`: {reason}"),
            ServeError::Runtime(what) => write!(f, "serve runtime: {what}"),
        }
    }
}

/// Liveness and writability state surfaced on `/healthz`.
struct Health {
    /// True while the scheduler thread is running; cleared on any exit,
    /// a panic included, by its drop guard.
    scheduler_live: AtomicBool,
    /// `Some(reason)` while the daemon sheds writes because the queue
    /// journal stopped accepting appends.
    degraded: Mutex<Option<String>>,
}

/// State shared between the accept loop, handler threads and the
/// scheduler.
struct Shared {
    queue: Mutex<TaskStore>,
    /// Paired with `queue`: submits and drain requests wake the
    /// scheduler's idle wait.
    wake: Condvar,
    drain: CancelToken,
    retry: RetryPolicy,
    jobs: usize,
    /// Optional per-batch watchdog deadline.
    deadline: Option<Duration>,
    health: Health,
    /// This daemon's trace-id namespace: `fnv64` of its journal dir.
    /// A task's trace id is `trace_ns ^ task id`, so ids stay stable
    /// across a restart of the same queue and never collide between
    /// daemons sharing one process (and one global [`TraceStore`]).
    trace_ns: u64,
    /// In-memory flight-recorder ring behind `GET /metrics/history`.
    recorder: Arc<Recorder>,
    /// When this daemon came up (the `/healthz` uptime base).
    started: Instant,
}

impl Shared {
    /// Locks the queue, surviving a poisoned mutex (a handler panic
    /// must not wedge the whole daemon).
    fn lock_queue(&self) -> MutexGuard<'_, TaskStore> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Refreshes the queue-depth gauge from the store.
    fn refresh_depth(&self) {
        let depth = self.lock_queue().open_tasks();
        telemetry::queue_depth().set(i64::try_from(depth).unwrap_or(i64::MAX));
    }

    fn lock_degraded(&self) -> MutexGuard<'_, Option<String>> {
        self.health
            .degraded
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The degraded reason, if the daemon is currently shedding writes.
    fn degraded_reason(&self) -> Option<String> {
        self.lock_degraded().clone()
    }

    fn is_degraded(&self) -> bool {
        self.lock_degraded().is_some()
    }

    /// Latches degraded read-only mode (idempotent: the first reason
    /// wins until recovery clears it).
    fn enter_degraded(&self, reason: String) {
        let mut slot = self.lock_degraded();
        if slot.is_none() {
            log_error!("serve", reason = reason;
                "journal unwritable — entering degraded read-only mode");
            telemetry::serve_degraded().set(1);
            *slot = Some(reason);
        }
    }

    /// Leaves degraded mode (idempotent).
    fn clear_degraded(&self) {
        let mut slot = self.lock_degraded();
        if slot.take().is_some() {
            log_info!("serve", "journal writable again — resuming normal service");
            telemetry::serve_degraded().set(0);
        }
    }
}

/// Runs the daemon until its drain token fires (returns `Ok`) or a
/// non-recoverable error occurs. The caller decides the process exit
/// code; the CLI maps a drain to exit 75 ([`EXIT_INTERRUPTED`]).
///
/// Journal write failures *after* startup are not fatal: the daemon
/// enters degraded read-only mode and recovers in place once the
/// journal accepts writes again.
///
/// # Errors
///
/// [`ServeError::Journal`] when the queue journal cannot be opened or
/// recovered, [`ServeError::Bind`] when the address is taken,
/// [`ServeError::Runtime`] for listener/scheduler plumbing failures.
pub fn serve(config: ServeConfig) -> Result<(), ServeError> {
    // A daemon is always observable: structured stderr logging, a live
    // metrics registry (it serves /metrics), span recording (it serves
    // /tasks/<id>/trace). All idempotent, so embedding tests and the
    // CLI can have set these up already.
    p7_obs::log::init_from_env();
    p7_obs::metrics::global().set_enabled(true);
    telemetry::register_all();
    trace::enable();

    let (store, recovered) =
        TaskStore::open_with(&config.journal, config.fs.clone()).map_err(ServeError::Journal)?;
    telemetry::recovered_tasks().add(recovered as u64);

    // The flight recorder: an in-memory ring preloaded from the on-disk
    // log so /metrics/history spans the restart. An unusable log is
    // telemetry lost, not an error — the daemon runs memory-only.
    let recorder = Arc::new(Recorder::new(p7_obs::timeseries::DEFAULT_CAPACITY));
    let recorder_log =
        match RecorderLog::open_with(&config.journal.join(RECORDER_DIR), config.fs.clone()) {
            Ok((log, frames)) => {
                recorder.preload(frames.into_iter().map(|f| Frame {
                    t_ms: f.t_ms,
                    series: f.series,
                }));
                Some(log)
            }
            Err(e) => {
                log_warn!("serve", error = e;
                "flight-recorder log unavailable — metrics history will not survive restart");
                None
            }
        };
    let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
        addr: config.addr.clone(),
        reason: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Runtime(format!("cannot set listener non-blocking: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::Runtime(format!("cannot read bound address: {e}")))?;
    let _ = config.bound_addr.set(addr);
    // The startup line is the machine-readable handshake (CI and the
    // recovery tests parse the port out of it); flush so a piped stdout
    // delivers it before the first long engine pass.
    {
        let mut stdout = std::io::stdout();
        let _ = writeln!(stdout, "serve: listening on http://{addr}");
        let _ = stdout.flush();
    }
    log_info!("serve",
        queue = config.journal.display(),
        known = store.tasks().len(),
        recovered = recovered,
        history_frames = recorder.len();
        "task queue ready");

    let shared = Arc::new(Shared {
        queue: Mutex::new(store),
        wake: Condvar::new(),
        drain: config.drain.clone(),
        retry: config.retry,
        jobs: config.jobs,
        deadline: config.batch_deadline,
        health: Health {
            // True before the spawn below, so a fast client never sees
            // a flickering 503 between bind and thread start.
            scheduler_live: AtomicBool::new(true),
            degraded: Mutex::new(None),
        },
        trace_ns: fnv64(config.journal.to_string_lossy().as_bytes()),
        recorder,
        started: Instant::now(),
    });
    shared.refresh_depth();

    let sampler = {
        let shared = Arc::clone(&shared);
        let drain = config.drain.clone();
        let interval = config.sample_interval;
        std::thread::Builder::new()
            .name("ags-serve-sampler".to_owned())
            .spawn(move || sampler_loop(&shared, recorder_log, interval, &drain))
            .ok() // Thread exhaustion: run without history.
    };

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ags-serve-scheduler".to_owned())
            .spawn(move || scheduler_loop(&shared))
            .map_err(|e| ServeError::Runtime(format!("cannot spawn scheduler: {e}")))?
    };

    let active = Arc::new(AtomicUsize::new(0));
    while !config.drain.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                telemetry::http_requests().inc();
                if active.load(Ordering::Acquire) >= config.limits.max_connections {
                    shed(stream, &config.limits);
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                telemetry::connections()
                    .set(i64::try_from(active.load(Ordering::Acquire)).unwrap_or(i64::MAX));
                let shared = Arc::clone(&shared);
                let conn_count = Arc::clone(&active);
                let limits = config.limits.clone();
                let spawned = std::thread::Builder::new()
                    .name("ags-serve-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &shared, &limits);
                        let now = conn_count.fetch_sub(1, Ordering::AcqRel) - 1;
                        telemetry::connections().set(i64::try_from(now).unwrap_or(i64::MAX));
                    });
                if spawned.is_err() {
                    // Thread exhaustion: count the connection back out
                    // and shed it.
                    let now = active.fetch_sub(1, Ordering::AcqRel) - 1;
                    telemetry::connections().set(i64::try_from(now).unwrap_or(i64::MAX));
                    telemetry::sheds().inc();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }

    // Drain begun: stop accepting (the listener drops below), re-arm
    // the signal handlers so a second signal forces immediate exit,
    // and let the scheduler checkpoint whatever is in flight.
    drop(listener);
    if config.handle_signals {
        rearm_cancel_on_signals(&config.force);
        let force = config.force.clone();
        std::thread::Builder::new()
            .name("ags-serve-force".to_owned())
            .spawn(move || loop {
                if force.is_cancelled() {
                    log_warn!("serve", "second signal — forcing immediate shutdown");
                    std::process::exit(i32::from(EXIT_INTERRUPTED));
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .ok();
    }
    shared.wake.notify_all();
    let scheduler_ok = scheduler.join().is_ok();
    // The sampler watches the same drain token; joining it flushes its
    // buffered frames to the flight-recorder log.
    if let Some(handle) = sampler {
        let _ = handle.join();
    }
    if !scheduler_ok {
        return Err(ServeError::Runtime("scheduler thread panicked".to_owned()));
    }
    let grace_deadline = Instant::now() + CONNECTION_DRAIN_GRACE;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < grace_deadline {
        std::thread::sleep(ACCEPT_POLL);
    }
    let open = shared.lock_queue().open_tasks();
    log_info!("serve", open = open, queue = config.journal.display();
        "drained — open tasks checkpointed");
    Ok(())
}

/// The sampler thread: snapshot the registry into the history ring
/// every `interval`, persisting batches of frames to the recorder log.
/// Also the refresh point for gauges derived from queue state (the
/// oldest-open-task age), so every frame carries a fresh reading.
fn sampler_loop(
    shared: &Shared,
    mut log: Option<RecorderLog>,
    interval: Duration,
    drain: &CancelToken,
) {
    let mut pending: Vec<FrameRecord> = Vec::new();
    loop {
        let age_ms = shared.lock_queue().oldest_open_age_ms(now_ms());
        telemetry::queue_oldest_age().set(i64::try_from(age_ms / 1000).unwrap_or(i64::MAX));
        let frame = shared.recorder.sample(p7_obs::metrics::global(), wall_ms());
        pending.push(FrameRecord {
            t_ms: frame.t_ms,
            series: frame.series,
        });
        if pending.len() >= RECORDER_PERSIST_EVERY {
            persist_frames(&mut log, &mut pending);
        }
        let deadline = Instant::now() + interval;
        loop {
            if drain.is_cancelled() {
                persist_frames(&mut log, &mut pending);
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(SAMPLER_NAP));
        }
    }
}

/// One durable append of the sampler's buffered frames. Failure drops
/// the batch with a warning: the recorder log is advisory telemetry,
/// and the queue journal's own degraded-mode machinery handles real
/// disk outages.
fn persist_frames(log: &mut Option<RecorderLog>, pending: &mut Vec<FrameRecord>) {
    if pending.is_empty() {
        return;
    }
    if let Some(log) = log.as_mut() {
        if let Err(e) = log.append(pending) {
            log_warn!("serve", error = e, frames = pending.len();
                "flight-recorder append failed — dropping buffered frames");
        }
    }
    pending.clear();
}

/// Best-effort `503` for a connection over the cap.
fn shed(mut stream: TcpStream, limits: &HttpLimits) {
    telemetry::sheds().inc();
    let _ = stream.set_write_timeout(Some(limits.io_timeout));
    let _ = Response::error(503, "connection cap reached, retry later").write_to(&mut stream);
}

/// Parses one request off the connection, answers it, and records the
/// access log line plus the per-route latency observation.
fn handle_connection(stream: TcpStream, shared: &Shared, limits: &HttpLimits) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(limits.io_timeout));
    let _ = stream.set_write_timeout(Some(limits.io_timeout));
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let parsed = read_request(&mut reader, limits);
    let (response, method, target) = match &parsed {
        Ok(request) => (
            route(request, shared),
            request.method.as_str(),
            request.path.as_str(),
        ),
        Err(HttpError::BodyTooLarge) => (Response::error(413, "request body over limit"), "-", "-"),
        Err(HttpError::Malformed(what)) => (Response::error(400, what), "-", "-"),
        Err(HttpError::Io(_)) => return, // Peer vanished or timed out.
    };
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
    let elapsed = started.elapsed();
    telemetry::http_request_seconds(route_label(target)).observe(elapsed.as_secs_f64());
    log_info!("http",
        method = method,
        path = target,
        status = response.status,
        duration_us = elapsed.as_micros(),
        bytes = response.body.len();
        "request");
}

/// Collapses a request target onto one of the fixed
/// [`telemetry::ROUTES`] labels, so task ids do not explode the
/// request-latency histogram's cardinality.
fn route_label(target: &str) -> &'static str {
    let (path, _) = split_target(target);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["metrics", "history"] => "/metrics/history",
        ["tasks"] => "/tasks",
        ["tasks", _] => "/tasks/:id",
        ["tasks", _, "result"] => "/tasks/:id/result",
        ["tasks", _, "trace"] => "/tasks/:id/trace",
        ["tasks", _, "cancel"] => "/tasks/:id/cancel",
        _ => "other",
    }
}

/// Routes one parsed request.
fn route(request: &Request, shared: &Shared) -> Response {
    let (path, query) = split_target(&request.path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => health_response(shared),
        ("GET", ["metrics"]) => Response::text(200, p7_obs::metrics::global().render_prometheus()),
        ("GET", ["metrics", "history"]) => metrics_history(shared, query),
        ("POST", ["tasks"]) => submit(request, shared),
        ("GET", ["tasks"]) => list_tasks(shared),
        ("GET", ["tasks", id]) => with_task(shared, id, |task| {
            Response::json(200, task_value(task).to_json())
        }),
        ("GET", ["tasks", id, "result"]) => with_task(shared, id, |task| {
            if task.state == TaskState::Succeeded {
                Response::text(200, task.output.clone())
            } else {
                Response::error(
                    409,
                    &format!("task is {}, not succeeded", task.state.label()),
                )
            }
        }),
        ("GET", ["tasks", id, "trace"]) => task_trace(shared, id),
        ("POST", ["tasks", id, "cancel"]) => cancel_task(shared, id),
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Drains every completed span from the global trace ring into the
/// process-wide [`TraceStore`], grouped by trace id. Called after each
/// accept and each scheduler pass, and once more on trace reads, so a
/// `GET /tasks/<id>/trace` sees everything recorded so far.
fn absorb_completed_spans() {
    trace::flush();
    TraceStore::global().absorb(trace::collect());
}

/// `GET /tasks/<id>/trace`: the task's span tree as Chrome-trace JSON.
/// `404` for an unknown task, and for a known task with no recorded
/// spans (traces live in memory only and do not survive a restart).
fn task_trace(shared: &Shared, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "task id must be an integer");
    };
    if shared.lock_queue().get(id).is_none() {
        return Response::error(404, &format!("no task {id}"));
    }
    absorb_completed_spans();
    match TraceStore::global().events_for(shared.trace_ns ^ id) {
        Some(events) => Response::json(200, trace::render_chrome_trace(&events)),
        None => Response::error(
            404,
            &format!("no trace recorded for task {id} (traces do not survive a restart)"),
        ),
    }
}

/// `GET /metrics/history?family=&window_ms=&points=`: windowed,
/// downsampled series from the flight-recorder ring as
/// `{"now_ms":…,"series":[{"key":…,"points":[[t_ms,value],…]},…]}`.
fn metrics_history(shared: &Shared, query: &str) -> Response {
    let family = query_param(query, "family").filter(|f| !f.is_empty());
    let window_ms = match query_param(query, "window_ms").map(str::parse::<u64>) {
        None => 300_000,
        Some(Ok(v)) => v,
        Some(Err(_)) => return Response::error(400, "bad integer `window_ms`"),
    };
    let points = match query_param(query, "points").map(str::parse::<usize>) {
        None => 256,
        Some(Ok(v)) => v,
        Some(Err(_)) => return Response::error(400, "bad integer `points`"),
    };
    let now = wall_ms();
    let series = shared.recorder.history(family, window_ms, now, points);
    let body = Value::Map(vec![
        ("now_ms".to_owned(), Value::Int(i128::from(now))),
        ("window_ms".to_owned(), Value::Int(i128::from(window_ms))),
        (
            "dropped_frames".to_owned(),
            Value::Int(i128::from(shared.recorder.dropped())),
        ),
        (
            "series".to_owned(),
            Value::Seq(
                series
                    .into_iter()
                    .map(|s| {
                        Value::Map(vec![
                            ("key".to_owned(), Value::Str(s.key)),
                            (
                                "points".to_owned(),
                                Value::Seq(
                                    s.points
                                        .into_iter()
                                        .map(|(t, v)| {
                                            Value::Seq(vec![
                                                Value::Int(i128::from(t)),
                                                Value::Float(v),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// The `/healthz` JSON body: status, optional reason, and build
/// identity (crate version, `git describe` stamped at compile time,
/// uptime) so a probe can tell *which* daemon answered.
fn health_body(status: &str, reason: Option<String>, uptime_seconds: u64) -> String {
    let mut fields = vec![("status".to_owned(), Value::Str(status.to_owned()))];
    if let Some(reason) = reason {
        fields.push(("reason".to_owned(), Value::Str(reason)));
    }
    fields.push((
        "version".to_owned(),
        Value::Str(env!("CARGO_PKG_VERSION").to_owned()),
    ));
    fields.push((
        "git".to_owned(),
        Value::Str(env!("AGS_GIT_DESCRIBE").to_owned()),
    ));
    fields.push((
        "uptime_seconds".to_owned(),
        Value::Int(i128::from(uptime_seconds)),
    ));
    Value::Map(fields).to_json()
}

/// `GET /healthz`: `200` with `"status":"ok"` only when the scheduler
/// thread is live *and* the journal is accepting writes; otherwise
/// `503` with a JSON reason a probe can alert on. Either way the body
/// carries the build version, `git describe`, and uptime.
fn health_response(shared: &Shared) -> Response {
    let uptime = shared.started.elapsed().as_secs();
    if let Some(reason) = shared.degraded_reason() {
        return Response::json(503, health_body("degraded", Some(reason), uptime))
            .with_retry_after(RETRY_AFTER_SECS);
    }
    if !shared.health.scheduler_live.load(Ordering::Acquire) {
        return Response::json(
            503,
            health_body(
                "down",
                Some("scheduler thread is not running".to_owned()),
                uptime,
            ),
        );
    }
    Response::json(200, health_body("ok", None, uptime))
}

/// The uniform write-shed response while the journal is unwritable:
/// `503` with a `Retry-After` hint (the scheduler probes for recovery
/// every poll, so the outage can clear without a restart).
fn degraded_response(reason: &str) -> Response {
    Response::error(503, &format!("degraded read-only mode: {reason}"))
        .with_retry_after(RETRY_AFTER_SECS)
}

/// The status JSON of one task (without the result payload, which has
/// its own endpoint).
fn task_value(task: &Task) -> Value {
    Value::Map(vec![
        ("task".to_owned(), Value::Int(i128::from(task.id))),
        ("kind".to_owned(), Value::Str(task.kind.label().to_owned())),
        (
            "state".to_owned(),
            Value::Str(task.state.label().to_owned()),
        ),
        ("attempts".to_owned(), Value::Int(task.attempts as i128)),
        ("reason".to_owned(), Value::Str(task.reason.clone())),
    ])
}

/// Looks up `<id>` and applies `f`, with uniform 400/404 handling.
fn with_task(shared: &Shared, id: &str, f: impl FnOnce(&Task) -> Response) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "task id must be an integer");
    };
    let queue = shared.lock_queue();
    match queue.get(id) {
        Some(task) => f(task),
        None => Response::error(404, &format!("no task {id}")),
    }
}

/// `GET /tasks`: every task's status, in submit order.
fn list_tasks(shared: &Shared) -> Response {
    let queue = shared.lock_queue();
    let items: Vec<Value> = queue.tasks().iter().map(task_value).collect();
    Response::json(200, Value::Seq(items).to_json())
}

/// `POST /tasks/<id>/cancel`: only a task still waiting in `enqueued`
/// can be canceled; anything claimed by the scheduler (or already
/// terminal) conflicts. A cancel is a journal write, so it sheds while
/// degraded.
fn cancel_task(shared: &Shared, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "task id must be an integer");
    };
    if let Some(reason) = shared.degraded_reason() {
        return degraded_response(&reason);
    }
    let mut queue = shared.lock_queue();
    let Some(task) = queue.get(id) else {
        return Response::error(404, &format!("no task {id}"));
    };
    if task.state != TaskState::Enqueued {
        return Response::error(
            409,
            &format!("task is {}, cannot cancel", task.state.label()),
        );
    }
    let attempts = task.attempts;
    if let Err(e) = queue.transition(&[TaskUpdate::to_state(id, TaskState::Canceled, attempts)]) {
        drop(queue);
        let reason = format!("journal append failed: {e}");
        shared.enter_degraded(reason.clone());
        return degraded_response(&reason);
    }
    telemetry::tasks_canceled().inc();
    let canceled = queue.get(id).expect("task present").clone();
    drop(queue);
    shared.refresh_depth();
    Response::json(200, task_value(&canceled).to_json())
}

/// `POST /tasks`: validate, canonicalize, journal, acknowledge.
///
/// The body is `{"kind": "sweep" | "resilience" | "fleet", "spec":
/// {…}}`, or `{"kind": …, "smoke": true}` for the built-in CI-sized
/// campaign. Invalid submissions are refused with `400` and never
/// journaled; a `202` means the task is durable. A failed journal
/// append latches degraded mode and sheds with `503`.
fn submit(request: &Request, shared: &Shared) -> Response {
    if let Some(reason) = shared.degraded_reason() {
        return degraded_response(&reason);
    }
    let (kind, spec_json) = match canonicalize_submission(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => return Response::error(400, &message),
    };
    let mut queue = shared.lock_queue();
    // The trace is rooted here: peek the id the submit will assign
    // (we hold the queue lock, so it cannot move), derive the trace id
    // from it, and register the accept span as the tree's root so the
    // scheduler can parent its spans onto it from the other side of
    // the queue.
    let pending_id = queue.next_task_id();
    let trace_id = shared.trace_ns ^ pending_id;
    let mut accept = trace::span("task_accept", pending_id);
    accept.set_trace(trace_id);
    TraceStore::global().set_root(trace_id, accept.id());
    let submitted = {
        let _ctx = accept.push();
        let _journal_span = trace::span("task_journal", pending_id);
        queue.submit(kind, spec_json)
    };
    let id = match submitted {
        Ok(id) => id,
        Err(e) => {
            drop(queue);
            let reason = format!("journal append failed: {e}");
            shared.enter_degraded(reason.clone());
            return degraded_response(&reason);
        }
    };
    let task = queue.get(id).expect("just submitted").clone();
    drop(queue);
    drop(accept);
    absorb_completed_spans();
    telemetry::tasks_submitted().inc();
    shared.refresh_depth();
    shared.wake.notify_all();
    Response::json(202, task_value(&task).to_json())
}

/// Parses and validates a submission body into `(kind, canonical spec
/// JSON)`. Canonical means "the spec's own `to_json`", so equal specs
/// submitted with different field orderings batch together.
fn canonicalize_submission(body: &[u8]) -> Result<(TaskKind, String), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body must be UTF-8 JSON".to_owned())?;
    let value = Value::parse_json(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let kind_label = match value.field("kind") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err("missing or non-string `kind`".to_owned()),
    };
    let kind = TaskKind::parse(&kind_label)
        .ok_or_else(|| format!("unknown kind `{kind_label}` (expected sweep|resilience|fleet)"))?;
    let smoke = matches!(value.field("smoke"), Ok(Value::Bool(true)));
    let spec_value = match value.field("spec") {
        Ok(v) if !smoke => Some(v),
        _ if smoke => None,
        _ => return Err("missing `spec` (or pass \"smoke\": true)".to_owned()),
    };
    let catalog = Catalog::shared();
    let spec_json = match kind {
        TaskKind::Sweep => {
            let spec = match spec_value {
                Some(v) => SweepSpec::from_value(v).map_err(|e| format!("bad sweep spec: {e}"))?,
                None => SweepSpec::smoke_grid(),
            };
            spec.validate(catalog).map_err(|e| e.to_string())?;
            spec.to_json()
        }
        TaskKind::Resilience => {
            let spec = match spec_value {
                Some(v) => ResilienceSpec::from_value(v)
                    .map_err(|e| format!("bad resilience spec: {e}"))?,
                None => ResilienceSpec::smoke(),
            };
            spec.validate(catalog).map_err(|e| e.to_string())?;
            serde::json::to_string(&spec)
        }
        TaskKind::Fleet => {
            let spec = match spec_value {
                Some(v) => FleetSpec::from_value(v).map_err(|e| format!("bad fleet spec: {e}"))?,
                None => FleetSpec::smoke(),
            };
            spec.validate(catalog).map_err(|e| e.to_string())?;
            spec.to_json()
        }
    };
    Ok((kind, spec_json))
}

/// Whether an engine pass ran to completion or was interrupted by the
/// drain token (its tasks were re-enqueued as the checkpoint).
enum Pass {
    Completed,
    Interrupted,
}

/// What one scheduler pass decided about the loop.
enum Flow {
    /// Keep scheduling.
    Continue,
    /// The drain token fired; exit the loop.
    Drained,
}

/// The scheduler thread: claim → batch → run → record, until drained.
///
/// Journal errors do not kill the thread — they latch degraded mode
/// and the claim loop turns into a recovery probe until the journal
/// accepts writes again. The drop guard keeps `/healthz` honest even
/// if this thread panics.
fn scheduler_loop(shared: &Shared) {
    struct LiveGuard<'a>(&'a Shared);
    impl Drop for LiveGuard<'_> {
        fn drop(&mut self) {
            self.0.health.scheduler_live.store(false, Ordering::Release);
        }
    }
    let _live = LiveGuard(shared);
    let engine = SweepEngine::new(shared.jobs);
    loop {
        match scheduler_pass(shared, &engine) {
            Ok(Flow::Drained) => return,
            Ok(Flow::Continue) => {}
            Err(e) => shared.enter_degraded(format!("journal append failed: {e}")),
        }
    }
}

/// While degraded, each poll probes the journal directory; once a
/// probe write round-trips, tasks stranded mid-claim (`batched` or
/// `processing` with no pass running) are re-enqueued at their current
/// attempt count and the daemon leaves degraded mode.
fn recover_if_writable(shared: &Shared, queue: &mut TaskStore) {
    if queue.probe_writable().is_err() {
        return;
    }
    let stuck: Vec<TaskUpdate> = queue
        .tasks()
        .iter()
        .filter(|t| matches!(t.state, TaskState::Batched | TaskState::Processing))
        .map(|t| TaskUpdate::to_state(t.id, TaskState::Enqueued, t.attempts))
        .collect();
    if queue.transition(&stuck).is_ok() {
        shared.clear_degraded();
    }
}

/// One claim → batch → run → record pass of the scheduler.
fn scheduler_pass(shared: &Shared, engine: &SweepEngine) -> Result<Flow, SimError> {
    let claimed: Vec<Task> = {
        let mut queue = shared.lock_queue();
        loop {
            if shared.drain.is_cancelled() {
                return Ok(Flow::Drained);
            }
            if shared.is_degraded() {
                recover_if_writable(shared, &mut queue);
            } else {
                // A journaled backoff deadline gates readiness, so a
                // restarted daemon keeps waiting instead of retrying hot.
                let now = now_ms();
                let ready: Vec<Task> = queue
                    .tasks()
                    .iter()
                    .filter(|t| t.state == TaskState::Enqueued)
                    .filter(|t| t.retry_at_ms == 0 || t.retry_at_ms <= now)
                    .cloned()
                    .collect();
                if !ready.is_empty() {
                    let updates: Vec<TaskUpdate> = ready
                        .iter()
                        .map(|t| TaskUpdate::to_state(t.id, TaskState::Batched, t.attempts))
                        .collect();
                    queue.transition(&updates)?;
                    break ready;
                }
            }
            let (guard, _timeout) = shared
                .wake
                .wait_timeout(queue, SCHEDULER_POLL)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue = guard;
        }
    };

    let mut sweeps: Vec<QueuedSweep> = Vec::new();
    let mut singles: Vec<Task> = Vec::new();
    let mut parse_failures: Vec<TaskUpdate> = Vec::new();
    for task in claimed {
        match task.kind {
            TaskKind::Sweep => match SweepSpec::from_json(&task.spec_json) {
                Ok(spec) => sweeps.push(QueuedSweep {
                    task: task.id,
                    spec,
                }),
                // Specs are validated at submit; a parse failure
                // here means journal-era skew — quarantine it.
                Err(e) => parse_failures.push(TaskUpdate {
                    id: task.id,
                    state: TaskState::Failed,
                    attempts: task.attempts + 1,
                    reason: format!("stored spec no longer parses: {e}"),
                    output: String::new(),
                    retry_at_ms: 0,
                }),
            },
            TaskKind::Resilience | TaskKind::Fleet => singles.push(task),
        }
    }
    if !parse_failures.is_empty() {
        for _ in &parse_failures {
            telemetry::tasks_failed().inc();
        }
        shared.lock_queue().transition(&parse_failures)?;
    }

    let mut interrupted = false;
    let batches = build_batches(&sweeps);
    let mut pending: Vec<SweepBatch> = Vec::new();
    for batch in batches {
        if interrupted || shared.drain.is_cancelled() {
            pending.push(batch);
            continue;
        }
        match run_sweep_batch(shared, engine, &batch)? {
            Pass::Completed => {}
            Pass::Interrupted => interrupted = true,
        }
    }
    let mut pending_singles: Vec<Task> = Vec::new();
    for task in singles {
        if interrupted || shared.drain.is_cancelled() {
            pending_singles.push(task);
            continue;
        }
        match run_single(shared, &task)? {
            Pass::Completed => {}
            Pass::Interrupted => interrupted = true,
        }
    }
    // Checkpoint claimed-but-unrun work back to `enqueued` so a
    // restart (or this drain's own exit message) sees it waiting.
    let requeue: Vec<TaskUpdate> = pending
        .iter()
        .flat_map(|b| b.members.iter())
        .map(|m| m.task)
        .chain(pending_singles.iter().map(|t| t.id))
        .map(|id| {
            let queue = shared.lock_queue();
            let attempts = queue.get(id).map_or(0, |t| t.attempts);
            TaskUpdate::to_state(id, TaskState::Enqueued, attempts)
        })
        .collect();
    if !requeue.is_empty() {
        shared.lock_queue().transition(&requeue)?;
    }
    shared.refresh_depth();
    // Everything this pass recorded (scheduler spans plus the engine
    // workers' flushed spans) becomes retrievable per task.
    absorb_completed_spans();
    if shared.drain.is_cancelled() {
        return Ok(Flow::Drained);
    }
    Ok(Flow::Continue)
}

/// A per-batch deadline enforcer: a sidecar thread that cancels the
/// engine pass when the deadline (or the daemon's drain) fires.
/// [`Watchdog::disarm`] joins the sidecar before reporting expiry, so
/// a disarmed watchdog can never cancel a later pass.
struct Watchdog {
    expired: Arc<AtomicBool>,
    disarm: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Watchdog {
    /// Stops the sidecar and reports whether the deadline fired.
    fn disarm(self) -> bool {
        self.disarm.store(true, Ordering::Release);
        let _ = self.handle.join();
        self.expired.load(Ordering::Acquire)
    }
}

/// The cancel token an engine pass should honor: the drain token
/// directly when no deadline is configured, else a child token the
/// watchdog cancels on drain *or* deadline expiry.
fn arm_watchdog(shared: &Shared) -> (CancelToken, Option<Watchdog>) {
    let Some(deadline) = shared.deadline else {
        return (shared.drain.clone(), None);
    };
    let token = CancelToken::new();
    let expired = Arc::new(AtomicBool::new(false));
    let disarm = Arc::new(AtomicBool::new(false));
    let sidecar = {
        let token = token.clone();
        let drain = shared.drain.clone();
        let expired = Arc::clone(&expired);
        let disarm = Arc::clone(&disarm);
        std::thread::Builder::new()
            .name("ags-serve-watchdog".to_owned())
            .spawn(move || {
                let start = Instant::now();
                loop {
                    if disarm.load(Ordering::Acquire) {
                        return;
                    }
                    if drain.is_cancelled() {
                        token.cancel();
                        return;
                    }
                    if start.elapsed() >= deadline {
                        expired.store(true, Ordering::Release);
                        token.cancel();
                        return;
                    }
                    std::thread::sleep(WATCHDOG_POLL);
                }
            })
    };
    match sidecar {
        Ok(handle) => (
            token,
            Some(Watchdog {
                expired,
                disarm,
                handle,
            }),
        ),
        // Thread exhaustion: run undeadlined rather than not at all.
        Err(_) => (shared.drain.clone(), None),
    }
}

/// Durably fails every member of a batch the watchdog expired. Stuck
/// tasks quarantine instead of retrying: a pass that blows the
/// deadline would blow it again.
fn quarantine_stuck(shared: &Shared, ids: impl Iterator<Item = u64>) -> Result<(), SimError> {
    let deadline = shared.deadline.unwrap_or_default();
    let updates: Vec<TaskUpdate> = {
        let queue = shared.lock_queue();
        ids.map(|id| {
            telemetry::tasks_failed().inc();
            telemetry::tasks_stuck().inc();
            TaskUpdate {
                id,
                state: TaskState::Failed,
                attempts: queue.get(id).map_or(0, |t| t.attempts) + 1,
                reason: format!(
                    "stuck: batch exceeded the {}ms deadline and was canceled",
                    deadline.as_millis()
                ),
                output: String::new(),
                retry_at_ms: 0,
            }
        })
        .collect()
    };
    shared.lock_queue().transition(&updates)?;
    shared.refresh_depth();
    Ok(())
}

/// A scheduler-side span for `task`, stamped with the task's trace id
/// and parented onto its accept root (when the root is still known —
/// a task recovered from the journal after a restart has no root, and
/// its spans then open a fresh tree under the same trace id).
fn task_span(shared: &Shared, name: &'static str, task: u64) -> trace::Span {
    let trace_id = shared.trace_ns ^ task;
    let mut span = trace::span(name, task);
    span.set_trace(trace_id);
    if let Some(root) = TraceStore::global().root_of(trace_id) {
        span.set_parent(root);
    }
    span
}

/// Runs one merged sweep batch and records every member's outcome.
fn run_sweep_batch(
    shared: &Shared,
    engine: &SweepEngine,
    batch: &SweepBatch,
) -> Result<Pass, SimError> {
    {
        // Batch formation, recorded into every member's trace (the
        // stage is shared; each task still sees it under its own root).
        let _batch_spans: Vec<trace::Span> = batch
            .members
            .iter()
            .map(|m| task_span(shared, "task_batch", m.task))
            .collect();
        let processing: Vec<TaskUpdate> = {
            let queue = shared.lock_queue();
            batch
                .members
                .iter()
                .map(|m| {
                    let attempts = queue.get(m.task).map_or(0, |t| t.attempts);
                    TaskUpdate::to_state(m.task, TaskState::Processing, attempts)
                })
                .collect()
        };
        shared.lock_queue().transition(&processing)?;
    }
    telemetry::batches().inc();
    #[allow(clippy::cast_precision_loss)]
    telemetry::batch_width().observe(batch.members.len() as f64);

    let (cancel, watchdog) = arm_watchdog(shared);
    let options = SweepRunOptions {
        durable: DurableOptions {
            cancel,
            retry: shared.retry,
            ..DurableOptions::default()
        },
        panic_injector: None,
    };
    let ran = {
        // One solve span per member covers the shared engine pass; the
        // engine's own spans (sweep points, solves, journal segments)
        // nest under the first member's, pushed as the thread context
        // the engine workers inherit.
        let solve_spans: Vec<trace::Span> = batch
            .members
            .iter()
            .map(|m| task_span(shared, "task_solve", m.task))
            .collect();
        let _engine_ctx = solve_spans.first().map(trace::Span::push);
        engine.run_durable(&batch.merged, &options)
    };
    let expired = watchdog.is_some_and(Watchdog::disarm);
    match ran {
        Ok(report) => {
            let splits = split_report(batch, &report);
            let mut updates = Vec::new();
            {
                let queue = shared.lock_queue();
                for split in splits {
                    let _render_span = task_span(shared, "task_render", split.task);
                    let attempts = queue.get(split.task).map_or(0, |t| t.attempts) + 1;
                    let output = render_results_table(&split.results)
                        + &render_failed(&split.failed, "grid points");
                    updates.push(terminal_update(
                        split.task,
                        attempts,
                        output,
                        &split.failed,
                        None,
                        shared.retry,
                    ));
                }
            }
            shared.lock_queue().transition(&updates)?;
            shared.refresh_depth();
            Ok(Pass::Completed)
        }
        Err(SimError::Interrupted { .. }) => {
            if expired && !shared.drain.is_cancelled() {
                quarantine_stuck(shared, batch.members.iter().map(|m| m.task))?;
                Ok(Pass::Completed)
            } else {
                requeue_tasks(shared, batch.members.iter().map(|m| m.task))?;
                Ok(Pass::Interrupted)
            }
        }
        Err(e) => {
            // A hard engine error is deterministic (bad config); retry
            // cannot help, so every member quarantines with the reason.
            let updates: Vec<TaskUpdate> = {
                let queue = shared.lock_queue();
                batch
                    .members
                    .iter()
                    .map(|m| {
                        telemetry::tasks_failed().inc();
                        TaskUpdate {
                            id: m.task,
                            state: TaskState::Failed,
                            attempts: queue.get(m.task).map_or(0, |t| t.attempts) + 1,
                            reason: e.to_string(),
                            output: String::new(),
                            retry_at_ms: 0,
                        }
                    })
                    .collect()
            };
            shared.lock_queue().transition(&updates)?;
            shared.refresh_depth();
            Ok(Pass::Completed)
        }
    }
}

/// Runs one resilience/fleet task and records its outcome.
fn run_single(shared: &Shared, task: &Task) -> Result<Pass, SimError> {
    let attempts_before = shared
        .lock_queue()
        .get(task.id)
        .map_or(task.attempts, |t| t.attempts);
    {
        let _batch_span = task_span(shared, "task_batch", task.id);
        shared.lock_queue().transition(&[TaskUpdate::to_state(
            task.id,
            TaskState::Processing,
            attempts_before,
        )])?;
    }
    telemetry::batches().inc();
    telemetry::batch_width().observe(1.0);

    let (cancel, watchdog) = arm_watchdog(shared);
    let durable = DurableOptions {
        cancel,
        retry: shared.retry,
        ..DurableOptions::default()
    };
    let solve_span = task_span(shared, "task_solve", task.id);
    let engine_ctx = solve_span.push();
    let ran: Result<(String, Vec<FailedPoint>, Option<String>), SimError> = match task.kind {
        TaskKind::Resilience => serde::json::from_str::<ResilienceSpec>(&task.spec_json)
            .map_err(|e| SimError::Journal {
                reason: format!("stored resilience spec no longer parses: {e}"),
            })
            .and_then(|spec| {
                let report = spec.run_durable(shared.jobs, &durable)?;
                let output = report.table()
                    + &render_failed(&report.failed_cells, "cells")
                    + &report.summary_line();
                let unsafe_reason =
                    (!report.all_safe() && report.failed_cells.is_empty()).then(|| {
                        "campaign unsafe: a supervised cell violated the margin or breached \
                         the floor"
                            .to_owned()
                    });
                Ok((output, report.failed_cells, unsafe_reason))
            }),
        TaskKind::Fleet => FleetSpec::from_json(&task.spec_json).and_then(|spec| {
            let report = FleetEngine::new(shared.jobs).run_durable(
                &spec,
                &FleetRunOptions {
                    durable: durable.clone(),
                    panic_injector: None,
                },
            )?;
            let output = report.table() + &render_failed(&report.failed_shards, "shards");
            Ok((output, report.failed_shards, None))
        }),
        TaskKind::Sweep => unreachable!("sweeps go through run_sweep_batch"),
    };
    drop(engine_ctx);
    drop(solve_span);
    let expired = watchdog.is_some_and(Watchdog::disarm);

    match ran {
        Ok((output, failed, unsafe_reason)) => {
            let _render_span = task_span(shared, "task_render", task.id);
            let attempts = attempts_before + 1;
            let update = terminal_update(
                task.id,
                attempts,
                output,
                &failed,
                unsafe_reason,
                shared.retry,
            );
            shared.lock_queue().transition(&[update])?;
            shared.refresh_depth();
            Ok(Pass::Completed)
        }
        Err(SimError::Interrupted { .. }) => {
            if expired && !shared.drain.is_cancelled() {
                quarantine_stuck(shared, std::iter::once(task.id))?;
                Ok(Pass::Completed)
            } else {
                requeue_tasks(shared, std::iter::once(task.id))?;
                Ok(Pass::Interrupted)
            }
        }
        Err(e) => {
            telemetry::tasks_failed().inc();
            shared.lock_queue().transition(&[TaskUpdate {
                id: task.id,
                state: TaskState::Failed,
                attempts: attempts_before + 1,
                reason: e.to_string(),
                output: String::new(),
                retry_at_ms: 0,
            }])?;
            shared.refresh_depth();
            Ok(Pass::Completed)
        }
    }
}

/// Decides a completed pass's terminal (or retry) update for one task:
/// clean → `succeeded` with the rendered output; quarantined points (or
/// an unsafe verdict) → retry with exponential backoff while attempts
/// remain, else `failed` carrying the first quarantine reason and the
/// partial output. The backoff deadline rides in the update and is
/// journaled, so a restart resumes the wait instead of retrying hot.
fn terminal_update(
    id: u64,
    attempts: usize,
    output: String,
    failed: &[FailedPoint],
    unsafe_reason: Option<String>,
    retry: RetryPolicy,
) -> TaskUpdate {
    if failed.is_empty() && unsafe_reason.is_none() {
        telemetry::tasks_succeeded().inc();
        return TaskUpdate {
            id,
            state: TaskState::Succeeded,
            attempts,
            reason: String::new(),
            output,
            retry_at_ms: 0,
        };
    }
    let reason = unsafe_reason.unwrap_or_else(|| {
        let first = &failed[0];
        format!(
            "{} point(s) quarantined; first: {}",
            failed.len(),
            first.reason
        )
    });
    if attempts < retry.max_attempts.max(1) {
        telemetry::task_retries().inc();
        let backoff = retry.backoff_before(attempts);
        return TaskUpdate {
            id,
            state: TaskState::Enqueued,
            attempts,
            reason,
            output: String::new(),
            retry_at_ms: now_ms()
                .saturating_add(u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX)),
        };
    }
    telemetry::tasks_failed().inc();
    TaskUpdate {
        id,
        state: TaskState::Failed,
        attempts,
        reason,
        output,
        retry_at_ms: 0,
    }
}

/// Durably re-enqueues tasks at their current attempt count — the
/// drain-time checkpoint of an interrupted batch.
fn requeue_tasks(shared: &Shared, ids: impl Iterator<Item = u64>) -> Result<(), SimError> {
    let updates: Vec<TaskUpdate> = {
        let queue = shared.lock_queue();
        ids.map(|id| {
            let attempts = queue.get(id).map_or(0, |t| t.attempts);
            TaskUpdate::to_state(id, TaskState::Enqueued, attempts)
        })
        .collect()
    };
    shared.lock_queue().transition(&updates)?;
    shared.refresh_depth();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_control::GuardbandMode;
    use p7_sim::vfs::FaultyFs;
    use std::io::Read as _;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ags-serve-daemon-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new(vec!["lu_cb".to_owned()], vec![1, 2])
            .with_modes(vec![GuardbandMode::StaticGuardband])
            .with_seed(42)
            .with_ticks(4, 2)
    }

    /// One raw round-trip against a live daemon; returns the full
    /// response text (status line, headers and body) so tests can
    /// assert on headers.
    fn http_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("recv");
        raw
    }

    /// One round-trip against a live daemon; returns (status, body).
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = http_raw(addr, method, path, body);
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map_or(String::new(), |(_, b)| b.to_owned());
        (status, body)
    }

    /// Spawns a daemon on a free port with `tweak` applied to its
    /// config; returns its address, drain token, and join handle.
    fn start_with(
        journal: &Path,
        tweak: impl FnOnce(&mut ServeConfig),
    ) -> (
        SocketAddr,
        CancelToken,
        std::thread::JoinHandle<Result<(), ServeError>>,
    ) {
        let mut config = ServeConfig::new("127.0.0.1:0", journal);
        config.handle_signals = false;
        config.jobs = 2;
        // Sample fast so history assertions never wait on the clock.
        config.sample_interval = Duration::from_millis(25);
        tweak(&mut config);
        let drain = config.drain.clone();
        let bound = Arc::clone(&config.bound_addr);
        let handle = std::thread::spawn(move || serve(config));
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Some(addr) = bound.get() {
                break *addr;
            }
            assert!(Instant::now() < deadline, "daemon never bound");
            std::thread::sleep(Duration::from_millis(10));
        };
        (addr, drain, handle)
    }

    /// Spawns a daemon with the default test config.
    fn start(
        journal: &Path,
    ) -> (
        SocketAddr,
        CancelToken,
        std::thread::JoinHandle<Result<(), ServeError>>,
    ) {
        start_with(journal, |_| {})
    }

    fn wait_for_state(addr: SocketAddr, id: u64, want: &str) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = http(addr, "GET", &format!("/tasks/{id}"), "");
            assert_eq!(status, 200, "status body: {body}");
            if body.contains(&format!("\"state\":\"{want}\"")) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "task {id} never reached {want}: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn daemon_end_to_end_with_restart() {
        p7_obs::metrics::global().set_enabled(true);
        telemetry::register_all();
        let dir = tmpdir("e2e");
        let spec = tiny_spec();
        let expected = SweepEngine::new(2)
            .run(&spec)
            .expect("standalone run")
            .render_table();

        let (addr, drain, handle) = start(&dir);
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"version\":"), "{body}");
        assert!(body.contains("\"git\":"), "{body}");
        assert!(body.contains("\"uptime_seconds\":"), "{body}");
        assert_eq!(http(addr, "GET", "/nope", "").0, 404);
        assert_eq!(http(addr, "DELETE", "/healthz", "").0, 405);
        assert_eq!(http(addr, "POST", "/tasks", "not json").0, 400);
        assert_eq!(
            http(addr, "POST", "/tasks", "{\"kind\":\"warp\",\"smoke\":true}").0,
            400
        );
        assert_eq!(http(addr, "POST", "/tasks", "{\"kind\":\"sweep\"}").0, 400);

        let submission = format!("{{\"kind\":\"sweep\",\"spec\":{}}}", spec.to_json());
        let (status, body) = http(addr, "POST", "/tasks", &submission);
        assert_eq!(status, 202, "submit body: {body}");
        assert!(body.contains("\"task\":1"), "{body}");
        assert!(body.contains("\"state\":\"enqueued\""), "{body}");

        wait_for_state(addr, 1, "succeeded");
        let (status, result) = http(addr, "GET", "/tasks/1/result", "");
        assert_eq!(status, 200);
        assert_eq!(result, expected, "daemon result must match standalone run");
        // The task's trace covers every stage, accept through render.
        let (status, chrome) = http(addr, "GET", "/tasks/1/trace", "");
        assert_eq!(status, 200, "{chrome}");
        for stage in [
            "task_accept",
            "task_journal",
            "task_batch",
            "task_solve",
            "task_render",
        ] {
            assert!(chrome.contains(stage), "missing {stage}: {chrome}");
        }
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
        assert!(chrome.contains("\"trace\":\""), "{chrome}");
        assert_eq!(http(addr, "GET", "/tasks/99/trace", "").0, 404);
        assert_eq!(http(addr, "GET", "/tasks/banana/trace", "").0, 400);
        // The flight recorder has been sampling: history is non-empty
        // for the queue-depth gauge and the batch-width histogram.
        let (status, history) = http(
            addr,
            "GET",
            "/metrics/history?family=ags_serve_queue_depth",
            "",
        );
        assert_eq!(status, 200, "{history}");
        assert!(
            history.contains("\"key\":\"ags_serve_queue_depth\""),
            "{history}"
        );
        assert!(history.contains("\"points\":[["), "{history}");
        let (status, history) = http(
            addr,
            "GET",
            "/metrics/history?family=ags_serve_batch_width&window_ms=600000&points=8",
            "",
        );
        assert_eq!(status, 200, "{history}");
        assert!(
            history.contains("\"key\":\"ags_serve_batch_width_count\""),
            "{history}"
        );
        assert_eq!(
            http(addr, "GET", "/metrics/history?window_ms=banana", "").0,
            400
        );
        // Terminal tasks cannot be canceled.
        assert_eq!(http(addr, "POST", "/tasks/1/cancel", "").0, 409);
        let (status, listing) = http(addr, "GET", "/tasks", "");
        assert_eq!(status, 200);
        assert!(listing.contains("\"task\":1"), "{listing}");
        let (status, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics.contains("ags_serve_queue_depth"), "{metrics}");
        // Value unasserted: other tests in this process may hold the
        // global gauge at 1 while this one runs.
        assert!(metrics.contains("ags_serve_degraded"), "{metrics}");
        assert!(
            metrics.contains("ags_serve_queue_oldest_age_seconds"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ags_serve_http_request_seconds_bucket{route=\"/tasks\""),
            "{metrics}"
        );

        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");

        // A restarted daemon recovers the journal: task 1's result is
        // still there, byte-identical, and new ids continue after it.
        let (addr, drain, handle) = start(&dir);
        let (status, result) = http(addr, "GET", "/tasks/1/result", "");
        assert_eq!(status, 200);
        assert_eq!(result, expected, "recovered result must be byte-identical");
        let (status, body) = http(addr, "POST", "/tasks", &submission);
        assert_eq!(status, 202);
        assert!(body.contains("\"task\":2"), "{body}");
        wait_for_state(addr, 2, "succeeded");
        let (_, second) = http(addr, "GET", "/tasks/2/result", "");
        assert_eq!(second, expected, "resubmission must reproduce the result");
        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");
    }

    #[test]
    fn degraded_mode_sheds_writes_and_recovers_in_place() {
        p7_obs::metrics::global().set_enabled(true);
        telemetry::register_all();
        let dir = tmpdir("degraded");
        let faulty = FaultyFs::new(7, vec![]);
        let fs: DynFs = faulty.clone();
        let (addr, drain, handle) = start_with(&dir, |c| c.fs = fs);
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // Yank the disk: the next journal append fails, the daemon
        // latches degraded mode and sheds the write with a retry hint.
        faulty.set_sticky_write_failures(true);
        let raw = http_raw(
            addr,
            "POST",
            "/tasks",
            "{\"kind\":\"sweep\",\"smoke\":true}",
        );
        assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
        assert!(raw.contains("\r\nRetry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("journal append failed"), "{raw}");
        // Degraded is latched: healthz reports it with the reason,
        // reads keep working, and writes shed without touching disk.
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert_eq!(http(addr, "GET", "/tasks", "").0, 200);
        let (status, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        // Value unasserted: other tests share the global gauge.
        assert!(metrics.contains("ags_serve_degraded"), "{metrics}");
        assert_eq!(
            http(
                addr,
                "POST",
                "/tasks",
                "{\"kind\":\"sweep\",\"smoke\":true}"
            )
            .0,
            503
        );

        // Heal the disk: the scheduler's probe clears degraded mode
        // and full service resumes without a restart.
        faulty.set_sticky_write_failures(false);
        let deadline = Instant::now() + Duration::from_secs(10);
        while http(addr, "GET", "/healthz", "").0 != 200 {
            assert!(Instant::now() < deadline, "degraded mode never cleared");
            std::thread::sleep(Duration::from_millis(20));
        }
        let submission = format!("{{\"kind\":\"sweep\",\"spec\":{}}}", tiny_spec().to_json());
        let (status, body) = http(addr, "POST", "/tasks", &submission);
        assert_eq!(status, 202, "{body}");
        assert!(
            body.contains("\"task\":1"),
            "failed submit must not burn an id: {body}"
        );
        wait_for_state(addr, 1, "succeeded");
        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");
    }

    #[test]
    fn watchdog_quarantines_stuck_batches() {
        let dir = tmpdir("watchdog");
        // A zero deadline expires before any engine pass can finish,
        // so every batch is deterministically "stuck" (the engine
        // reports Interrupted whenever the token fired mid-run).
        let (addr, drain, handle) = start_with(&dir, |c| {
            c.batch_deadline = Some(Duration::ZERO);
        });
        let spec = SweepSpec::new(vec!["lu_cb".to_owned()], vec![1, 2])
            .with_modes(vec![GuardbandMode::StaticGuardband])
            .with_seed(42)
            .with_ticks(400, 100);
        let submission = format!("{{\"kind\":\"sweep\",\"spec\":{}}}", spec.to_json());
        let (status, body) = http(addr, "POST", "/tasks", &submission);
        assert_eq!(status, 202, "{body}");
        wait_for_state(addr, 1, "failed");
        let (_, body) = http(addr, "GET", "/tasks/1", "");
        assert!(
            body.contains("stuck: batch exceeded the 0ms deadline"),
            "{body}"
        );
        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");
    }

    #[test]
    fn retry_backoff_rides_in_the_terminal_update() {
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_ms: 60_000,
        };
        let failed = vec![FailedPoint {
            index: 0,
            attempts: 1,
            reason: "injected".to_owned(),
        }];
        // Attempts remain: re-enqueued with a journaled future deadline.
        let update = terminal_update(7, 1, String::new(), &failed, None, retry);
        assert_eq!(update.state, TaskState::Enqueued);
        assert!(
            update.retry_at_ms >= now_ms() + 30_000,
            "backoff deadline must be far in the future: {}",
            update.retry_at_ms
        );
        // Budget exhausted: quarantined with no deadline.
        let update = terminal_update(7, 3, String::new(), &failed, None, retry);
        assert_eq!(update.state, TaskState::Failed);
        assert_eq!(update.retry_at_ms, 0);
        // Clean pass: succeeded with no deadline.
        let update = terminal_update(7, 1, "out".to_owned(), &[], None, retry);
        assert_eq!(update.state, TaskState::Succeeded);
        assert_eq!(update.retry_at_ms, 0);
    }

    #[test]
    fn route_labels_normalize_ids_and_queries() {
        assert_eq!(route_label("/healthz"), "/healthz");
        assert_eq!(route_label("/metrics"), "/metrics");
        assert_eq!(route_label("/metrics/history?family=x"), "/metrics/history");
        assert_eq!(route_label("/tasks"), "/tasks");
        assert_eq!(route_label("/tasks/123"), "/tasks/:id");
        assert_eq!(route_label("/tasks/123/result"), "/tasks/:id/result");
        assert_eq!(route_label("/tasks/9/trace"), "/tasks/:id/trace");
        assert_eq!(route_label("/tasks/9/cancel"), "/tasks/:id/cancel");
        assert_eq!(route_label("/nope"), "other");
        assert_eq!(route_label("-"), "other");
    }

    /// The on-disk flight-recorder log makes `/metrics/history` span a
    /// restart: frames sampled by the first daemon are served by the
    /// second. (Torn-tail/SIGKILL truncation of the log itself is
    /// exercised in `p7_sim::recorder`; this proves the daemon wiring
    /// recovers whatever the log yields.)
    #[test]
    fn metrics_history_survives_restart_via_recorder_log() {
        p7_obs::metrics::global().set_enabled(true);
        telemetry::register_all();
        let dir = tmpdir("flightrec");

        let (_addr, drain, handle) = start(&dir);
        // Wait until at least one persisted batch is on disk (the log
        // writes every RECORDER_PERSIST_EVERY frames, 25 ms apart).
        let flightrec = dir.join(RECORDER_DIR);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let segments = std::fs::read_dir(&flightrec)
                .map(|entries| {
                    entries
                        .filter_map(Result::ok)
                        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
                        .count()
                })
                .unwrap_or(0);
            if segments >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "recorder log never persisted");
            std::thread::sleep(Duration::from_millis(20));
        }
        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");
        let cutoff = now_ms();

        // The restarted daemon preloads the ring from disk: history
        // contains frames sampled *before* the restart.
        let (addr, drain, handle) = start(&dir);
        let (status, history) = http(
            addr,
            "GET",
            "/metrics/history?family=ags_serve_queue_depth&window_ms=600000",
            "",
        );
        assert_eq!(status, 200, "{history}");
        let parsed = Value::parse_json(&history).expect("history JSON");
        let series = parsed.field("series").expect("series").as_seq().unwrap();
        let preloaded = series.iter().any(|s| {
            s.field("points")
                .ok()
                .and_then(|p| p.as_seq().ok())
                .is_some_and(|points| {
                    points.iter().any(|pt| {
                        pt.as_seq()
                            .ok()
                            .and_then(|pair| pair.first().cloned())
                            .is_some_and(|t| t.as_int().is_ok_and(|t| (t as u64) < cutoff))
                    })
                })
        });
        assert!(
            preloaded,
            "no pre-restart frame in recovered history: {history}"
        );
        drain.cancel();
        handle.join().expect("serve thread").expect("clean drain");
    }

    #[test]
    fn cancel_and_error_semantics_via_routes() {
        // Routing semantics without a live scheduler: build the shared
        // state directly so no task ever leaves `enqueued`.
        let dir = tmpdir("routes");
        let (store, recovered) = TaskStore::open(&dir).expect("open store");
        assert_eq!(recovered, 0);
        let shared = Shared {
            queue: Mutex::new(store),
            wake: Condvar::new(),
            drain: CancelToken::new(),
            retry: RetryPolicy::no_retry(),
            jobs: 1,
            deadline: None,
            health: Health {
                scheduler_live: AtomicBool::new(true),
                degraded: Mutex::new(None),
            },
            trace_ns: fnv64(dir.to_string_lossy().as_bytes()),
            recorder: Arc::new(Recorder::new(16)),
            started: Instant::now(),
        };
        let post = |path: &str, body: &str| {
            route(
                &Request {
                    method: "POST".to_owned(),
                    path: path.to_owned(),
                    body: body.as_bytes().to_vec(),
                },
                &shared,
            )
        };
        let get = |path: &str| {
            route(
                &Request {
                    method: "GET".to_owned(),
                    path: path.to_owned(),
                    body: Vec::new(),
                },
                &shared,
            )
        };

        // Healthz is green while "live" and not degraded …
        assert_eq!(get("/healthz").status, 200);
        // … names the journal failure while degraded (writes shed) …
        shared.enter_degraded("journal append failed: disk gone".to_owned());
        let unhealthy = get("/healthz");
        assert_eq!(unhealthy.status, 503);
        let body = String::from_utf8(unhealthy.body).unwrap();
        assert!(body.contains("disk gone"), "{body}");
        assert_eq!(unhealthy.retry_after, Some(1));
        assert_eq!(
            post("/tasks", "{\"kind\":\"sweep\",\"smoke\":true}").status,
            503
        );
        shared.clear_degraded();
        // … and reports a dead scheduler once the liveness flag drops.
        shared.health.scheduler_live.store(false, Ordering::Release);
        let down = get("/healthz");
        assert_eq!(down.status, 503);
        let body = String::from_utf8(down.body).unwrap();
        assert!(body.contains("scheduler"), "{body}");
        shared.health.scheduler_live.store(true, Ordering::Release);

        // Smoke submissions for all three kinds need no spec.
        assert_eq!(
            post("/tasks", "{\"kind\":\"sweep\",\"smoke\":true}").status,
            202
        );
        assert_eq!(
            post("/tasks", "{\"kind\":\"resilience\",\"smoke\":true}").status,
            202
        );
        assert_eq!(
            post("/tasks", "{\"kind\":\"fleet\",\"smoke\":true}").status,
            202
        );
        // A spec that fails validation is refused and never journaled.
        let bogus = SweepSpec::new(vec!["no_such_workload".to_owned()], vec![1]);
        let refused = post(
            "/tasks",
            &format!("{{\"kind\":\"sweep\",\"spec\":{}}}", bogus.to_json()),
        );
        assert_eq!(refused.status, 400);

        // Cancel an enqueued task: 200 and durably canceled.
        assert_eq!(post("/tasks/1/cancel", "").status, 200);
        let body = String::from_utf8(get("/tasks/1").body).unwrap();
        assert!(body.contains("\"state\":\"canceled\""), "{body}");
        // Cancel of a canceled task conflicts; result unavailable.
        assert_eq!(post("/tasks/1/cancel", "").status, 409);
        assert_eq!(get("/tasks/1/result").status, 409);
        // Unknown and malformed ids.
        assert_eq!(get("/tasks/99").status, 404);
        assert_eq!(get("/tasks/banana").status, 400);

        // The journal kept the cancel: reopening shows it terminal.
        drop(shared);
        let (store, recovered) = TaskStore::open(&dir).expect("reopen");
        assert_eq!(recovered, 0, "canceled tasks are not re-enqueued");
        assert_eq!(store.get(1).expect("task 1").state, TaskState::Canceled);
    }
}
