//! The daemon's metric families, as cached handles into the global
//! [`p7_obs`] registry (same accessor idiom as `p7_sim::telemetry`).
//!
//! Naming follows Prometheus conventions with the `ags_serve_` prefix.
//! The daemon enables the registry at startup and serves these on
//! `GET /metrics`.

use p7_obs::metrics::{global, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Bucket bounds for batch width (member tasks merged into one engine
/// pass). One is the un-batched baseline; wide buckets capture bursts
/// of compatible what-if requests.
pub const BATCH_WIDTH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket bounds for per-route HTTP request latency, seconds. Reads
/// answer in microseconds-to-milliseconds; submits journal first, so
/// the tail stretches to the fsync and scheduler-wake cost.
pub const HTTP_LATENCY_BOUNDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// The normalized route labels the daemon serves, used to pre-register
/// every labelling of the request histogram (a scraper sees the full
/// schema before traffic arrives). `other` buckets every unknown path.
pub const ROUTES: &[&str] = &[
    "/healthz",
    "/metrics",
    "/metrics/history",
    "/tasks",
    "/tasks/:id",
    "/tasks/:id/result",
    "/tasks/:id/trace",
    "/tasks/:id/cancel",
    "other",
];

macro_rules! counter_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Counter> {
            static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
            HANDLE.get_or_init(|| global().counter($name, $help))
        }
    };
}

macro_rules! gauge_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Gauge> {
            static HANDLE: OnceLock<Arc<Gauge>> = OnceLock::new();
            HANDLE.get_or_init(|| global().gauge($name, $help))
        }
    };
}

macro_rules! histogram_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal, $bounds:expr) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| global().histogram($name, $help, $bounds))
        }
    };
}

gauge_accessor!(
    /// Tasks not yet in a terminal state.
    queue_depth,
    "ags_serve_queue_depth",
    "Tasks enqueued, batched or processing (not yet terminal)"
);

counter_accessor!(
    /// Tasks durably accepted over the wire.
    tasks_submitted,
    "ags_serve_tasks_submitted_total",
    "Tasks durably journaled and acknowledged"
);

counter_accessor!(
    /// Tasks that reached `succeeded`.
    tasks_succeeded,
    "ags_serve_tasks_succeeded_total",
    "Tasks finished with a rendered result"
);

counter_accessor!(
    /// Tasks that reached `failed` (quarantined).
    tasks_failed,
    "ags_serve_tasks_failed_total",
    "Tasks quarantined after exhausting retries or a hard engine error"
);

counter_accessor!(
    /// Tasks canceled by a client before processing.
    tasks_canceled,
    "ags_serve_tasks_canceled_total",
    "Tasks canceled before processing began"
);

counter_accessor!(
    /// Engine passes run by the scheduler.
    batches,
    "ags_serve_batches_total",
    "Merged engine passes run by the scheduler"
);

histogram_accessor!(
    /// Member tasks merged into each engine pass.
    batch_width,
    "ags_serve_batch_width",
    "Tasks merged into one engine pass",
    BATCH_WIDTH_BOUNDS
);

counter_accessor!(
    /// Task-level retries (re-enqueued with backoff after a failure).
    task_retries,
    "ags_serve_task_retries_total",
    "Tasks re-enqueued with backoff after a failed or interrupted batch"
);

counter_accessor!(
    /// Connections shed with `503` at the connection cap.
    sheds,
    "ags_serve_sheds_total",
    "Connections shed with 503 at the concurrent-connection cap"
);

counter_accessor!(
    /// HTTP requests parsed (any method/path, before routing).
    http_requests,
    "ags_serve_http_requests_total",
    "HTTP requests parsed by the listener"
);

gauge_accessor!(
    /// Connections currently being served.
    connections,
    "ags_serve_connections",
    "Connections currently held open by handler threads"
);

counter_accessor!(
    /// Mid-batch tasks re-enqueued during journal recovery.
    recovered_tasks,
    "ags_serve_recovered_tasks_total",
    "Tasks found mid-batch in the journal at startup and re-enqueued"
);

gauge_accessor!(
    /// 1 while the daemon sheds writes in degraded read-only mode.
    serve_degraded,
    "ags_serve_degraded",
    "1 while the daemon is in degraded read-only mode (journal unwritable), else 0"
);

counter_accessor!(
    /// Tasks quarantined by the stuck-task watchdog.
    tasks_stuck,
    "ags_serve_tasks_stuck_total",
    "Tasks quarantined because their batch exceeded the per-batch deadline"
);

gauge_accessor!(
    /// Seconds the oldest still-open task has been waiting.
    queue_oldest_age,
    "ags_serve_queue_oldest_age_seconds",
    "Age in seconds of the oldest task not yet in a terminal state (0 when idle)"
);

/// Per-route request latency histogram handle. `route` should be one of
/// [`ROUTES`] (the daemon normalizes ids out of paths first).
pub fn http_request_seconds(route: &str) -> Arc<Histogram> {
    global().histogram_with(
        "ags_serve_http_request_seconds",
        "HTTP request latency by normalized route, seconds",
        HTTP_LATENCY_BOUNDS,
        &[("route", route)],
    )
}

/// Resolves every accessor once, so an export lists every family even
/// before the daemon exercises some site (scrapers then see a stable
/// schema; a zero is information, an absent family is not).
pub fn register_all() {
    queue_depth();
    tasks_submitted();
    tasks_succeeded();
    tasks_failed();
    tasks_canceled();
    batches();
    batch_width();
    task_retries();
    sheds();
    http_requests();
    connections();
    recovered_tasks();
    serve_degraded();
    tasks_stuck();
    queue_oldest_age();
    for route in ROUTES {
        http_request_seconds(route);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_register_and_bounds_increase() {
        register_all();
        assert!(BATCH_WIDTH_BOUNDS.windows(2).all(|w| w[0] < w[1]));
        assert!(HTTP_LATENCY_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn request_histogram_is_one_family_per_route() {
        register_all();
        let a = http_request_seconds("/healthz");
        let b = http_request_seconds("/healthz");
        assert!(Arc::ptr_eq(&a, &b), "same label set shares one handle");
        let c = http_request_seconds("/tasks");
        assert!(!Arc::ptr_eq(&a, &c), "routes are distinct series");
    }
}
