//! A minimal, hardened HTTP/1.1 server layer on std I/O alone.
//!
//! The daemon's wire format is deliberately tiny — request line, a
//! handful of headers, an optional JSON body — so rather than pull in a
//! server stack, this module parses exactly that subset and hardens the
//! edges a long-lived listener actually gets attacked on:
//!
//! * the request line and headers are capped at [`MAX_HEADER_BYTES`],
//! * the body is capped at [`HttpLimits::max_body`] (`413` beyond it),
//! * reads and writes carry per-connection timeouts, and
//! * the accept loop sheds load with `503` above
//!   [`HttpLimits::max_connections`] (enforced in the daemon).
//!
//! Every response closes the connection (`Connection: close`): tasks
//! are minutes long and clients poll, so keep-alive buys nothing and
//! connection state is one less thing to drain.

use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Cap on the request line plus all headers, in bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Default cap on a request body, in bytes. Sweep specs are a few
/// hundred bytes; a megabyte leaves room for very wide grids.
pub const DEFAULT_MAX_BODY: usize = 1024 * 1024;

/// Default per-connection read/write timeout.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 5_000;

/// Default concurrent-connection cap before `503` load shedding.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// The listener's hardening knobs.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Largest accepted request body, bytes (`413` beyond it).
    pub max_body: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
    /// Concurrent connections before the accept loop sheds with `503`.
    pub max_connections: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_body: DEFAULT_MAX_BODY,
            io_timeout: Duration::from_millis(DEFAULT_IO_TIMEOUT_MS),
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }
}

/// One parsed request: method, path, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/tasks/3/result`.
    pub path: String,
    /// The raw body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The request violated the HTTP/1.1 subset we speak (`400`).
    Malformed(String),
    /// The declared body exceeded [`HttpLimits::max_body`] (`413`).
    BodyTooLarge,
    /// The socket failed or timed out mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge => write!(f, "request body over limit"),
            HttpError::Io(e) => write!(f, "request I/O failed: {e}"),
        }
    }
}

/// Reads one line (up to CRLF or LF), enforcing the shared header
/// budget. `budget` is decremented by the bytes consumed.
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let cap = (*budget).min(MAX_HEADER_BYTES) as u64;
    reader
        .by_ref()
        .take(cap)
        .read_until(b'\n', &mut raw)
        .map_err(HttpError::Io)?;
    if !raw.ends_with(b"\n") {
        // Either the peer closed mid-line or the line blew the budget.
        return Err(HttpError::Malformed(
            "header line unterminated or over budget".to_owned(),
        ));
    }
    *budget = budget.saturating_sub(raw.len());
    while raw.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 header".to_owned()))
}

/// Parses one HTTP/1.1 request from `reader` under `limits`.
///
/// # Errors
///
/// [`HttpError::Malformed`] for anything outside the accepted subset,
/// [`HttpError::BodyTooLarge`] when `Content-Length` exceeds the body
/// cap, [`HttpError::Io`] on socket failure or timeout.
pub fn read_request<R: BufRead>(reader: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length `{value}`")))?;
        }
    }
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// Splits a request target into `(path, query)`: `/a/b?x=1` becomes
/// `("/a/b", "x=1")`; a target with no `?` has an empty query.
#[must_use]
pub fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

/// The value of `key` in a `k=v&k2=v2` query string, if present. No
/// percent-decoding: the daemon's parameters are metric family names
/// and integers, which never need escaping.
#[must_use]
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// One response, written with `Content-Length` and `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header, seconds (degraded-mode 503s tell
    /// clients when to try again).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    /// Adds a `Retry-After: secs` header.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// A JSON error envelope: `{"error":"…"}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let value = serde::Value::Map(vec![(
            "error".to_owned(),
            serde::Value::Str(message.to_owned()),
        )]);
        Response::json(status, value.to_json())
    }

    /// The standard reason phrase for the status codes the daemon uses.
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response onto `writer`.
    ///
    /// # Errors
    ///
    /// Propagates the socket's I/O error (the peer may have vanished;
    /// callers log and drop the connection).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let retry_after = self
            .retry_after
            .map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len(),
            retry_after
        );
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes()), &HttpLimits::default())
    }

    #[test]
    fn parses_get_and_post_with_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());

        let req = parse(
            "POST /tasks HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 10\r\n\r\n{\"k\":true}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"k\":true}");
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let req = parse("GET /metrics HTTP/1.0\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse("BROKEN\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET nopath HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn body_over_limit_is_413_not_read() {
        let limits = HttpLimits {
            max_body: 8,
            ..HttpLimits::default()
        };
        let text = "POST /tasks HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err = read_request(&mut Cursor::new(text.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
    }

    #[test]
    fn unbounded_header_stream_is_cut_off() {
        // A header section that never ends must fail once it exceeds
        // the budget instead of buffering forever.
        let mut text = String::from("GET / HTTP/1.1\r\n");
        for i in 0..4096 {
            text.push_str(&format!("X-{i}: spam\r\n"));
        }
        assert!(matches!(parse(&text), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let text = "POST /tasks HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(parse(text), Err(HttpError::Io(_))));
    }

    #[test]
    fn target_splits_and_query_params_parse() {
        assert_eq!(split_target("/metrics/history"), ("/metrics/history", ""));
        assert_eq!(
            split_target("/metrics/history?family=x&points=5"),
            ("/metrics/history", "family=x&points=5")
        );
        let (_, query) = split_target("/h?family=ags_serve_queue_depth&window_ms=60000&bare");
        assert_eq!(query_param(query, "family"), Some("ags_serve_queue_depth"));
        assert_eq!(query_param(query, "window_ms"), Some("60000"));
        assert_eq!(query_param(query, "bare"), None, "k without = is ignored");
        assert_eq!(query_param(query, "missing"), None);
        assert_eq!(query_param("", "family"), None);
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: 3\r\nConnection: close\r\n\r\nok\n"
        );
        let mut out = Vec::new();
        Response::error(503, "draining").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.ends_with("{\"error\":\"draining\"}"));
        assert!(!text.contains("Retry-After"), "absent unless requested");

        let mut out = Vec::new();
        Response::error(503, "degraded")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nRetry-After: 2\r\n"), "{text}");
        assert!(text.contains("\r\nConnection: close\r\n\r\n"), "{text}");
    }
}
