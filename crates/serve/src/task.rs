//! The durable task queue: a `p7_sim::journal` of task events.
//!
//! Every submitted task and every state transition is one [`TaskEvent`]
//! appended to a checksummed journal segment *before* the daemon
//! acknowledges or acts on it, so the on-disk log is always ahead of
//! the in-memory queue. A restarted daemon replays the log in sequence
//! order and recovers the exact queue: terminal tasks keep their
//! rendered output (served byte-identically after a restart), and
//! tasks caught mid-batch (`batched` / `processing` at the crash) are
//! re-enqueued — the engines are deterministic, so re-running them
//! reproduces the uninterrupted results byte for byte.
//!
//! The lifecycle is `enqueued → batched → processing → succeeded |
//! failed | canceled`, with a retry edge `processing → enqueued` for
//! tasks whose batch quarantined or was interrupted.

use p7_sim::journal::{CampaignManifest, Journal, MANIFEST_FILE};
use p7_sim::vfs::{std_fs, DynFs};
use p7_sim::SimError;
use serde::{de, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Milliseconds since the Unix epoch, the clock retry deadlines are
/// journaled in (wall clock, so a deadline survives a daemon restart).
#[must_use]
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Campaign kind stamped into the queue journal's manifest.
pub const QUEUE_JOURNAL_KIND: &str = "serve";

/// Where a task is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Accepted and durably recorded; waiting to be batched.
    Enqueued,
    /// Claimed into a batch the scheduler is about to run.
    Batched,
    /// Its batch is running in the engine right now.
    Processing,
    /// Terminal: finished with a rendered result payload.
    Succeeded,
    /// Terminal: quarantined after exhausting retries (or a hard
    /// engine error); the reason carries the panic payload.
    Failed,
    /// Terminal: canceled by a client before processing began.
    Canceled,
}

impl TaskState {
    /// The wire/journal label, lowercase.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TaskState::Enqueued => "enqueued",
            TaskState::Batched => "batched",
            TaskState::Processing => "processing",
            TaskState::Succeeded => "succeeded",
            TaskState::Failed => "failed",
            TaskState::Canceled => "canceled",
        }
    }

    /// Parses a journal/wire label.
    #[must_use]
    pub fn parse(label: &str) -> Option<TaskState> {
        [
            TaskState::Enqueued,
            TaskState::Batched,
            TaskState::Processing,
            TaskState::Succeeded,
            TaskState::Failed,
            TaskState::Canceled,
        ]
        .into_iter()
        .find(|s| s.label() == label)
    }

    /// True for `succeeded` / `failed` / `canceled`.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Succeeded | TaskState::Failed | TaskState::Canceled
        )
    }
}

/// Which engine a task runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A `SweepSpec` grid (batchable).
    Sweep,
    /// A `ResilienceSpec` campaign.
    Resilience,
    /// A `FleetSpec` campaign.
    Fleet,
}

impl TaskKind {
    /// The wire/journal label, lowercase.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Sweep => "sweep",
            TaskKind::Resilience => "resilience",
            TaskKind::Fleet => "fleet",
        }
    }

    /// Parses a journal/wire label.
    #[must_use]
    pub fn parse(label: &str) -> Option<TaskKind> {
        [TaskKind::Sweep, TaskKind::Resilience, TaskKind::Fleet]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// One journaled event. Flat strings/ints only, so the JSON stays
/// human-greppable.
///
/// `event` is `"submit"` (carries `kind` + `spec_json`, opens the task
/// in `enqueued`) or `"state"` (moves the task to `state`, updating
/// `attempts`, `reason`, `output` and `retry_at_ms` wholesale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEvent {
    /// The task this event belongs to.
    pub id: u64,
    /// `"submit"` or `"state"`.
    pub event: String,
    /// Engine kind label (submit events; empty otherwise).
    pub kind: String,
    /// Canonical spec JSON (submit events; empty otherwise).
    pub spec_json: String,
    /// The task's state after this event.
    pub state: String,
    /// Processing attempts consumed so far.
    pub attempts: usize,
    /// Failure reason (panic payload / engine error), if any.
    pub reason: String,
    /// Rendered result payload once succeeded.
    pub output: String,
    /// Earliest wall-clock instant (epoch ms) the task may be claimed
    /// again; 0 means "ready now". Journaled so a restart does not
    /// reset exponential backoff.
    pub retry_at_ms: u64,
}

// Hand-written (de)serialization instead of the derive: `retry_at_ms`
// was added after PR 8 shipped journals without it, and the derive
// would refuse those events (missing field), silently discarding the
// whole segment as corrupt on resume. Reading treats a missing
// `retry_at_ms` as 0, so old journals replay losslessly with no
// format-version bump.
impl Serialize for TaskEvent {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".to_owned(), self.id.to_value()),
            ("event".to_owned(), self.event.to_value()),
            ("kind".to_owned(), self.kind.to_value()),
            ("spec_json".to_owned(), self.spec_json.to_value()),
            ("state".to_owned(), self.state.to_value()),
            ("attempts".to_owned(), self.attempts.to_value()),
            ("reason".to_owned(), self.reason.to_value()),
            ("output".to_owned(), self.output.to_value()),
            ("retry_at_ms".to_owned(), self.retry_at_ms.to_value()),
        ])
    }
}

impl Deserialize for TaskEvent {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(TaskEvent {
            id: u64::from_value(v.field("id")?)?,
            event: String::from_value(v.field("event")?)?,
            kind: String::from_value(v.field("kind")?)?,
            spec_json: String::from_value(v.field("spec_json")?)?,
            state: String::from_value(v.field("state")?)?,
            attempts: usize::from_value(v.field("attempts")?)?,
            reason: String::from_value(v.field("reason")?)?,
            output: String::from_value(v.field("output")?)?,
            retry_at_ms: match v.field("retry_at_ms") {
                Ok(value) => u64::from_value(value)?,
                Err(_) => 0, // Pre-PR 9 journals predate this field.
            },
        })
    }
}

/// One task's current state, replayed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Queue-assigned id, dense from 1.
    pub id: u64,
    /// Which engine runs it.
    pub kind: TaskKind,
    /// The canonical spec JSON recorded at submit.
    pub spec_json: String,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Processing attempts consumed.
    pub attempts: usize,
    /// Failure reason, if failed.
    pub reason: String,
    /// Rendered result, if succeeded.
    pub output: String,
    /// Earliest epoch-ms instant the task may be claimed again (its
    /// journaled retry backoff deadline); 0 means "ready now".
    pub retry_at_ms: u64,
}

/// A state transition to record durably via [`TaskStore::transition`].
#[derive(Debug, Clone)]
pub struct TaskUpdate {
    /// The task to move.
    pub id: u64,
    /// Its new state.
    pub state: TaskState,
    /// New attempts count.
    pub attempts: usize,
    /// New failure reason (empty to clear).
    pub reason: String,
    /// New rendered output (empty to clear).
    pub output: String,
    /// New retry backoff deadline, epoch ms (0 to clear).
    pub retry_at_ms: u64,
}

impl TaskUpdate {
    /// A transition that only moves `id` to `state`, keeping `attempts`
    /// and clearing reason/output/backoff.
    #[must_use]
    pub fn to_state(id: u64, state: TaskState, attempts: usize) -> Self {
        TaskUpdate {
            id,
            state,
            attempts,
            reason: String::new(),
            output: String::new(),
            retry_at_ms: 0,
        }
    }
}

/// The manifest every queue journal is stamped with. The spec field
/// names the substrate, not a campaign: the queue's contents are the
/// events themselves.
fn queue_manifest() -> CampaignManifest {
    CampaignManifest::new(
        QUEUE_JOURNAL_KIND,
        0,
        "{\"queue\":\"ags-serve\"}".to_owned(),
    )
}

/// The durable queue: an append-only [`Journal`] of [`TaskEvent`]s plus
/// the replayed in-memory view.
#[derive(Debug)]
pub struct TaskStore {
    journal: Journal<TaskEvent>,
    dir: PathBuf,
    fs: DynFs,
    /// Next journal sequence index (global over all events).
    seq: usize,
    tasks: Vec<Task>,
    index: HashMap<u64, usize>,
    next_id: u64,
    /// When each still-open task was first seen by *this* process
    /// (epoch ms). In-memory only — after a restart, ages restart from
    /// recovery time, which is the honest reading: the gauge answers
    /// "how long has this daemon been sitting on work".
    open_since: HashMap<u64, u64>,
}

impl TaskStore {
    /// Opens the queue at `dir` through the real filesystem: resumes an
    /// existing journal (replaying every intact event) or creates a
    /// fresh one. Tasks found `batched`/`processing` — i.e. mid-batch
    /// at a crash — are durably re-enqueued; the second element of the
    /// return is how many.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] when the directory holds a journal
    /// of a different campaign kind or on I/O failure.
    pub fn open(dir: &Path) -> Result<(TaskStore, usize), SimError> {
        TaskStore::open_with(dir, std_fs())
    }

    /// [`TaskStore::open`] through an explicit filesystem backend.
    ///
    /// # Errors
    ///
    /// As [`TaskStore::open`].
    pub fn open_with(dir: &Path, fs: DynFs) -> Result<(TaskStore, usize), SimError> {
        let manifest = queue_manifest();
        let mut store = if fs.exists(&dir.join(MANIFEST_FILE)) {
            let resumed = Journal::resume_with(dir, &manifest, fs.clone())?;
            let mut entries = resumed.entries;
            entries.sort_by_key(|(idx, _)| *idx);
            let seq = entries.last().map_or(0, |(idx, _)| idx + 1);
            let mut store = TaskStore {
                journal: resumed.journal,
                dir: dir.to_owned(),
                fs,
                seq,
                tasks: Vec::new(),
                index: HashMap::new(),
                next_id: 1,
                open_since: HashMap::new(),
            };
            for (_, event) in &entries {
                store.apply(event);
            }
            store
        } else {
            TaskStore {
                journal: Journal::create_with(dir, &manifest, fs.clone())?,
                dir: dir.to_owned(),
                fs,
                seq: 0,
                tasks: Vec::new(),
                index: HashMap::new(),
                next_id: 1,
                open_since: HashMap::new(),
            }
        };
        let stuck: Vec<TaskUpdate> = store
            .tasks
            .iter()
            .filter(|t| matches!(t.state, TaskState::Batched | TaskState::Processing))
            .map(|t| TaskUpdate::to_state(t.id, TaskState::Enqueued, t.attempts))
            .collect();
        let recovered = stuck.len();
        store.transition(&stuck)?;
        Ok((store, recovered))
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Probes whether the journal directory is writable again: writes,
    /// fsyncs and removes a small probe file. The degraded daemon calls
    /// this each scheduler poll to decide when to leave read-only mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] carrying the first failing step.
    pub fn probe_writable(&self) -> Result<(), SimError> {
        let probe = self.dir.join("writable-probe.tmp");
        let fail = |action: &str, e: std::io::Error| SimError::Journal {
            reason: format!("cannot {action} `{}`: {e}", probe.display()),
        };
        self.fs
            .write(&probe, b"probe")
            .map_err(|e| fail("write", e))?;
        self.fs.fsync(&probe).map_err(|e| fail("fsync", e))?;
        self.fs.remove_file(&probe).map_err(|e| fail("remove", e))?;
        Ok(())
    }

    /// Replays one event into the in-memory view.
    fn apply(&mut self, event: &TaskEvent) {
        if event.event == "submit" {
            let Some(kind) = TaskKind::parse(&event.kind) else {
                return; // Unknown kind from a future version: skip.
            };
            self.open_since.entry(event.id).or_insert_with(now_ms);
            let task = Task {
                id: event.id,
                kind,
                spec_json: event.spec_json.clone(),
                state: TaskState::parse(&event.state).unwrap_or(TaskState::Enqueued),
                attempts: event.attempts,
                reason: event.reason.clone(),
                output: event.output.clone(),
                retry_at_ms: event.retry_at_ms,
            };
            self.next_id = self.next_id.max(event.id + 1);
            match self.index.get(&event.id) {
                Some(&slot) => self.tasks[slot] = task,
                None => {
                    self.index.insert(event.id, self.tasks.len());
                    self.tasks.push(task);
                }
            }
        } else if let Some(&slot) = self.index.get(&event.id) {
            let task = &mut self.tasks[slot];
            task.state = TaskState::parse(&event.state).unwrap_or(task.state);
            task.attempts = event.attempts;
            task.reason = event.reason.clone();
            task.output = event.output.clone();
            task.retry_at_ms = event.retry_at_ms;
            if task.state.is_terminal() {
                self.open_since.remove(&event.id);
            }
        }
    }

    /// Durably records a new task and returns its id. The journal
    /// append happens *before* the task becomes visible, so an
    /// acknowledged submit survives any crash.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] if the append fails (the task is
    /// then neither recorded nor acknowledged).
    pub fn submit(&mut self, kind: TaskKind, spec_json: String) -> Result<u64, SimError> {
        let id = self.next_id;
        let event = TaskEvent {
            id,
            event: "submit".to_owned(),
            kind: kind.label().to_owned(),
            spec_json,
            state: TaskState::Enqueued.label().to_owned(),
            attempts: 0,
            reason: String::new(),
            output: String::new(),
            retry_at_ms: 0,
        };
        self.journal.append(&[(self.seq, event.clone())])?;
        self.seq += 1;
        self.apply(&event);
        Ok(id)
    }

    /// Durably records a batch of state transitions as one segment,
    /// then applies them in memory. A no-op for an empty batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] if the append fails; the in-memory
    /// view is then left unchanged.
    pub fn transition(&mut self, updates: &[TaskUpdate]) -> Result<(), SimError> {
        if updates.is_empty() {
            return Ok(());
        }
        let events: Vec<(usize, TaskEvent)> = updates
            .iter()
            .enumerate()
            .map(|(offset, u)| {
                (
                    self.seq + offset,
                    TaskEvent {
                        id: u.id,
                        event: "state".to_owned(),
                        kind: String::new(),
                        spec_json: String::new(),
                        state: u.state.label().to_owned(),
                        attempts: u.attempts,
                        reason: u.reason.clone(),
                        output: u.output.clone(),
                        retry_at_ms: u.retry_at_ms,
                    },
                )
            })
            .collect();
        self.journal.append(&events)?;
        self.seq += events.len();
        for (_, event) in &events {
            self.apply(event);
        }
        Ok(())
    }

    /// The task with this id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&Task> {
        self.index.get(&id).map(|&slot| &self.tasks[slot])
    }

    /// Every task, in submit order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Tasks not yet in a terminal state (the `/metrics` queue depth).
    #[must_use]
    pub fn open_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| !t.state.is_terminal()).count()
    }

    /// The id the next [`TaskStore::submit`] will assign. The accept
    /// path peeks this (under the queue lock) to stamp the submission's
    /// trace id before the task exists.
    #[must_use]
    pub fn next_task_id(&self) -> u64 {
        self.next_id
    }

    /// Milliseconds the oldest still-open task has been waiting in this
    /// process, or 0 with an empty queue (the
    /// `ags_serve_queue_oldest_age_seconds` reading).
    #[must_use]
    pub fn oldest_open_age_ms(&self, now: u64) -> u64 {
        self.open_since
            .values()
            .min()
            .map_or(0, |&since| now.saturating_sub(since))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ags-serve-task-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_and_kind_labels_round_trip() {
        for state in [
            TaskState::Enqueued,
            TaskState::Batched,
            TaskState::Processing,
            TaskState::Succeeded,
            TaskState::Failed,
            TaskState::Canceled,
        ] {
            assert_eq!(TaskState::parse(state.label()), Some(state));
        }
        assert!(TaskState::parse("nope").is_none());
        for kind in [TaskKind::Sweep, TaskKind::Resilience, TaskKind::Fleet] {
            assert_eq!(TaskKind::parse(kind.label()), Some(kind));
        }
        assert!(!TaskState::Processing.is_terminal());
        assert!(TaskState::Canceled.is_terminal());
    }

    #[test]
    fn submits_and_transitions_survive_reopen() {
        let dir = scratch("reopen");
        {
            let (mut store, recovered) = TaskStore::open(&dir).unwrap();
            assert_eq!(recovered, 0);
            let a = store
                .submit(TaskKind::Sweep, "{\"a\":1}".to_owned())
                .unwrap();
            let b = store
                .submit(TaskKind::Fleet, "{\"b\":2}".to_owned())
                .unwrap();
            assert_eq!((a, b), (1, 2));
            store
                .transition(&[
                    TaskUpdate {
                        id: a,
                        state: TaskState::Succeeded,
                        attempts: 1,
                        reason: String::new(),
                        output: "table\n".to_owned(),
                        retry_at_ms: 0,
                    },
                    TaskUpdate::to_state(b, TaskState::Batched, 0),
                ])
                .unwrap();
            assert_eq!(store.open_tasks(), 1);
        }
        // Reopen: the succeeded task keeps its output; the batched one
        // (mid-batch at "crash") is re-enqueued.
        let (store, recovered) = TaskStore::open(&dir).unwrap();
        assert_eq!(recovered, 1);
        let a = store.get(1).unwrap();
        assert_eq!(a.state, TaskState::Succeeded);
        assert_eq!(a.output, "table\n");
        assert_eq!(a.kind, TaskKind::Sweep);
        let b = store.get(2).unwrap();
        assert_eq!(b.state, TaskState::Enqueued);
        assert_eq!(b.spec_json, "{\"b\":2}");
        // Ids keep counting after the recovered ones.
        let (mut store, _) = TaskStore::open(&dir).unwrap();
        assert_eq!(store.submit(TaskKind::Sweep, "{}".to_owned()).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_is_idempotent_after_recovery_appends() {
        let dir = scratch("idempotent");
        {
            let (mut store, _) = TaskStore::open(&dir).unwrap();
            let id = store.submit(TaskKind::Sweep, "{}".to_owned()).unwrap();
            store
                .transition(&[TaskUpdate::to_state(id, TaskState::Processing, 1)])
                .unwrap();
        }
        let (_store, recovered) = TaskStore::open(&dir).unwrap();
        assert_eq!(recovered, 1);
        // The recovery wrote re-enqueue events; a third open finds a
        // clean queue and recovers nothing.
        let (store, recovered) = TaskStore::open(&dir).unwrap();
        assert_eq!(recovered, 0);
        assert_eq!(store.get(1).unwrap().state, TaskState::Enqueued);
        assert_eq!(store.get(1).unwrap().attempts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_deadlines_survive_reopen() {
        let dir = scratch("backoff");
        let deadline = now_ms() + 3_600_000; // far future
        {
            let (mut store, _) = TaskStore::open(&dir).unwrap();
            let id = store.submit(TaskKind::Sweep, "{}".to_owned()).unwrap();
            store
                .transition(&[TaskUpdate {
                    id,
                    state: TaskState::Enqueued,
                    attempts: 2,
                    reason: "flaky".to_owned(),
                    output: String::new(),
                    retry_at_ms: deadline,
                }])
                .unwrap();
        }
        // A restart keeps both the attempt count and the backoff
        // deadline: the task does not retry hot.
        let (store, recovered) = TaskStore::open(&dir).unwrap();
        assert_eq!(recovered, 0, "enqueued tasks are not mid-batch");
        let task = store.get(1).unwrap();
        assert_eq!(task.attempts, 2);
        assert_eq!(task.retry_at_ms, deadline);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_pr9_events_without_retry_field_still_parse() {
        // A PR 8-era journal event has no `retry_at_ms` key; it must
        // deserialize (as deadline 0), not poison its whole segment.
        let old = "{\"id\":3,\"event\":\"submit\",\"kind\":\"sweep\",\"spec_json\":\"{}\",\
                   \"state\":\"enqueued\",\"attempts\":1,\"reason\":\"\",\"output\":\"\"}";
        let event: TaskEvent = serde::json::from_str(old).unwrap();
        assert_eq!(event.id, 3);
        assert_eq!(event.retry_at_ms, 0);
        // And the new form round-trips.
        let mut new = event.clone();
        new.retry_at_ms = 99;
        let back: TaskEvent = serde::json::from_str(&serde::json::to_string(&new)).unwrap();
        assert_eq!(back, new);
    }

    #[test]
    fn next_id_peek_matches_submit_and_ages_track_open_tasks() {
        let dir = scratch("age");
        let (mut store, _) = TaskStore::open(&dir).unwrap();
        assert_eq!(store.oldest_open_age_ms(now_ms()), 0, "empty queue");
        let peek = store.next_task_id();
        let id = store.submit(TaskKind::Sweep, "{}".to_owned()).unwrap();
        assert_eq!(peek, id, "peek must predict the assigned id");
        assert_eq!(store.next_task_id(), id + 1);
        // An open task ages; a terminal one stops counting.
        assert!(store.oldest_open_age_ms(now_ms() + 5_000) >= 5_000);
        store
            .transition(&[TaskUpdate::to_state(id, TaskState::Canceled, 0)])
            .unwrap();
        assert_eq!(store.oldest_open_age_ms(now_ms() + 5_000), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_writable_round_trips_and_leaves_no_residue() {
        let dir = scratch("probe");
        let (store, _) = TaskStore::open(&dir).unwrap();
        store.probe_writable().unwrap();
        store.probe_writable().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("probe"))
            .collect();
        assert!(leftovers.is_empty(), "probe residue: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_a_foreign_journal() {
        let dir = scratch("foreign");
        let manifest = CampaignManifest::new("sweep", 7, "{}".to_owned());
        let _journal: Journal<TaskEvent> = Journal::create(&dir, &manifest).unwrap();
        assert!(TaskStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
