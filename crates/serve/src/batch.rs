//! The auto-batcher: merge compatible queued sweeps into one engine
//! pass, split the merged report back per task.
//!
//! Two sweep specs are *compatible* when they differ at most in their
//! core-count lists — same workloads, modes, placements, seed, tick
//! counts and fault plan. The merged spec is the union of core counts,
//! so one engine pass over one shared `SolveCache` covers every
//! member's grid. Splitting is exact, not approximate, because
//! `SweepSpec::point_seed` is a pure function of (master seed,
//! workload, cores, placement) and deliberately *not* of the spec's
//! core list: a point solved inside the merged grid is bit-identical
//! to the same point solved by a standalone run of the member spec.

use p7_sim::journal::{fnv64, FailedPoint};
use p7_sim::sweep::{PointResult, SweepReport, SweepSpec};

/// One enqueued sweep awaiting batching.
#[derive(Debug, Clone)]
pub struct QueuedSweep {
    /// The owning task id.
    pub task: u64,
    /// The task's parsed spec.
    pub spec: SweepSpec,
}

/// A set of compatible sweeps merged into one engine pass.
#[derive(Debug, Clone)]
pub struct SweepBatch {
    /// The merged spec: the shared shape with the union of core lists.
    pub merged: SweepSpec,
    /// The member tasks, in arrival order.
    pub members: Vec<QueuedSweep>,
}

/// The compatibility key: the FNV-1a fingerprint of the spec's
/// canonical JSON with the core list blanked. Everything else —
/// workload set, modes, placements, seed, tick counts, fault plan —
/// must match for two sweeps to share an engine pass.
#[must_use]
pub fn compat_fingerprint(spec: &SweepSpec) -> u64 {
    let mut keyed = spec.clone();
    keyed.cores = Vec::new();
    fnv64(keyed.to_json().as_bytes())
}

/// Greedily groups the queue (in arrival order) into batches of
/// compatible sweeps. Each batch's merged core list is the sorted,
/// deduplicated union of its members'. Deterministic: same queue in,
/// same batches out.
#[must_use]
pub fn build_batches(queue: &[QueuedSweep]) -> Vec<SweepBatch> {
    let mut keyed: Vec<(u64, SweepBatch)> = Vec::new();
    for entry in queue {
        let key = compat_fingerprint(&entry.spec);
        match keyed.iter_mut().find(|(k, _)| *k == key) {
            Some((_, batch)) => {
                batch.merged.cores.extend_from_slice(&entry.spec.cores);
                batch.members.push(entry.clone());
            }
            None => keyed.push((
                key,
                SweepBatch {
                    merged: entry.spec.clone(),
                    members: vec![entry.clone()],
                },
            )),
        }
    }
    keyed
        .into_iter()
        .map(|(_, mut batch)| {
            batch.merged.cores.sort_unstable();
            batch.merged.cores.dedup();
            batch
        })
        .collect()
}

/// One member's share of a merged batch outcome.
#[derive(Debug, Clone)]
pub struct SplitOutcome {
    /// The owning task id.
    pub task: u64,
    /// The member's results, in *its own* spec's grid order with its
    /// own grid indices — exactly what a standalone run produces.
    pub results: Vec<PointResult>,
    /// The member's quarantined points, re-indexed into its own grid.
    pub failed: Vec<FailedPoint>,
}

/// Splits a merged batch report back into per-member outcomes.
///
/// Each member's rows are looked up in the merged report by grid
/// coordinates and re-indexed into the member's own expansion order;
/// merged-grid quarantines map back onto every member point sharing
/// the coordinates.
#[must_use]
pub fn split_report(batch: &SweepBatch, report: &SweepReport) -> Vec<SplitOutcome> {
    let merged_points = batch.merged.grid_points();
    batch
        .members
        .iter()
        .map(|member| {
            let mut results = Vec::new();
            let mut failed = Vec::new();
            for point in member.spec.grid_points() {
                if let Some(outcome) =
                    report.outcome(&point.workload, point.cores, point.placement, point.mode)
                {
                    results.push(PointResult {
                        outcome: outcome.clone(),
                        point,
                    });
                } else if let Some(fp) = report.failed_points.iter().find(|f| {
                    merged_points.get(f.index).is_some_and(|mp| {
                        mp.workload == point.workload
                            && mp.cores == point.cores
                            && mp.placement == point.placement
                            && mp.mode == point.mode
                    })
                }) {
                    failed.push(FailedPoint {
                        index: point.index,
                        attempts: fp.attempts,
                        reason: fp.reason.clone(),
                    });
                } else {
                    // A merged run interrupted mid-grid can miss points
                    // entirely; the scheduler treats any missing row as
                    // "re-run the task", so surface it as a failure.
                    failed.push(FailedPoint {
                        index: point.index,
                        attempts: 0,
                        reason: "point missing from merged batch report".to_owned(),
                    });
                }
            }
            SplitOutcome {
                task: member.task,
                results,
                failed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_control::GuardbandMode;

    fn spec(cores: &[usize], seed: u64) -> SweepSpec {
        SweepSpec::new(vec!["lu_cb".to_owned()], cores.to_vec())
            .with_modes(vec![GuardbandMode::StaticGuardband])
            .with_seed(seed)
            .with_ticks(4, 2)
    }

    fn queued(task: u64, spec: SweepSpec) -> QueuedSweep {
        QueuedSweep { task, spec }
    }

    #[test]
    fn compatible_specs_merge_cores_incompatible_split() {
        let queue = vec![
            queued(1, spec(&[2, 4], 42)),
            queued(2, spec(&[1], 42)),
            queued(3, spec(&[4, 3], 43)), // different seed: own batch
            queued(4, spec(&[4], 42)),
        ];
        let batches = build_batches(&queue);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].merged.cores, vec![1, 2, 4]);
        assert_eq!(
            batches[0]
                .members
                .iter()
                .map(|m| m.task)
                .collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(batches[1].merged.cores, vec![3, 4]);
        assert_eq!(batches[1].members[0].task, 3);
    }

    #[test]
    fn fingerprint_ignores_cores_only() {
        assert_eq!(
            compat_fingerprint(&spec(&[1, 2], 42)),
            compat_fingerprint(&spec(&[5], 42))
        );
        assert_ne!(
            compat_fingerprint(&spec(&[1], 42)),
            compat_fingerprint(&spec(&[1], 7))
        );
        let mut other = spec(&[1], 42);
        other.measure_ticks += 1;
        assert_ne!(
            compat_fingerprint(&spec(&[1], 42)),
            compat_fingerprint(&other)
        );
    }
}
