//! Stamps the daemon with a best-effort `git describe`, surfaced on
//! `/healthz` next to the crate version. Builds outside a git checkout
//! (vendored tarballs, CI caches) get `"unknown"` — the build never
//! fails over provenance.

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=AGS_GIT_DESCRIBE={describe}");
    // Re-stamp when HEAD moves; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
