//! Property tests for the daemon's sweep auto-batcher.
//!
//! The batching contract: merging compatible queued sweeps into one
//! engine pass is invisible to each task. Batches only ever group specs
//! that differ in their core lists alone, and each member's rows split
//! out of the merged report are bitwise identical to a standalone run
//! of the member's own spec.

use ags_serve::batch::{build_batches, compat_fingerprint, split_report, QueuedSweep};
use p7_control::GuardbandMode;
use p7_sim::{SolveCache, SweepEngine, SweepSpec};
use proptest::prelude::*;
use std::sync::Arc;

const WORKLOADS: [&str; 2] = ["lu_cb", "radix"];
const MODES: [GuardbandMode; 3] = [
    GuardbandMode::StaticGuardband,
    GuardbandMode::Overclock,
    GuardbandMode::Undervolt,
];

/// Builds one small spec from packed masks, so proptest explores the
/// compatibility space (shape × seed) and the core-list space cheaply.
fn spec_from(workload_mask: u32, core_mask: u32, mode_mask: u32, seed: u64) -> SweepSpec {
    let workloads: Vec<String> = WORKLOADS
        .iter()
        .enumerate()
        .filter(|(i, _)| workload_mask & (1 << i) != 0)
        .map(|(_, w)| (*w).to_owned())
        .collect();
    let cores: Vec<usize> = (1..=4)
        .filter(|c| core_mask & (1 << (c - 1)) != 0)
        .collect();
    let modes: Vec<GuardbandMode> = MODES
        .iter()
        .enumerate()
        .filter(|(i, _)| mode_mask & (1 << i) != 0)
        .map(|(_, m)| *m)
        .collect();
    SweepSpec::new(workloads, cores)
        .with_modes(modes)
        .with_seed(seed)
        .with_ticks(4, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural invariants of [`build_batches`]: every queued task
    /// lands in exactly one batch, members of a batch share the
    /// compatibility fingerprint (distinct batches never do), and the
    /// merged core list is exactly the sorted union of its members'.
    #[test]
    fn batches_group_only_compatible_specs(
        shapes in prop::collection::vec(
            (1u32..4, 1u32..16, 1u32..8, 41u64..43),
            1..8,
        ),
    ) {
        let queue: Vec<QueuedSweep> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(w, c, m, s))| QueuedSweep {
                task: i as u64 + 1,
                spec: spec_from(w, c, m, s),
            })
            .collect();
        let batches = build_batches(&queue);

        let mut seen: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.members.iter().map(|m| m.task))
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = queue.iter().map(|q| q.task).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected, "every task in exactly one batch");

        let mut keys: Vec<u64> = Vec::new();
        for b in &batches {
            for member in &b.members {
                prop_assert_eq!(
                    compat_fingerprint(&member.spec),
                    compat_fingerprint(&b.merged),
                    "batch mixed incompatible specs"
                );
            }
            keys.push(compat_fingerprint(&b.merged));
        }
        let mut deduped = keys.clone();
        deduped.sort_unstable();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), keys.len(), "two batches share a fingerprint");

        for batch in &batches {
            let mut union: Vec<usize> = batch
                .members
                .iter()
                .flat_map(|m| m.spec.cores.iter().copied())
                .collect();
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(&batch.merged.cores, &union);
        }
    }

    /// End-to-end exactness: run each merged batch through a real
    /// engine and split; every member's extracted rows must serialize
    /// identically to a standalone run of that member's spec.
    #[test]
    fn split_rows_equal_standalone_runs(
        shapes in prop::collection::vec(
            (1u32..4, 1u32..16, 1u32..8, 41u64..43),
            1..5,
        ),
    ) {
        let queue: Vec<QueuedSweep> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(w, c, m, s))| QueuedSweep {
                task: i as u64 + 1,
                spec: spec_from(w, c, m, s),
            })
            .collect();
        let engine = SweepEngine::with_cache(2, Arc::new(SolveCache::new()));
        for batch in build_batches(&queue) {
            let report = engine.run(&batch.merged).expect("merged run");
            let splits = split_report(&batch, &report);
            prop_assert_eq!(splits.len(), batch.members.len());
            for (split, member) in splits.iter().zip(&batch.members) {
                prop_assert_eq!(split.task, member.task);
                prop_assert!(split.failed.is_empty(), "clean run must not quarantine");
                let standalone = engine.run(&member.spec).expect("standalone run");
                prop_assert_eq!(
                    serde::json::to_string(&split.results),
                    standalone.results_json(),
                    "split rows diverged from a standalone run of task {}",
                    member.task
                );
            }
        }
    }
}
