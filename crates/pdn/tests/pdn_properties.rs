//! Property-based tests of the power-delivery substrate.

use p7_pdn::{DidtConfig, DidtModel, DropBreakdown, PdnConfig, PdnGrid, Rail, Vrm};
use p7_types::{Amps, CoreId, Ohms, Seconds, SocketId, Volts};
use proptest::prelude::*;

fn arb_currents() -> impl Strategy<Value = [f64; 8]> {
    prop::array::uniform8(0.0f64..20.0)
}

proptest! {
    #[test]
    fn superposition_of_core_currents(
        currents in arb_currents(),
        uncore in 0.0f64..40.0,
    ) {
        // Voltage drop decomposes: global (total current) plus local (own
        // and neighbour current). Doubling every current doubles every
        // drop — the grid is linear.
        let grid = PdnGrid::new(&PdnConfig::power7plus());
        let input = Volts(1.2);
        let amps: [Amps; 8] = std::array::from_fn(|i| Amps(currents[i]));
        let doubled: [Amps; 8] = std::array::from_fn(|i| Amps(currents[i] * 2.0));
        let v1 = grid.core_voltages(input, &amps, Amps(uncore));
        let v2 = grid.core_voltages(input, &doubled, Amps(uncore * 2.0));
        for i in 0..8 {
            let d1 = (input - v1[i]).0;
            let d2 = (input - v2[i]).0;
            prop_assert!((d2 - 2.0 * d1).abs() < 1e-12);
        }
    }

    #[test]
    fn only_neighbours_feel_local_current(
        bump in 1.0f64..15.0,
    ) {
        let grid = PdnGrid::new(&PdnConfig::power7plus());
        let input = Volts(1.2);
        let base = grid.core_voltages(input, &[Amps(5.0); 8], Amps(20.0));
        let mut bumped = [Amps(5.0); 8];
        bumped[0] = Amps(5.0 + bump);
        let after = grid.core_voltages(input, &bumped, Amps(20.0));
        let c0 = CoreId::new(0).unwrap();
        for core in CoreId::all() {
            let delta_global = grid.global_drop(Amps(bump)).0;
            let extra = (base[core.index()] - after[core.index()]).0 - delta_global;
            if core == c0 {
                prop_assert!(extra > 1e-6, "own core must feel its current");
            } else if core.is_adjacent(c0) {
                prop_assert!(extra > 1e-9, "neighbour must feel coupling");
            } else {
                prop_assert!(extra.abs() < 1e-12, "distant core must only see global");
            }
        }
    }

    #[test]
    fn vrm_rails_are_isolated(
        set_a in 1.0f64..1.25,
        set_b in 1.0f64..1.25,
        load in 0.0f64..120.0,
    ) {
        let mut vrm = Vrm::uniform(Volts(1.2), Ohms(0.45e-3)).unwrap();
        let s0 = SocketId::new(0).unwrap();
        let s1 = SocketId::new(1).unwrap();
        vrm.rail_mut(s0).set_set_point(Volts(set_a));
        vrm.rail_mut(s1).set_set_point(Volts(set_b));
        // Loading one rail never changes the other's output.
        let before = vrm.rail(s1).output(Amps(10.0));
        let _ = vrm.rail(s0).output(Amps(load));
        prop_assert_eq!(vrm.rail(s1).output(Amps(10.0)), before);
    }

    #[test]
    fn didt_sample_is_bounded_and_ordered(
        seed in 0u64..300,
        active in 1usize..=8,
        variability in 0.1f64..2.0,
    ) {
        let mut model = DidtModel::new(DidtConfig::power7plus(), seed);
        for _ in 0..20 {
            let s = model.sample_window(active, variability, Seconds::from_millis(32.0));
            prop_assert!(s.typical.0 >= 0.0);
            prop_assert!(s.worst >= s.typical);
            // Bounded by a generous physical envelope (< 100 mV).
            prop_assert!(s.worst < Volts::from_millivolts(100.0));
        }
    }

    #[test]
    fn breakdown_mean_preserves_totals(
        loadline in 0.0f64..0.08,
        ir in 0.0f64..0.06,
        typ in 0.0f64..0.02,
        worst in 0.0f64..0.03,
        n in 1usize..12,
    ) {
        let b = DropBreakdown {
            loadline: Volts(loadline),
            ir_drop: Volts(ir),
            typical_didt: Volts(typ),
            worst_didt: Volts(worst),
        };
        let mean = DropBreakdown::mean_of(&vec![b; n]).unwrap();
        prop_assert!((mean.total() - b.total()).abs() < Volts(1e-12));
        prop_assert!((mean.passive() - b.passive()).abs() < Volts(1e-12));
    }

    #[test]
    fn rail_sensor_bias_is_additive_until_clamped(
        load in 0.0f64..100.0,
        bias in -50.0f64..50.0,
    ) {
        let mut rail = Rail::new(Volts(1.2), Ohms(0.45e-3));
        rail.inject_sensor_bias(Amps(bias));
        let sensed = rail.sensed_current(Amps(load));
        prop_assert!((sensed.0 - (load + bias).max(0.0)).abs() < 1e-12);
    }
}
