//! Voltage regulator module (VRM) model.
//!
//! The Power 720 server places both POWER7+ sockets on a common VRM chip
//! that generates an independent Vdd level per socket (the paper's Fig. 11).
//! Each rail sags linearly with its load current — the *loadline effect* —
//! and exposes a current sensor that the firmware (and our drop
//! decomposition, Sec. 4.3) reads.

use crate::error::PdnError;
use p7_types::{Amps, Ohms, SocketId, Volts, NUM_SOCKETS};
use serde::{Deserialize, Serialize};

/// One VRM output rail feeding a single socket.
///
/// # Examples
///
/// ```
/// use p7_pdn::Rail;
/// use p7_types::{Amps, Ohms, Volts};
///
/// let rail = Rail::new(Volts(1.2), Ohms(0.5e-3));
/// let out = rail.output(Amps(100.0));
/// assert!((out.millivolts() - 1150.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rail {
    set_point: Volts,
    loadline: Ohms,
    /// Additive current-sensor error used for failure injection.
    sensor_bias: Amps,
}

impl Rail {
    /// Creates a rail with the given set point and loadline resistance.
    #[must_use]
    pub fn new(set_point: Volts, loadline: Ohms) -> Self {
        Rail {
            set_point,
            loadline,
            sensor_bias: Amps::ZERO,
        }
    }

    /// The programmed (no-load) output voltage.
    #[must_use]
    pub fn set_point(&self) -> Volts {
        self.set_point
    }

    /// Reprograms the rail set point (the firmware's undervolting knob).
    pub fn set_set_point(&mut self, v: Volts) {
        self.set_point = v;
    }

    /// The loadline resistance of this rail.
    #[must_use]
    pub fn loadline(&self) -> Ohms {
        self.loadline
    }

    /// Voltage delivered at the socket input for a given load current.
    ///
    /// This is the loadline equation `V = V_set − R_LL · I`.
    #[must_use]
    pub fn output(&self, load: Amps) -> Volts {
        self.set_point - self.loadline * load
    }

    /// The loadline component of the drop alone.
    #[must_use]
    pub fn loadline_drop(&self, load: Amps) -> Volts {
        self.loadline * load
    }

    /// Reads the rail current sensor (true current plus injected bias).
    ///
    /// The paper reads these sensors to quantify passive drop (Sec. 4.3);
    /// [`Rail::inject_sensor_bias`] lets tests exercise a miscalibrated
    /// sensor.
    #[must_use]
    pub fn sensed_current(&self, true_current: Amps) -> Amps {
        (true_current + self.sensor_bias).max(Amps::ZERO)
    }

    /// Injects an additive current-sensor error (failure injection).
    pub fn inject_sensor_bias(&mut self, bias: Amps) {
        self.sensor_bias = bias;
    }
}

/// The shared VRM chip: one [`Rail`] per socket.
///
/// # Examples
///
/// ```
/// use p7_pdn::Vrm;
/// use p7_types::{Amps, Ohms, SocketId, Volts};
///
/// let mut vrm = Vrm::uniform(Volts(1.2), Ohms(0.4e-3)).unwrap();
/// let s1 = SocketId::new(1).unwrap();
/// vrm.rail_mut(s1).set_set_point(Volts(1.1));
/// assert!(vrm.rail(s1).output(Amps(50.0)) < Volts(1.1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vrm {
    rails: Vec<Rail>,
}

impl Vrm {
    /// Creates a VRM whose rails all share a set point and loadline.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::NonPositiveParameter`] when the loadline is not
    /// strictly positive or the set point is not positive and finite.
    pub fn uniform(set_point: Volts, loadline: Ohms) -> Result<Self, PdnError> {
        if !(loadline.0.is_finite() && loadline.0 > 0.0) {
            return Err(PdnError::NonPositiveParameter {
                name: "loadline",
                value: loadline.0,
            });
        }
        if !(set_point.0.is_finite() && set_point.0 > 0.0) {
            return Err(PdnError::NonPositiveParameter {
                name: "set_point",
                value: set_point.0,
            });
        }
        Ok(Vrm {
            rails: (0..NUM_SOCKETS)
                .map(|_| Rail::new(set_point, loadline))
                .collect(),
        })
    }

    /// Borrows the rail feeding `socket`.
    #[must_use]
    pub fn rail(&self, socket: SocketId) -> &Rail {
        &self.rails[socket.index()]
    }

    /// Mutably borrows the rail feeding `socket`.
    pub fn rail_mut(&mut self, socket: SocketId) -> &mut Rail {
        &mut self.rails[socket.index()]
    }

    /// Iterates over `(socket, rail)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SocketId, &Rail)> {
        SocketId::all().zip(self.rails.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadline_sags_linearly() {
        let rail = Rail::new(Volts(1.2), Ohms(0.5e-3));
        assert_eq!(rail.output(Amps(0.0)), Volts(1.2));
        let v50 = rail.output(Amps(50.0));
        let v100 = rail.output(Amps(100.0));
        // Equal current increments produce equal voltage decrements.
        assert!(((Volts(1.2) - v50).0 - (v50 - v100).0).abs() < 1e-12);
    }

    #[test]
    fn loadline_drop_matches_output() {
        let rail = Rail::new(Volts(1.15), Ohms(0.4e-3));
        let i = Amps(80.0);
        let expect = rail.set_point() - rail.loadline_drop(i);
        assert_eq!(rail.output(i), expect);
    }

    #[test]
    fn set_point_is_reprogrammable() {
        let mut rail = Rail::new(Volts(1.2), Ohms(0.4e-3));
        rail.set_set_point(Volts(1.1));
        assert_eq!(rail.set_point(), Volts(1.1));
        assert_eq!(rail.output(Amps(0.0)), Volts(1.1));
    }

    #[test]
    fn sensor_bias_injection() {
        let mut rail = Rail::new(Volts(1.2), Ohms(0.4e-3));
        assert_eq!(rail.sensed_current(Amps(50.0)), Amps(50.0));
        rail.inject_sensor_bias(Amps(5.0));
        assert_eq!(rail.sensed_current(Amps(50.0)), Amps(55.0));
        rail.inject_sensor_bias(Amps(-100.0));
        // A broken sensor never reports negative current.
        assert_eq!(rail.sensed_current(Amps(50.0)), Amps(0.0));
    }

    #[test]
    fn vrm_rails_are_independent() {
        let mut vrm = Vrm::uniform(Volts(1.2), Ohms(0.4e-3)).unwrap();
        let s0 = SocketId::new(0).unwrap();
        let s1 = SocketId::new(1).unwrap();
        vrm.rail_mut(s0).set_set_point(Volts(1.05));
        assert_eq!(vrm.rail(s0).set_point(), Volts(1.05));
        assert_eq!(vrm.rail(s1).set_point(), Volts(1.2));
    }

    #[test]
    fn vrm_rejects_bad_parameters() {
        assert!(Vrm::uniform(Volts(1.2), Ohms(0.0)).is_err());
        assert!(Vrm::uniform(Volts(-1.0), Ohms(0.4e-3)).is_err());
        assert!(Vrm::uniform(Volts(f64::INFINITY), Ohms(0.4e-3)).is_err());
    }

    #[test]
    fn vrm_iter_covers_all_sockets() {
        let vrm = Vrm::uniform(Volts(1.2), Ohms(0.4e-3)).unwrap();
        assert_eq!(vrm.iter().count(), NUM_SOCKETS);
    }
}
