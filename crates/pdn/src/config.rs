//! Configuration of the power-delivery network.

use crate::error::PdnError;
use p7_types::{Ohms, Volts};
use serde::{Deserialize, Serialize};

/// Resistive and noise parameters of the server's power delivery network.
///
/// The defaults ([`PdnConfig::power7plus`]) are calibrated against the
/// paper's measurements:
///
/// * Fig. 10a shows the passive drop (loadline + IR) rising from ~40 mV at
///   80 W to ~80 mV at 140 W — an effective large-signal resistance of
///   roughly 0.6–0.8 mΩ at 1.2 V,
/// * Fig. 7 shows each core's drop jumping ~2 % of Vdd (≈24 mV) the moment
///   that core itself becomes active, which sets the local grid resistance,
/// * neighbouring cores on the 2×4 floorplan couple weakly, giving the
///   "earlier cores rise first, then plateau" shape of Fig. 7.
///
/// # Examples
///
/// ```
/// use p7_pdn::PdnConfig;
///
/// let cfg = PdnConfig::power7plus();
/// cfg.validate().unwrap();
/// assert!(cfg.vrm_loadline.0 > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnConfig {
    /// VRM + board loadline resistance per socket rail.
    pub vrm_loadline: Ohms,
    /// Global on-chip grid resistance seen by the whole chip current.
    pub ir_global: Ohms,
    /// Local grid segment resistance seen by one core's own current.
    pub ir_local: Ohms,
    /// Coupling resistance to the currents of floorplan-adjacent cores.
    pub ir_neighbor: Ohms,
    /// Nominal supply voltage used to express drops as percentages.
    pub nominal_vdd: Volts,
}

impl PdnConfig {
    /// The calibrated POWER7+ / Power 720 parameter set.
    #[must_use]
    pub fn power7plus() -> Self {
        PdnConfig {
            vrm_loadline: Ohms(0.45e-3),
            ir_global: Ohms(0.32e-3),
            ir_local: Ohms(1.2e-3),
            ir_neighbor: Ohms(0.25e-3),
            nominal_vdd: Volts(1.2),
        }
    }

    /// Checks that every parameter is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::NonPositiveParameter`] when a resistance or the
    /// nominal voltage is zero, negative, or non-finite. The neighbour
    /// coupling may be zero (uncoupled cores) but not negative.
    pub fn validate(&self) -> Result<(), PdnError> {
        let strictly_positive = [
            ("vrm_loadline", self.vrm_loadline.0),
            ("ir_global", self.ir_global.0),
            ("ir_local", self.ir_local.0),
            ("nominal_vdd", self.nominal_vdd.0),
        ];
        for (name, value) in strictly_positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::NonPositiveParameter { name, value });
            }
        }
        if !(self.ir_neighbor.0.is_finite() && self.ir_neighbor.0 >= 0.0) {
            return Err(PdnError::NonPositiveParameter {
                name: "ir_neighbor",
                value: self.ir_neighbor.0,
            });
        }
        Ok(())
    }

    /// Effective chip-level passive resistance: loadline plus global IR.
    ///
    /// This is the slope of the paper's Fig. 10a (passive drop vs. chip
    /// power at fixed voltage).
    #[must_use]
    pub fn passive_resistance(&self) -> Ohms {
        Ohms(self.vrm_loadline.0 + self.ir_global.0)
    }
}

impl Default for PdnConfig {
    fn default() -> Self {
        PdnConfig::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PdnConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_loadline() {
        let cfg = PdnConfig {
            vrm_loadline: Ohms(0.0),
            ..PdnConfig::power7plus()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(
            err,
            PdnError::NonPositiveParameter {
                name: "vrm_loadline",
                ..
            }
        ));
    }

    #[test]
    fn rejects_negative_neighbor_coupling() {
        let cfg = PdnConfig {
            ir_neighbor: Ohms(-1e-4),
            ..PdnConfig::power7plus()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn allows_zero_neighbor_coupling() {
        let cfg = PdnConfig {
            ir_neighbor: Ohms(0.0),
            ..PdnConfig::power7plus()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_non_finite() {
        let cfg = PdnConfig {
            ir_global: Ohms(f64::NAN),
            ..PdnConfig::power7plus()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn passive_resistance_is_sum() {
        let cfg = PdnConfig::power7plus();
        let r = cfg.passive_resistance();
        assert!((r.0 - (cfg.vrm_loadline.0 + cfg.ir_global.0)).abs() < 1e-15);
    }

    #[test]
    fn calibration_matches_fig10a_scale() {
        // Fig. 10a: ~60 W of extra chip power (≈50 A at 1.2 V) adds ~40 mV
        // of passive drop — so R_passive·50 A should land near 40 mV within
        // a loose factor.
        let cfg = PdnConfig::power7plus();
        let drop_mv = cfg.passive_resistance().0 * 50.0 * 1000.0;
        assert!(
            (20.0..50.0).contains(&drop_mv),
            "passive drop for 50 A was {drop_mv} mV"
        );
    }
}
