//! Error types of the PDN crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or operating the power delivery model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A configuration parameter was zero, negative, or non-finite.
    NonPositiveParameter {
        /// Name of the offending field.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A current outside the model's physical envelope was supplied.
    CurrentOutOfRange {
        /// The rejected current in amperes.
        amps: f64,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::NonPositiveParameter { name, value } => {
                write!(
                    f,
                    "pdn parameter `{name}` must be positive and finite, got {value}"
                )
            }
            PdnError::CurrentOutOfRange { amps } => {
                write!(f, "current {amps} A is outside the model envelope")
            }
        }
    }
}

impl Error for PdnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let err = PdnError::NonPositiveParameter {
            name: "ir_local",
            value: -1.0,
        };
        let msg = format!("{err}");
        assert!(msg.contains("ir_local"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(PdnError::CurrentOutOfRange { amps: -3.0 });
    }
}
