//! On-chip IR-drop model over the 2×4 core floorplan.
//!
//! The paper's Fig. 7 shows three behaviours this model reproduces:
//!
//! 1. **Global** — every core's voltage sags as total chip current grows,
//!    whether or not that core is active (the shared Vdd plane),
//! 2. **Local** — a core's drop jumps by roughly 2 % of Vdd the moment the
//!    core itself starts drawing current,
//! 3. **Neighbour coupling** — activity on floorplan-adjacent cores raises a
//!    core's drop by a smaller amount, which makes the early-activated cores'
//!    curves rise first and then plateau.

use crate::config::PdnConfig;
use p7_types::{Amps, CoreId, Volts, CORES_PER_SOCKET};
use serde::{Deserialize, Serialize};

/// Resistive model of one chip's on-die power grid.
///
/// # Examples
///
/// ```
/// use p7_pdn::{PdnConfig, PdnGrid};
/// use p7_types::{Amps, Volts};
///
/// let grid = PdnGrid::new(&PdnConfig::power7plus());
/// let mut currents = [Amps(0.0); 8];
/// currents[2] = Amps(10.0);
/// let v = grid.core_voltages(Volts(1.18), &currents, Amps(18.0));
/// // Core 2 is active: deepest drop. Core 7 is far away: shallowest.
/// assert!(v[2] < v[1]);
/// assert!(v[1] < v[7] + p7_types::Volts(1e-6));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnGrid {
    config: PdnConfig,
}

impl PdnGrid {
    /// Builds the grid from a PDN configuration.
    #[must_use]
    pub fn new(config: &PdnConfig) -> Self {
        PdnGrid {
            config: config.clone(),
        }
    }

    /// The configuration this grid was built from.
    #[must_use]
    pub fn config(&self) -> &PdnConfig {
        &self.config
    }

    /// Computes the voltage each core sees given the chip input voltage,
    /// per-core currents, and the uncore (caches, nest) current.
    ///
    /// The model is `V_i = V_in − R_g·I_chip − R_l·I_i − R_n·Σ_adj I_j`,
    /// the same heuristic-equation class the paper validated against
    /// hardware (Sec. 4.3).
    #[must_use]
    pub fn core_voltages(
        &self,
        chip_input: Volts,
        core_currents: &[Amps; CORES_PER_SOCKET],
        uncore: Amps,
    ) -> [Volts; CORES_PER_SOCKET] {
        let total: Amps = core_currents.iter().copied().sum::<Amps>() + uncore;
        let global_drop = self.config.ir_global * total;
        let mut out = [Volts::ZERO; CORES_PER_SOCKET];
        for core in CoreId::all() {
            let local_drop = self.config.ir_local * core_currents[core.index()];
            let neighbor_current: Amps = CoreId::all()
                .filter(|other| core.is_adjacent(*other))
                .map(|other| core_currents[other.index()])
                .sum();
            let neighbor_drop = self.config.ir_neighbor * neighbor_current;
            out[core.index()] = chip_input - global_drop - local_drop - neighbor_drop;
        }
        out
    }

    /// Total chip current for a per-core current map plus uncore.
    #[must_use]
    pub fn total_current(&self, core_currents: &[Amps; CORES_PER_SOCKET], uncore: Amps) -> Amps {
        core_currents.iter().copied().sum::<Amps>() + uncore
    }

    /// The chip-global component of the IR drop for a given total current.
    #[must_use]
    pub fn global_drop(&self, total: Amps) -> Volts {
        self.config.ir_global * total
    }

    /// The local component of one core's IR drop (own plus neighbour
    /// current), excluding the global term.
    #[must_use]
    pub fn local_drop(&self, core: CoreId, core_currents: &[Amps; CORES_PER_SOCKET]) -> Volts {
        let own = self.config.ir_local * core_currents[core.index()];
        let neighbor: Amps = CoreId::all()
            .filter(|other| core.is_adjacent(*other))
            .map(|other| core_currents[other.index()])
            .sum();
        own + self.config.ir_neighbor * neighbor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PdnGrid {
        PdnGrid::new(&PdnConfig::power7plus())
    }

    fn currents(active: &[usize], per_core: f64) -> [Amps; 8] {
        let mut out = [Amps::ZERO; 8];
        for &i in active {
            out[i] = Amps(per_core);
        }
        out
    }

    #[test]
    fn idle_chip_sees_only_uncore_global_drop() {
        let g = grid();
        let v = g.core_voltages(Volts(1.2), &currents(&[], 0.0), Amps(20.0));
        let expect = Volts(1.2) - g.config().ir_global * Amps(20.0);
        for core_v in v {
            assert!((core_v - expect).abs() < Volts(1e-12));
        }
    }

    #[test]
    fn active_core_sees_deepest_drop() {
        let g = grid();
        let v = g.core_voltages(Volts(1.2), &currents(&[0], 12.0), Amps(20.0));
        for i in 1..8 {
            assert!(v[0] < v[i], "core 0 should be lowest, got {v:?}");
        }
    }

    #[test]
    fn neighbors_drop_more_than_distant_cores() {
        let g = grid();
        let v = g.core_voltages(Volts(1.2), &currents(&[0], 12.0), Amps(20.0));
        // Core 1 and core 4 are adjacent to core 0; core 7 is not.
        assert!(v[1] < v[7]);
        assert!(v[4] < v[7]);
        assert!((v[1] - v[4]).abs() < Volts(1e-12));
    }

    #[test]
    fn drop_is_global_even_for_idle_cores() {
        let g = grid();
        let quiet = g.core_voltages(Volts(1.2), &currents(&[0], 12.0), Amps(20.0));
        let busy = g.core_voltages(Volts(1.2), &currents(&[0, 1, 2, 3], 12.0), Amps(20.0));
        // Core 7 is idle in both cases but drops further when the upper row
        // is busy — the chip-wide behaviour of Fig. 7.
        assert!(busy[7] < quiet[7]);
    }

    #[test]
    fn own_activation_jumps_about_two_percent() {
        // Fig. 7: a core's drop increases ~2 % of Vdd when it activates.
        let g = grid();
        let before = g.core_voltages(Volts(1.2), &currents(&[0, 1, 2], 12.0), Amps(20.0));
        let after = g.core_voltages(Volts(1.2), &currents(&[0, 1, 2, 7], 12.0), Amps(20.0));
        let jump_pct = (before[7] - after[7]).0 / 1.2 * 100.0;
        assert!(
            (1.0..4.0).contains(&jump_pct),
            "activation jump was {jump_pct}% of Vdd"
        );
    }

    #[test]
    fn more_cores_monotonically_deepen_drop() {
        let g = grid();
        let mut last = Volts(2.0);
        for n in 1..=8 {
            let active: Vec<usize> = (0..n).collect();
            let v = g.core_voltages(Volts(1.2), &currents(&active, 11.0), Amps(20.0));
            assert!(v[0] < last);
            last = v[0];
        }
    }

    #[test]
    fn total_current_sums_cores_and_uncore() {
        let g = grid();
        let total = g.total_current(&currents(&[0, 1], 10.0), Amps(15.0));
        assert!((total.0 - 35.0).abs() < 1e-12);
    }

    #[test]
    fn local_plus_global_equals_full_model() {
        let g = grid();
        let cc = currents(&[0, 3, 5], 9.0);
        let uncore = Amps(22.0);
        let v = g.core_voltages(Volts(1.2), &cc, uncore);
        for core in CoreId::all() {
            let rebuilt =
                Volts(1.2) - g.global_drop(g.total_current(&cc, uncore)) - g.local_drop(core, &cc);
            assert!((v[core.index()] - rebuilt).abs() < Volts(1e-12));
        }
    }
}
