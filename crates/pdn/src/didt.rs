//! Stochastic di/dt (inductive) voltage-noise model.
//!
//! Sec. 4.3 of the paper distinguishes two di/dt regimes and measures how
//! each scales with the number of active cores:
//!
//! * **typical-case ripple** — regular current ripples from steady
//!   microarchitectural activity. With more active cores the ripples of
//!   independent cores *stagger* and partially cancel, so the chip-level
//!   typical noise **shrinks** (≈ `1/√n` smoothing).
//! * **worst-case droops** — rare, large droops caused by *aligned* current
//!   surges across cores (e.g. synchronized pipeline flushes or barrier
//!   wake-ups). Their magnitude **grows slightly** with core count because
//!   more cores give more opportunities for random alignment, but they occur
//!   infrequently.
//!
//! The model is statistical: per 32 ms observation window it produces the
//! mean ripple amplitude (what a sample-mode CPM sees) and the worst droop
//! in the window (what a sticky-mode CPM latches).

use crate::error::PdnError;
use p7_types::{Seconds, SplitMix64, Volts};
use serde::{Deserialize, Serialize};

/// Parameters of the di/dt noise model.
///
/// Defaults are calibrated so the decomposition of Fig. 9 comes out right:
/// at one active core the typical ripple is ~10–14 mV and the worst droop in
/// a window ~20–26 mV; at eight cores the typical ripple shrinks under 6 mV
/// while worst droops grow by ~30 %.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DidtConfig {
    /// Typical chip-level ripple amplitude with one fully active core.
    pub typical_base: Volts,
    /// Worst-case droop magnitude with one fully active core.
    pub worst_base: Volts,
    /// Relative growth of worst-case droops from 1 to 8 active cores.
    pub alignment_factor: f64,
    /// Exponent of the typical-ripple smoothing with core count
    /// (`typical ∝ n^-smoothing_exponent`).
    pub smoothing_exponent: f64,
    /// Mean rate of worst-case droop events, per second.
    pub droop_rate_hz: f64,
    /// Relative standard deviation of droop magnitudes.
    pub droop_jitter: f64,
}

impl DidtConfig {
    /// The calibrated POWER7+ parameter set.
    #[must_use]
    pub fn power7plus() -> Self {
        DidtConfig {
            typical_base: Volts::from_millivolts(12.0),
            worst_base: Volts::from_millivolts(22.0),
            alignment_factor: 0.32,
            smoothing_exponent: 0.5,
            droop_rate_hz: 60.0,
            droop_jitter: 0.10,
        }
    }

    /// Checks that every parameter is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::NonPositiveParameter`] for non-finite or negative
    /// amplitudes, rates, or exponents.
    pub fn validate(&self) -> Result<(), PdnError> {
        let non_negative = [
            ("typical_base", self.typical_base.0),
            ("worst_base", self.worst_base.0),
            ("alignment_factor", self.alignment_factor),
            ("smoothing_exponent", self.smoothing_exponent),
            ("droop_rate_hz", self.droop_rate_hz),
            ("droop_jitter", self.droop_jitter),
        ];
        for (name, value) in non_negative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(PdnError::NonPositiveParameter { name, value });
            }
        }
        Ok(())
    }

    /// A silent configuration: no di/dt noise at all (used by the
    /// `ablation_didt` experiment).
    #[must_use]
    pub fn disabled() -> Self {
        DidtConfig {
            typical_base: Volts::ZERO,
            worst_base: Volts::ZERO,
            alignment_factor: 0.0,
            smoothing_exponent: 0.5,
            droop_rate_hz: 0.0,
            droop_jitter: 0.0,
        }
    }
}

impl Default for DidtConfig {
    fn default() -> Self {
        DidtConfig::power7plus()
    }
}

/// The noise observed over one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DidtSample {
    /// Mean ripple amplitude during the window (sample-mode CPM view).
    pub typical: Volts,
    /// Deepest droop during the window (sticky-mode CPM view), measured
    /// from the mean voltage. Always at least as large as `typical`.
    pub worst: Volts,
    /// Number of worst-case droop events that occurred in the window.
    pub droop_events: u32,
}

/// Stateful stochastic generator of di/dt noise.
///
/// # Examples
///
/// ```
/// use p7_pdn::{DidtConfig, DidtModel};
/// use p7_types::Seconds;
///
/// let mut model = DidtModel::new(DidtConfig::power7plus(), 42);
/// let one = model.sample_window(1, 1.0, Seconds::from_millis(32.0));
/// let eight = model.sample_window(8, 1.0, Seconds::from_millis(32.0));
/// // Typical ripple smooths out as cores stagger.
/// assert!(eight.typical < one.typical);
/// ```
#[derive(Debug, Clone)]
pub struct DidtModel {
    config: DidtConfig,
    rng: SplitMix64,
}

impl DidtModel {
    /// Creates a model with its own deterministic noise stream.
    #[must_use]
    pub fn new(config: DidtConfig, seed: u64) -> Self {
        DidtModel {
            config,
            rng: SplitMix64::new(p7_types::seed_for(seed, "didt")),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DidtConfig {
        &self.config
    }

    /// Rewinds the noise stream to its construction state for `seed`,
    /// so a reused model replays exactly the sequence a fresh
    /// `DidtModel::new(config, seed)` would produce.
    pub fn reset(&mut self, seed: u64) {
        self.rng = SplitMix64::new(p7_types::seed_for(seed, "didt"));
    }

    /// Expected typical-case ripple for `active` cores at a given workload
    /// current variability (deterministic mean, no sampling noise).
    #[must_use]
    pub fn typical_ripple(&self, active: usize, variability: f64) -> Volts {
        if active == 0 {
            return Volts::ZERO;
        }
        let smoothing = (active as f64).powf(-self.config.smoothing_exponent);
        self.config.typical_base * variability.max(0.0) * smoothing
    }

    /// Expected worst-case droop magnitude for `active` cores (the mean of
    /// the event-magnitude distribution).
    #[must_use]
    pub fn worst_droop_magnitude(&self, active: usize, variability: f64) -> Volts {
        if active == 0 {
            return Volts::ZERO;
        }
        let alignment = 1.0 + self.config.alignment_factor * (active as f64 - 1.0) / 7.0;
        self.config.worst_base * variability.max(0.0) * alignment
    }

    /// Draws the noise for one observation window.
    ///
    /// `variability` is the workload's relative current-swing intensity
    /// (1.0 = PARSEC-average). The sticky (worst) value is the deepest of:
    /// the sampled droop events in the window, or a ~2σ excursion of the
    /// typical ripple when no event fired.
    pub fn sample_window(
        &mut self,
        active: usize,
        variability: f64,
        window: Seconds,
    ) -> DidtSample {
        if active == 0 {
            return DidtSample {
                typical: Volts::ZERO,
                worst: Volts::ZERO,
                droop_events: 0,
            };
        }
        let typical_mean = self.typical_ripple(active, variability);
        // Small window-to-window wander of the ripple amplitude.
        let typical = Volts((typical_mean.0 * (1.0 + 0.05 * self.rng.normal())).max(0.0));

        // Poisson droop arrivals over the window.
        let expected_events = self.config.droop_rate_hz * window.0;
        let events = self.sample_poisson(expected_events);
        let magnitude_mean = self.worst_droop_magnitude(active, variability);
        let mut worst = typical * 1.4; // ~peak of the regular ripple
        for _ in 0..events {
            let m =
                magnitude_mean.0 * (1.0 + self.config.droop_jitter * self.rng.normal()).max(0.2);
            worst = worst.max(Volts(m));
        }
        DidtSample {
            typical,
            worst: worst.max(typical),
            droop_events: events,
        }
    }

    /// Draws a Poisson count via inversion (adequate for small means).
    fn sample_poisson(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut product = self.rng.next_f64();
        let mut count = 0u32;
        while product > limit && count < 1000 {
            product *= self.rng.next_f64();
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DidtModel {
        DidtModel::new(DidtConfig::power7plus(), 7)
    }

    #[test]
    fn config_validates() {
        DidtConfig::power7plus().validate().unwrap();
        DidtConfig::disabled().validate().unwrap();
        let bad = DidtConfig {
            droop_rate_hz: -1.0,
            ..DidtConfig::power7plus()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn typical_ripple_shrinks_with_core_count() {
        let m = model();
        let mut last = Volts(1.0);
        for n in 1..=8 {
            let t = m.typical_ripple(n, 1.0);
            assert!(t < last, "ripple should shrink: {n} cores -> {t}");
            last = t;
        }
    }

    #[test]
    fn worst_droop_grows_with_core_count() {
        let m = model();
        let one = m.worst_droop_magnitude(1, 1.0);
        let eight = m.worst_droop_magnitude(8, 1.0);
        assert!(eight > one);
        let growth = eight / one;
        assert!((1.2..1.5).contains(&growth), "growth {growth}");
    }

    #[test]
    fn zero_active_cores_is_silent() {
        let mut m = model();
        let s = m.sample_window(0, 1.0, Seconds::from_millis(32.0));
        assert_eq!(s.typical, Volts::ZERO);
        assert_eq!(s.worst, Volts::ZERO);
        assert_eq!(s.droop_events, 0);
    }

    #[test]
    fn variability_scales_noise_linearly() {
        let m = model();
        let lo = m.typical_ripple(4, 0.5);
        let hi = m.typical_ripple(4, 1.0);
        assert!((hi.0 / lo.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn worst_is_never_below_typical() {
        let mut m = model();
        for n in 1..=8 {
            for _ in 0..200 {
                let s = m.sample_window(n, 1.0, Seconds::from_millis(32.0));
                assert!(s.worst >= s.typical);
            }
        }
    }

    #[test]
    fn sticky_exceeds_sample_on_average() {
        // Over many windows the sticky (worst) reading must be clearly
        // larger than the sample-mode ripple, as in the paper's Fig. 8.
        let mut m = model();
        let mut sum_typ = 0.0;
        let mut sum_worst = 0.0;
        for _ in 0..500 {
            let s = m.sample_window(4, 1.0, Seconds::from_millis(32.0));
            sum_typ += s.typical.0;
            sum_worst += s.worst.0;
        }
        assert!(sum_worst > 1.5 * sum_typ);
    }

    #[test]
    fn disabled_config_produces_zero_noise() {
        let mut m = DidtModel::new(DidtConfig::disabled(), 1);
        let s = m.sample_window(8, 1.0, Seconds::from_millis(32.0));
        assert_eq!(s.typical, Volts::ZERO);
        assert_eq!(s.worst, Volts::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = DidtModel::new(DidtConfig::power7plus(), 99);
        let mut b = DidtModel::new(DidtConfig::power7plus(), 99);
        for _ in 0..50 {
            let sa = a.sample_window(6, 1.0, Seconds::from_millis(32.0));
            let sb = b.sample_window(6, 1.0, Seconds::from_millis(32.0));
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn reset_replays_the_stream() {
        let mut m = DidtModel::new(DidtConfig::power7plus(), 31);
        let first: Vec<DidtSample> = (0..10)
            .map(|_| m.sample_window(4, 1.0, Seconds::from_millis(32.0)))
            .collect();
        m.reset(31);
        for s in first {
            assert_eq!(s, m.sample_window(4, 1.0, Seconds::from_millis(32.0)));
        }
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut m = model();
        let windows = 3000;
        let mut events = 0u64;
        for _ in 0..windows {
            events += u64::from(
                m.sample_window(2, 1.0, Seconds::from_millis(32.0))
                    .droop_events,
            );
        }
        let mean = events as f64 / windows as f64;
        let expected = 60.0 * 0.032;
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean}, expected {expected}"
        );
    }
}
