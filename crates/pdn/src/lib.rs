//! Power-delivery-network substrate for the POWER7+ adaptive-guardband
//! simulator.
//!
//! The paper ("Adaptive Guardband Scheduling to Improve System-Level
//! Efficiency of the POWER7+", MICRO-48 2015) decomposes the on-chip voltage
//! drop into four components (its Fig. 8):
//!
//! * **VRM loadline** — the regulator output sags linearly with load current,
//! * **IR drop** — resistive drop across the board/package/on-chip grid,
//! * **typical-case di/dt** — steady current ripple from regular activity,
//! * **worst-case di/dt** — rare inductive droops from aligned current surges.
//!
//! This crate models each component:
//!
//! * [`vrm`] — the shared voltage regulator module with one rail (loadline)
//!   per socket and a current sensor per rail,
//! * [`ir_drop`] — the on-chip power grid over the 2×4 core floorplan with
//!   global, local, and neighbour-coupled resistive components,
//! * [`didt`] — a stochastic model of typical ripple (which smooths as more
//!   cores stagger their activity) and worst-case droops (which grow with
//!   core count through alignment),
//! * [`decompose`] — the [`DropBreakdown`] record the paper's Fig. 9 plots.
//!
//! # Examples
//!
//! ```
//! use p7_pdn::{PdnConfig, PdnGrid, Rail};
//! use p7_types::{Amps, Volts};
//!
//! let cfg = PdnConfig::power7plus();
//! let rail = Rail::new(Volts(1.2), cfg.vrm_loadline);
//! let grid = PdnGrid::new(&cfg);
//!
//! // One busy core drawing 12 A plus 20 A of uncore current.
//! let mut core_currents = [Amps(0.0); 8];
//! core_currents[0] = Amps(12.0);
//! let chip_in = rail.output(Amps(32.0));
//! let v = grid.core_voltages(chip_in, &core_currents, Amps(20.0));
//! assert!(v[0] < chip_in); // the active core sees the deepest drop
//! assert!(v[0] < v[7]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod decompose;
pub mod didt;
pub mod error;
pub mod ir_drop;
pub mod vrm;

pub use config::PdnConfig;
pub use decompose::DropBreakdown;
pub use didt::{DidtConfig, DidtModel, DidtSample};
pub use error::PdnError;
pub use ir_drop::PdnGrid;
pub use vrm::{Rail, Vrm};
