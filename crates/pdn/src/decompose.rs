//! Voltage-drop decomposition record (the paper's Fig. 8 / Fig. 9).
//!
//! The paper attributes the gap between the VRM set point and the voltage
//! the transistors actually need to four components. [`DropBreakdown`]
//! carries one such decomposition; the simulator produces one per core per
//! observation window, and the `fig09` harness plots their stack.

use p7_types::Volts;
use serde::{Deserialize, Serialize};

/// One decomposed on-chip voltage drop.
///
/// # Examples
///
/// ```
/// use p7_pdn::DropBreakdown;
/// use p7_types::Volts;
///
/// let b = DropBreakdown {
///     loadline: Volts::from_millivolts(30.0),
///     ir_drop: Volts::from_millivolts(25.0),
///     typical_didt: Volts::from_millivolts(8.0),
///     worst_didt: Volts::from_millivolts(14.0),
/// };
/// assert!((b.passive().millivolts() - 55.0).abs() < 1e-9);
/// assert!((b.total().millivolts() - 77.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DropBreakdown {
    /// VRM loadline component (`R_LL · I_socket`).
    pub loadline: Volts,
    /// Resistive drop across the board/package/on-chip grid.
    pub ir_drop: Volts,
    /// Typical-case di/dt ripple amplitude.
    pub typical_didt: Volts,
    /// Worst-case di/dt droop *beyond* the typical ripple.
    pub worst_didt: Volts,
}

impl DropBreakdown {
    /// The passive component: loadline plus IR drop.
    ///
    /// Sec. 4.3 identifies this as the component that erodes adaptive
    /// guardbanding's efficiency, because it is always present (unlike the
    /// rare worst-case droops, which the DPLL rides out).
    #[must_use]
    pub fn passive(&self) -> Volts {
        self.loadline + self.ir_drop
    }

    /// The total drop including the worst observed droop.
    #[must_use]
    pub fn total(&self) -> Volts {
        self.passive() + self.typical_didt + self.worst_didt
    }

    /// The steady drop an averaging (sample-mode) observer sees: passive
    /// plus typical ripple, without worst-case events.
    #[must_use]
    pub fn steady(&self) -> Volts {
        self.passive() + self.typical_didt
    }

    /// Expresses the total drop as a percentage of `nominal`.
    #[must_use]
    pub fn total_percent_of(&self, nominal: Volts) -> f64 {
        self.total() / nominal * 100.0
    }

    /// Element-wise mean of a set of breakdowns; `None` when empty.
    #[must_use]
    pub fn mean_of(items: &[DropBreakdown]) -> Option<DropBreakdown> {
        if items.is_empty() {
            return None;
        }
        let n = items.len() as f64;
        let mut acc = DropBreakdown::default();
        for b in items {
            acc.loadline += b.loadline;
            acc.ir_drop += b.ir_drop;
            acc.typical_didt += b.typical_didt;
            acc.worst_didt += b.worst_didt;
        }
        Some(DropBreakdown {
            loadline: acc.loadline / n,
            ir_drop: acc.ir_drop / n,
            typical_didt: acc.typical_didt / n,
            worst_didt: acc.worst_didt / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DropBreakdown {
        DropBreakdown {
            loadline: Volts::from_millivolts(30.0),
            ir_drop: Volts::from_millivolts(20.0),
            typical_didt: Volts::from_millivolts(10.0),
            worst_didt: Volts::from_millivolts(15.0),
        }
    }

    #[test]
    fn totals_add_up() {
        let b = sample();
        assert!((b.passive().millivolts() - 50.0).abs() < 1e-9);
        assert!((b.steady().millivolts() - 60.0).abs() < 1e-9);
        assert!((b.total().millivolts() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn percent_of_nominal() {
        let b = sample();
        let pct = b.total_percent_of(Volts(1.2));
        assert!((pct - 6.25).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(DropBreakdown::mean_of(&[]).is_none());
    }

    #[test]
    fn mean_of_identical_is_identity() {
        let b = sample();
        let mean = DropBreakdown::mean_of(&[b, b, b]).unwrap();
        assert!((mean.total() - b.total()).abs() < Volts(1e-12));
    }

    #[test]
    fn mean_averages_components() {
        let a = DropBreakdown {
            loadline: Volts(0.02),
            ..DropBreakdown::default()
        };
        let b = DropBreakdown {
            loadline: Volts(0.04),
            ..DropBreakdown::default()
        };
        let mean = DropBreakdown::mean_of(&[a, b]).unwrap();
        assert!((mean.loadline.0 - 0.03).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(DropBreakdown::default().total(), Volts::ZERO);
    }
}
