//! Property-based tests of the AGS schedulers and models.

use ags_core::{FreqQosModel, MipsFrequencyPredictor, QosMonitor, QosSpec};
use p7_types::{MegaHertz, Seconds};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = (f64, f64)> {
    // intercept (MHz), negative slope (MHz per MIPS)
    (4400.0f64..4800.0, -0.01f64..-0.0001)
}

proptest! {
    #[test]
    fn predictor_recovers_any_line_exactly(
        (intercept, slope) in arb_line(),
        xs in prop::collection::vec(1000.0f64..90_000.0, 3..30),
    ) {
        // Degenerate inputs (all x equal) are rejected; skip them.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1.0);
        let data: Vec<(f64, f64)> = xs.iter().map(|&x| (x, intercept + slope * x)).collect();
        let model = MipsFrequencyPredictor::fit(&data).unwrap();
        prop_assert!((model.slope_mhz_per_mips() - slope).abs() < 1e-9);
        prop_assert!(model.rmse_mhz() < 1e-6);
        // Budget inversion round-trips.
        let f = MegaHertz(intercept + slope * 40_000.0);
        prop_assert!((model.mips_budget_for(f) - 40_000.0).abs() < 1e-3);
    }

    #[test]
    fn predictor_rmse_is_nonnegative_and_scale_free(
        (intercept, slope) in arb_line(),
        noise in prop::collection::vec(-20.0f64..20.0, 5..20),
    ) {
        let data: Vec<(f64, f64)> = noise
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let x = 5000.0 + 4000.0 * i as f64;
                (x, intercept + slope * x + n)
            })
            .collect();
        let model = MipsFrequencyPredictor::fit(&data).unwrap();
        prop_assert!(model.rmse_mhz() >= 0.0);
        prop_assert!(model.rmse_percent() >= 0.0);
        // OLS residual RMSE can never exceed the largest noise magnitude.
        let max_noise = noise.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        prop_assert!(model.rmse_mhz() <= max_noise + 1e-9);
    }

    #[test]
    fn qos_monitor_rate_matches_the_observations(
        p90s in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        let spec = QosSpec::websearch();
        let mut monitor = QosMonitor::new(spec, 100);
        for &p in &p90s {
            monitor.observe(p);
        }
        let expected =
            p90s.iter().filter(|&&p| p > 0.5).count() as f64 / p90s.len() as f64;
        prop_assert!((monitor.violation_rate() - expected).abs() < 1e-12);
        prop_assert!((monitor.lifetime_violation_rate() - expected).abs() < 1e-12);
        prop_assert_eq!(monitor.needs_action(), expected > spec.violation_threshold);
    }

    #[test]
    fn freq_qos_inversion_always_lands_on_target(
        base in 0.2f64..0.6,
        slope_per_100mhz in 0.02f64..0.2,
        target in 0.25f64..0.55,
    ) {
        let mut model = FreqQosModel::new();
        for i in 0..6 {
            let f = 4400.0 + 50.0 * f64::from(i);
            let p90 = base - slope_per_100mhz * (f - 4400.0) / 100.0;
            model.observe(MegaHertz(f), p90);
        }
        let Ok(needed) = model.frequency_for(Seconds(target)) else {
            // A flat-enough line may be judged insensitive; that is fine.
            return Ok(());
        };
        let predicted = model.predict_p90(needed).unwrap();
        prop_assert!((predicted.0 - target).abs() < 1e-9);
    }
}
