//! The learned frequency–QoS model (the upper shaded box of Fig. 18).
//!
//! The scheduler logs `(chip frequency, p90 latency)` pairs for the
//! critical application and fits a linear relation, then inverts it to
//! answer "what frequency do I need for my latency target?". Combined
//! with the MIPS-based frequency predictor this closes the loop: QoS
//! target → required frequency → admissible co-runner MIPS budget.

use crate::error::AgsError;
use p7_types::{MegaHertz, Seconds};
use serde::{Deserialize, Serialize};

/// An online-fitted linear `p90 = a + b · frequency` model (b < 0: faster
/// clocks mean shorter tails).
///
/// # Examples
///
/// ```
/// use ags_core::FreqQosModel;
/// use p7_types::{MegaHertz, Seconds};
///
/// let mut model = FreqQosModel::new();
/// model.observe(MegaHertz(4450.0), 0.52);
/// model.observe(MegaHertz(4500.0), 0.42);
/// model.observe(MegaHertz(4550.0), 0.33);
/// let needed = model.frequency_for(Seconds(0.45))?;
/// assert!(needed.0 > 4450.0 && needed.0 < 4550.0);
/// # Ok::<(), ags_core::AgsError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FreqQosModel {
    points: Vec<(f64, f64)>,
}

impl FreqQosModel {
    /// Minimum observations before the model can be inverted.
    pub const MIN_POINTS: usize = 3;

    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        FreqQosModel::default()
    }

    /// Appends one observation of the critical app's p90 latency at a
    /// chip frequency.
    pub fn observe(&mut self, freq: MegaHertz, p90_seconds: f64) {
        self.points.push((freq.0, p90_seconds));
    }

    /// Number of observations so far.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.points.len()
    }

    /// Least-squares fit of `(slope, intercept)` for `p90 = a + b·f`.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::InsufficientData`] below
    /// [`FreqQosModel::MIN_POINTS`] and [`AgsError::ModelNotFitted`] when
    /// the frequencies are degenerate.
    pub fn fit(&self) -> Result<(f64, f64), AgsError> {
        if self.points.len() < Self::MIN_POINTS {
            return Err(AgsError::InsufficientData {
                points: self.points.len(),
                required: Self::MIN_POINTS,
            });
        }
        let n = self.points.len() as f64;
        let mx = self.points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let my = self.points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = self.points.iter().map(|(x, _)| (x - mx).powi(2)).sum();
        if sxx < 1e-9 {
            return Err(AgsError::ModelNotFitted {
                model: "frequency-qos (degenerate frequencies)",
            });
        }
        let sxy: f64 = self.points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        Ok((slope, my - slope * mx))
    }

    /// Predicted p90 latency at a chip frequency.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn predict_p90(&self, freq: MegaHertz) -> Result<Seconds, AgsError> {
        let (slope, intercept) = self.fit()?;
        Ok(Seconds(intercept + slope * freq.0))
    }

    /// The chip frequency needed to bring the predicted p90 down to
    /// `target` (clamped below by zero slope protection).
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::ModelNotFitted`] when latency does not improve
    /// with frequency in the data (non-negative slope), plus fitting
    /// errors.
    pub fn frequency_for(&self, target: Seconds) -> Result<MegaHertz, AgsError> {
        let (slope, intercept) = self.fit()?;
        if slope >= 0.0 {
            return Err(AgsError::ModelNotFitted {
                model: "frequency-qos (latency not frequency-sensitive)",
            });
        }
        Ok(MegaHertz((target.0 - intercept) / slope))
    }

    /// True when the fitted model shows meaningful frequency sensitivity
    /// (the "QoS sensitive to frequency?" decision diamond of Fig. 18).
    #[must_use]
    pub fn is_frequency_sensitive(&self) -> bool {
        match self.fit() {
            // More than 0.1 ms of p90 per 10 MHz is actionable.
            Ok((slope, _)) => slope < -1e-5,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> FreqQosModel {
        let mut m = FreqQosModel::new();
        for (f, p) in [
            (4440.0, 0.55),
            (4480.0, 0.46),
            (4520.0, 0.38),
            (4560.0, 0.29),
        ] {
            m.observe(MegaHertz(f), p);
        }
        m
    }

    #[test]
    fn fit_and_invert_round_trip() {
        let m = seeded();
        let f = m.frequency_for(Seconds(0.4)).unwrap();
        let p = m.predict_p90(f).unwrap();
        assert!((p.0 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_detection() {
        let m = seeded();
        assert!(m.is_frequency_sensitive());

        let mut flat = FreqQosModel::new();
        for f in [4440.0, 4480.0, 4520.0] {
            flat.observe(MegaHertz(f), 0.4);
        }
        assert!(!flat.is_frequency_sensitive());
    }

    #[test]
    fn insufficient_data_is_typed() {
        let mut m = FreqQosModel::new();
        m.observe(MegaHertz(4500.0), 0.4);
        assert!(matches!(
            m.predict_p90(MegaHertz(4500.0)),
            Err(AgsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn inverted_slope_is_rejected() {
        let mut m = FreqQosModel::new();
        for (f, p) in [(4440.0, 0.3), (4480.0, 0.4), (4520.0, 0.5)] {
            m.observe(MegaHertz(f), p);
        }
        assert!(matches!(
            m.frequency_for(Seconds(0.4)),
            Err(AgsError::ModelNotFitted { .. })
        ));
    }

    #[test]
    fn degenerate_frequencies_rejected() {
        let mut m = FreqQosModel::new();
        for p in [0.3, 0.4, 0.5] {
            m.observe(MegaHertz(4500.0), p);
        }
        assert!(m.fit().is_err());
    }
}
