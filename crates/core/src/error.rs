//! Error types of the AGS crate.

use p7_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced by the AGS schedulers.
#[derive(Debug)]
#[non_exhaustive]
pub enum AgsError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// A model was used before it was fitted.
    ModelNotFitted {
        /// Which model.
        model: &'static str,
    },
    /// Not enough data points to fit a model.
    InsufficientData {
        /// How many points were supplied.
        points: usize,
        /// How many are required.
        required: usize,
    },
    /// No co-runner in the pool satisfies the constraint.
    NoFeasibleCoRunner {
        /// The frequency the QoS target requires, in MHz.
        required_mhz: f64,
    },
}

impl fmt::Display for AgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgsError::Sim(e) => write!(f, "simulation: {e}"),
            AgsError::ModelNotFitted { model } => {
                write!(f, "model `{model}` used before fitting")
            }
            AgsError::InsufficientData { points, required } => {
                write!(f, "need {required} data points to fit, got {points}")
            }
            AgsError::NoFeasibleCoRunner { required_mhz } => {
                write!(
                    f,
                    "no co-runner keeps chip frequency above {required_mhz} MHz"
                )
            }
        }
    }
}

impl Error for AgsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AgsError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for AgsError {
    fn from(e: SimError) -> Self {
        AgsError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = AgsError::InsufficientData {
            points: 1,
            required: 2,
        };
        assert!(format!("{err}").contains("need 2"));
    }

    #[test]
    fn sim_errors_keep_source() {
        let err: AgsError = SimError::InvalidConfig { reason: "x" }.into();
        assert!(err.source().is_some());
    }
}
