//! The MIPS-based frequency predictor (Sec. 5.2.1, Fig. 16).
//!
//! Chip power tracks aggregate instruction throughput to first order, and
//! adaptive guardbanding's frequency choice tracks chip power through the
//! passive drop (Fig. 10). Composing the two, a *linear* model from chip
//! total MIPS to chip frequency predicts what frequency any hypothetical
//! workload combination will get — fast enough to explore the combination
//! space every scheduling quantum, and deployable from existing hardware
//! performance counters. The paper reports a root-mean-square error of
//! only 0.3 %.

use crate::error::AgsError;
use p7_control::GuardbandMode;
use p7_sim::{Assignment, Experiment};
use p7_types::MegaHertz;
use p7_workloads::{Catalog, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// A fitted `frequency = intercept + slope · MIPS` model.
///
/// # Examples
///
/// ```
/// use ags_core::MipsFrequencyPredictor;
///
/// let data = [
///     (10_000.0, 4590.0),
///     (30_000.0, 4520.0),
///     (50_000.0, 4470.0),
///     (70_000.0, 4400.0),
/// ];
/// let model = MipsFrequencyPredictor::fit(&data)?;
/// assert!(model.slope_mhz_per_mips() < 0.0);
/// let f = model.predict(40_000.0);
/// assert!(f.0 > 4400.0 && f.0 < 4590.0);
/// # Ok::<(), ags_core::AgsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MipsFrequencyPredictor {
    intercept: f64,
    slope: f64,
    rmse_mhz: f64,
    rmse_percent: f64,
    samples: usize,
}

impl MipsFrequencyPredictor {
    /// Fits the model by ordinary least squares on `(chip_mips, freq_mhz)`
    /// points.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::InsufficientData`] with fewer than three
    /// points, and [`AgsError::ModelNotFitted`] when the MIPS values are
    /// degenerate (zero variance).
    pub fn fit(data: &[(f64, f64)]) -> Result<Self, AgsError> {
        if data.len() < 3 {
            return Err(AgsError::InsufficientData {
                points: data.len(),
                required: 3,
            });
        }
        let n = data.len() as f64;
        let mean_x = data.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = data.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = data.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        if sxx < 1e-9 {
            return Err(AgsError::ModelNotFitted {
                model: "mips-frequency (degenerate inputs)",
            });
        }
        let sxy: f64 = data.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let sse: f64 = data
            .iter()
            .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
            .sum();
        let rmse_mhz = (sse / n).sqrt();
        Ok(MipsFrequencyPredictor {
            intercept,
            slope,
            rmse_mhz,
            rmse_percent: rmse_mhz / mean_y * 100.0,
            samples: data.len(),
        })
    }

    /// Trains the predictor the way the paper does: measure adaptive
    /// guardbanding's frequency choice with all eight cores stressed by
    /// every PARSEC, SPLASH-2 and SPECrate workload.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when a training run fails.
    pub fn train_on_catalog(experiment: &Experiment, catalog: &Catalog) -> Result<Self, AgsError> {
        let mut data = Vec::new();
        for w in catalog.scatter_set() {
            let (mips, freq) = measure_point(experiment, w)?;
            data.push((mips, freq.0));
        }
        MipsFrequencyPredictor::fit(&data)
    }

    /// Predicted chip frequency for a chip-total MIPS value.
    #[must_use]
    pub fn predict(&self, chip_mips: f64) -> MegaHertz {
        MegaHertz(self.intercept + self.slope * chip_mips)
    }

    /// The fitted slope (MHz per MIPS); negative on a loadline-limited
    /// system.
    #[must_use]
    pub fn slope_mhz_per_mips(&self) -> f64 {
        self.slope
    }

    /// Root-mean-square error of the fit in MHz.
    #[must_use]
    pub fn rmse_mhz(&self) -> f64 {
        self.rmse_mhz
    }

    /// Root-mean-square error as a percentage of the mean frequency —
    /// the paper's reported 0.3 % metric.
    #[must_use]
    pub fn rmse_percent(&self) -> f64 {
        self.rmse_percent
    }

    /// Number of training samples.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The largest chip MIPS that still predicts at least `freq` — the
    /// budget the scheduler can hand to co-runners.
    #[must_use]
    pub fn mips_budget_for(&self, freq: MegaHertz) -> f64 {
        if self.slope.abs() < 1e-12 {
            return f64::INFINITY;
        }
        (freq.0 - self.intercept) / self.slope
    }
}

/// Measures one training point: all eight cores stressed by `workload` in
/// frequency-boosting mode.
///
/// # Errors
///
/// Returns [`AgsError::Sim`] when the run fails.
pub fn measure_point(
    experiment: &Experiment,
    workload: &WorkloadProfile,
) -> Result<(f64, MegaHertz), AgsError> {
    let assignment = Assignment::single_socket(workload, 8)?;
    let outcome = experiment.run(&assignment, GuardbandMode::Overclock)?;
    let freq = outcome.summary.avg_running_freq;
    let ratio = outcome
        .summary
        .freq_ratio(experiment.config().target_frequency);
    let mips = workload.chip_mips(8, ratio);
    Ok((mips, freq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let data: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = 1000.0 * f64::from(i);
                (x, 4600.0 - 0.002 * x)
            })
            .collect();
        let m = MipsFrequencyPredictor::fit(&data).unwrap();
        assert!((m.slope_mhz_per_mips() + 0.002).abs() < 1e-9);
        assert!(m.rmse_mhz() < 1e-6);
        assert!((m.predict(5000.0).0 - 4590.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_tiny_datasets() {
        assert!(matches!(
            MipsFrequencyPredictor::fit(&[(1.0, 2.0)]),
            Err(AgsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let data = [(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)];
        assert!(matches!(
            MipsFrequencyPredictor::fit(&data),
            Err(AgsError::ModelNotFitted { .. })
        ));
    }

    #[test]
    fn mips_budget_inverts_prediction() {
        let data = [(0.0, 4600.0), (10_000.0, 4550.0), (20_000.0, 4500.0)];
        let m = MipsFrequencyPredictor::fit(&data).unwrap();
        let budget = m.mips_budget_for(MegaHertz(4525.0));
        assert!((budget - 15_000.0).abs() < 1e-6);
    }

    #[test]
    fn trained_model_matches_paper_shape() {
        // Training over the whole catalog is the fig16 harness's job; a
        // small subset keeps this unit test quick while still checking
        // slope sign and error scale.
        let exp = Experiment::power7plus(42).with_ticks(20, 10);
        let cat = Catalog::power7plus();
        let mut data = Vec::new();
        for name in ["mcf", "radix", "gcc", "raytrace", "swaptions", "povray"] {
            let (mips, f) = measure_point(&exp, cat.get(name).unwrap()).unwrap();
            data.push((mips, f.0));
        }
        let m = MipsFrequencyPredictor::fit(&data).unwrap();
        assert!(
            m.slope_mhz_per_mips() < 0.0,
            "higher MIPS must predict lower frequency"
        );
        assert!(m.rmse_percent() < 1.0, "rmse {}%", m.rmse_percent());
        // Light workloads should be predicted faster than heavy ones.
        assert!(m.predict(13_000.0) > m.predict(70_000.0));
    }
}
