//! The umbrella AGS scheduler: pick the right policy for the scenario.
//!
//! Sec. 5 frames AGS around two enterprise scenarios:
//!
//! * **under-utilized server** → loadline borrowing decides *where*
//!   threads go (balance vs. consolidate),
//! * **highly utilized server with a critical job** → adaptive mapping
//!   decides *who* shares the chip with the critical job.
//!
//! [`AgsScheduler`] exposes both decisions behind one facade.

use crate::adaptive_mapping::AdaptiveMappingScheduler;
use crate::error::AgsError;
use crate::jobs::JobSpec;
use crate::loadline_borrowing::LoadlineBorrowing;
use crate::predictor::MipsFrequencyPredictor;
use p7_sim::{Assignment, Experiment, Outcome};
use p7_workloads::{WebSearch, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Which placement the scheduler chose and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// The chosen assignment.
    pub assignment: Assignment,
    /// True when loadline borrowing won over consolidation.
    pub borrowed: bool,
    /// Predicted energy of the chosen schedule, joules.
    pub energy_joules: f64,
    /// Energy advantage over the rejected schedule, percent.
    pub advantage_percent: f64,
}

/// The system-level adaptive guardband scheduler.
///
/// # Examples
///
/// ```
/// use ags_core::AgsScheduler;
/// use p7_sim::Experiment;
/// use p7_workloads::Catalog;
///
/// let ags = AgsScheduler::new(Experiment::power7plus(42).with_ticks(20, 10));
/// let radix = Catalog::power7plus().get("radix").unwrap().clone();
/// // Bandwidth-starved workload on a half-empty server: borrowing wins.
/// let decision = ags.place(&radix, 8)?;
/// assert!(decision.borrowed);
/// # Ok::<(), ags_core::AgsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgsScheduler {
    experiment: Experiment,
}

impl AgsScheduler {
    /// Creates a scheduler over the given experiment runner.
    #[must_use]
    pub fn new(experiment: Experiment) -> Self {
        AgsScheduler { experiment }
    }

    /// The experiment runner in use.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// Decides where `threads` threads of `workload` should run on the
    /// two-socket server by evaluating consolidation against loadline
    /// borrowing and picking the lower-energy schedule.
    ///
    /// Energy (rather than power) is the criterion so communication-heavy
    /// workloads, which slow down when split, are correctly consolidated
    /// (the paper's Fig. 14 left side) while everything else is borrowed.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when a run fails.
    pub fn place(
        &self,
        workload: &WorkloadProfile,
        threads: usize,
    ) -> Result<PlacementDecision, AgsError> {
        let lb = LoadlineBorrowing::new(self.experiment.clone());
        let eval = lb.evaluate(workload, threads)?;
        let pick_borrowed = eval.borrowed.energy.0 < eval.consolidated.energy.0;
        let (chosen, rejected, assignment): (&Outcome, &Outcome, Assignment) = if pick_borrowed {
            (
                &eval.borrowed,
                &eval.consolidated,
                Assignment::borrowed(workload, threads)?,
            )
        } else {
            (
                &eval.consolidated,
                &eval.borrowed,
                Assignment::consolidated(workload, threads)?,
            )
        };
        Ok(PlacementDecision {
            assignment,
            borrowed: pick_borrowed,
            energy_joules: chosen.energy.0,
            advantage_percent: (rejected.energy.0 / chosen.energy.0 - 1.0) * 100.0,
        })
    }

    /// Builds the adaptive-mapping colocation scheduler for a critical
    /// job, training the MIPS frequency predictor first.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError`] when training fails or the job has no SLA.
    pub fn colocation_scheduler(
        &self,
        job: JobSpec,
        service: WebSearch,
        pool: Vec<WorkloadProfile>,
        initial: usize,
        training: &[(f64, f64)],
        seed: u64,
    ) -> Result<AdaptiveMappingScheduler, AgsError> {
        let predictor = MipsFrequencyPredictor::fit(training)?;
        AdaptiveMappingScheduler::new(
            self.experiment.clone(),
            predictor,
            job,
            service,
            pool,
            initial,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    fn ags() -> AgsScheduler {
        AgsScheduler::new(Experiment::power7plus(42).with_ticks(20, 10))
    }

    #[test]
    fn bandwidth_bound_workloads_are_borrowed() {
        let radix = Catalog::power7plus().get("radix").unwrap().clone();
        let d = ags().place(&radix, 8).unwrap();
        assert!(d.borrowed);
        assert!(
            d.advantage_percent > 10.0,
            "advantage {}%",
            d.advantage_percent
        );
    }

    #[test]
    fn comm_heavy_workloads_are_consolidated() {
        let lu_ncb = Catalog::power7plus().get("lu_ncb").unwrap().clone();
        let d = ags().place(&lu_ncb, 8).unwrap();
        assert!(!d.borrowed, "lu_ncb should stay consolidated");
    }

    #[test]
    fn decision_carries_the_right_assignment() {
        let radix = Catalog::power7plus().get("radix").unwrap().clone();
        let d = ags().place(&radix, 6).unwrap();
        if d.borrowed {
            assert_eq!(d.assignment.placement_shape().threads_per_socket(), [3, 3]);
        } else {
            assert_eq!(d.assignment.placement_shape().threads_per_socket(), [6, 0]);
        }
    }
}
