//! Cluster-level scheduling — the paper's future-work extension.
//!
//! Sec. 5.1.1 ends: "When workloads are consolidated across multiple
//! servers, the idle power reduction from turning off the unused memory
//! and hard drive outweighs adaptive guardbanding's processor power
//! savings. In this case, the scheduler will consolidate workloads onto
//! fewer servers first, then on each server loadline borrowing can be
//! used to further improve cluster power consumption."
//!
//! [`ClusterScheduler`] implements exactly that two-level policy and a
//! naive thread-spreading baseline to compare against: platform power
//! (memory, disks, NICs) dominates across servers, so consolidate at the
//! server level; the loadline dominates within a server, so borrow at the
//! socket level.

use crate::error::AgsError;
use crate::scheduler::AgsScheduler;
use p7_sim::Experiment;
use p7_types::Watts;
use p7_workloads::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Cores available per server (two 8-core sockets).
pub const CORES_PER_SERVER: usize = 16;

/// The cluster's fixed parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of identical two-socket servers.
    pub servers: usize,
    /// Non-CPU platform power of a powered-on server (memory, storage,
    /// network, fans).
    pub platform_power: Watts,
    /// Standby power of a suspended server.
    pub standby_power: Watts,
}

impl ClusterConfig {
    /// A small rack of Power 720-class machines.
    #[must_use]
    pub fn rack(servers: usize) -> Self {
        ClusterConfig {
            servers,
            platform_power: Watts(120.0),
            standby_power: Watts(6.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::InsufficientData`] when the cluster has no
    /// servers (nothing to schedule onto).
    pub fn validate(&self) -> Result<(), AgsError> {
        if self.servers == 0 {
            return Err(AgsError::InsufficientData {
                points: 0,
                required: 1,
            });
        }
        Ok(())
    }
}

/// One server's share of a cluster plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerShare {
    /// Threads placed on this server.
    pub threads: usize,
    /// Whether the in-server placement borrowed the second socket.
    pub borrowed: bool,
    /// CPU (both chips) power of this server.
    pub cpu_power: Watts,
    /// Platform power of this server (full if on, standby if off).
    pub platform_power: Watts,
}

impl ServerShare {
    /// Total power of this server.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.cpu_power + self.platform_power
    }
}

/// A complete cluster placement and its predicted power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPlan {
    /// Per-server shares, index = server id.
    pub servers: Vec<ServerShare>,
    /// Servers that carry at least one thread.
    pub active_servers: usize,
    /// Total cluster power.
    pub total_power: Watts,
}

/// The hierarchical cluster scheduler.
///
/// # Examples
///
/// ```
/// use ags_core::cluster::{ClusterConfig, ClusterScheduler};
/// use p7_sim::Experiment;
/// use p7_workloads::Catalog;
///
/// let scheduler = ClusterScheduler::new(
///     Experiment::power7plus(42).with_ticks(15, 10),
///     ClusterConfig::rack(4),
/// )?;
/// let radix = Catalog::power7plus().get("radix").unwrap().clone();
/// let plan = scheduler.schedule(&radix, 8)?;
/// assert_eq!(plan.active_servers, 1); // consolidate across servers first
/// # Ok::<(), ags_core::AgsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterScheduler {
    inner: AgsScheduler,
    config: ClusterConfig,
}

impl ClusterScheduler {
    /// Creates the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::InsufficientData`] for an empty cluster.
    pub fn new(experiment: Experiment, config: ClusterConfig) -> Result<Self, AgsError> {
        config.validate()?;
        Ok(ClusterScheduler {
            inner: AgsScheduler::new(experiment),
            config,
        })
    }

    /// The cluster parameters.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The paper's two-level policy: fill as few servers as possible,
    /// then let AGS pick the in-server placement on each.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::NoFeasibleCoRunner`] when `total_threads`
    /// exceeds the cluster's capacity, or [`AgsError::Sim`] when an
    /// in-server evaluation fails.
    pub fn schedule(
        &self,
        workload: &WorkloadProfile,
        total_threads: usize,
    ) -> Result<ClusterPlan, AgsError> {
        let capacity = self.config.servers * CORES_PER_SERVER;
        if total_threads > capacity {
            return Err(AgsError::NoFeasibleCoRunner {
                required_mhz: total_threads as f64,
            });
        }
        let mut remaining = total_threads;
        let mut counts = Vec::with_capacity(self.config.servers);
        for _ in 0..self.config.servers {
            let here = remaining.min(CORES_PER_SERVER);
            counts.push(here);
            remaining -= here;
        }
        self.plan_from_counts(workload, &counts)
    }

    /// The naive baseline: spread threads evenly across every server.
    ///
    /// # Errors
    ///
    /// Same as [`ClusterScheduler::schedule`].
    pub fn naive_spread(
        &self,
        workload: &WorkloadProfile,
        total_threads: usize,
    ) -> Result<ClusterPlan, AgsError> {
        let capacity = self.config.servers * CORES_PER_SERVER;
        if total_threads > capacity {
            return Err(AgsError::NoFeasibleCoRunner {
                required_mhz: total_threads as f64,
            });
        }
        let base = total_threads / self.config.servers;
        let extra = total_threads % self.config.servers;
        let counts: Vec<usize> = (0..self.config.servers)
            .map(|i| base + usize::from(i < extra))
            .collect();
        self.plan_from_counts(workload, &counts)
    }

    fn plan_from_counts(
        &self,
        workload: &WorkloadProfile,
        counts: &[usize],
    ) -> Result<ClusterPlan, AgsError> {
        let mut servers = Vec::with_capacity(counts.len());
        let mut total = Watts::ZERO;
        let mut active = 0usize;
        for &threads in counts {
            let share = if threads == 0 {
                ServerShare {
                    threads: 0,
                    borrowed: false,
                    cpu_power: Watts::ZERO,
                    platform_power: self.config.standby_power,
                }
            } else {
                active += 1;
                // Up to one chip's worth of threads, AGS decides whether
                // the second socket helps; beyond that, both sockets are
                // needed and the balanced full-server placement applies.
                let (assignment, borrowed) = if threads <= 8 {
                    let decision = self.inner.place(workload, threads)?;
                    (decision.assignment, decision.borrowed)
                } else {
                    (
                        p7_sim::Assignment::balanced_server(workload, threads)?,
                        true,
                    )
                };
                let outcome = self
                    .inner
                    .experiment()
                    .run(&assignment, p7_control::GuardbandMode::Undervolt)?;
                ServerShare {
                    threads,
                    borrowed,
                    cpu_power: outcome.total_power(),
                    platform_power: self.config.platform_power,
                }
            };
            total += share.total_power();
            servers.push(share);
        }
        Ok(ClusterPlan {
            servers,
            active_servers: active,
            total_power: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    fn scheduler(servers: usize) -> ClusterScheduler {
        ClusterScheduler::new(
            Experiment::power7plus(42).with_ticks(15, 10),
            ClusterConfig::rack(servers),
        )
        .unwrap()
    }

    fn workload(name: &str) -> WorkloadProfile {
        Catalog::power7plus().get(name).unwrap().clone()
    }

    #[test]
    fn rejects_empty_cluster_and_overflow() {
        assert!(ClusterScheduler::new(Experiment::power7plus(1), ClusterConfig::rack(0)).is_err());
        let s = scheduler(2);
        assert!(s.schedule(&workload("radix"), 33).is_err());
    }

    #[test]
    fn light_load_uses_one_server() {
        let s = scheduler(4);
        let plan = s.schedule(&workload("raytrace"), 6).unwrap();
        assert_eq!(plan.active_servers, 1);
        assert_eq!(plan.servers[0].threads, 6);
        assert_eq!(plan.servers[1].threads, 0);
        // Standby servers cost only standby power.
        assert_eq!(plan.servers[3].platform_power, Watts(6.0));
    }

    #[test]
    fn consolidation_first_beats_naive_spreading() {
        // The paper's claim: across servers, platform power dominates, so
        // consolidate there even though borrowing wins within a server.
        let s = scheduler(4);
        let hierarchical = s.schedule(&workload("raytrace"), 8).unwrap();
        let naive = s.naive_spread(&workload("raytrace"), 8).unwrap();
        assert_eq!(naive.active_servers, 4);
        assert!(
            hierarchical.total_power.0 + 50.0 < naive.total_power.0,
            "hierarchical {} W vs naive {} W",
            hierarchical.total_power.0,
            naive.total_power.0
        );
    }

    #[test]
    fn in_server_borrowing_still_applies() {
        // Bandwidth-bound work should be borrowed inside its server.
        let s = scheduler(2);
        let plan = s.schedule(&workload("radix"), 8).unwrap();
        assert!(plan.servers[0].borrowed, "radix should borrow in-server");
    }

    #[test]
    fn plan_power_is_sum_of_shares() {
        let s = scheduler(3);
        let plan = s.schedule(&workload("ocean_cp"), 10).unwrap();
        let sum: f64 = plan.servers.iter().map(|x| x.total_power().0).sum();
        assert!((plan.total_power.0 - sum).abs() < 1e-9);
        assert_eq!(plan.active_servers, 1);
    }
}
