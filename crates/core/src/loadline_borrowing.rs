//! Loadline borrowing (Sec. 5.1): balance instead of consolidate.
//!
//! Conventional wisdom consolidates work onto one socket so the other can
//! sleep. On an adaptive-guardband server with per-core power gating that
//! is backwards: consolidation funnels all current through one loadline,
//! consuming that rail's undervolt budget, while the idle rail's budget
//! goes unused. *Borrowing* the idle socket's loadline — splitting the
//! threads and power-gating unused cores on both sockets — lets both rails
//! undervolt deeper and lowers total chip power by up to ~12 %.

use crate::error::AgsError;
use p7_control::GuardbandMode;
use p7_sim::{Assignment, Experiment, Outcome};
use p7_workloads::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// The side-by-side result of consolidation versus borrowing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BorrowingEvaluation {
    /// Threads used.
    pub threads: usize,
    /// Consolidated schedule under adaptive guardbanding.
    pub consolidated: Outcome,
    /// Loadline-borrowing schedule under adaptive guardbanding.
    pub borrowed: Outcome,
    /// Power saving of borrowing over consolidation, percent.
    pub power_saving_percent: f64,
    /// Energy improvement `E_cons / E_borr − 1`, percent — the paper's
    /// Fig. 14 metric (can exceed 100 % for bandwidth-starved workloads).
    pub energy_improvement_percent: f64,
    /// Execution-time change of borrowing, percent (negative = faster).
    pub time_change_percent: f64,
}

/// Evaluator comparing the two schedules on the simulated server.
///
/// # Examples
///
/// ```
/// use ags_core::LoadlineBorrowing;
/// use p7_sim::Experiment;
/// use p7_workloads::Catalog;
///
/// let lb = LoadlineBorrowing::new(Experiment::power7plus(42));
/// let w = Catalog::power7plus().get("raytrace").unwrap().clone();
/// let eval = lb.evaluate(&w, 8)?;
/// assert!(eval.power_saving_percent > 0.0);
/// # Ok::<(), ags_core::AgsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LoadlineBorrowing {
    experiment: Experiment,
}

impl LoadlineBorrowing {
    /// Creates an evaluator over the given experiment runner.
    #[must_use]
    pub fn new(experiment: Experiment) -> Self {
        LoadlineBorrowing { experiment }
    }

    /// The experiment runner in use.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// Compares consolidation against borrowing for `threads` threads of
    /// `workload`, both under undervolting adaptive guardbanding.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when a run fails (e.g. `threads > 8`).
    pub fn evaluate(
        &self,
        workload: &WorkloadProfile,
        threads: usize,
    ) -> Result<BorrowingEvaluation, AgsError> {
        let consolidated = self.experiment.run(
            &Assignment::consolidated(workload, threads)?,
            GuardbandMode::Undervolt,
        )?;
        let borrowed = self.experiment.run(
            &Assignment::borrowed(workload, threads)?,
            GuardbandMode::Undervolt,
        )?;
        Ok(Self::summarize(threads, consolidated, borrowed))
    }

    /// Like [`LoadlineBorrowing::evaluate`] but with the static-guardband
    /// consolidated schedule as the reference, the comparison of the
    /// paper's Fig. 13.
    ///
    /// Returns `(consolidated_ag_improvement, borrowed_ag_improvement)`
    /// in percent of the static baseline's power.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when a run fails.
    pub fn improvement_vs_static(
        &self,
        workload: &WorkloadProfile,
        threads: usize,
    ) -> Result<(f64, f64), AgsError> {
        let static_baseline = self.experiment.run(
            &Assignment::consolidated(workload, threads)?,
            GuardbandMode::StaticGuardband,
        )?;
        let eval = self.evaluate(workload, threads)?;
        let base = static_baseline.total_power().0;
        let cons = (base - eval.consolidated.total_power().0) / base * 100.0;
        let borr = (base - eval.borrowed.total_power().0) / base * 100.0;
        Ok((cons, borr))
    }

    /// Sweeps thread counts 1..=8 (the paper's Fig. 12 / Fig. 13 x-axis).
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when any run fails.
    pub fn sweep_cores(
        &self,
        workload: &WorkloadProfile,
    ) -> Result<Vec<BorrowingEvaluation>, AgsError> {
        (1..=8).map(|k| self.evaluate(workload, k)).collect()
    }

    fn summarize(threads: usize, consolidated: Outcome, borrowed: Outcome) -> BorrowingEvaluation {
        let power_saving_percent = (consolidated.total_power().0 - borrowed.total_power().0)
            / consolidated.total_power().0
            * 100.0;
        let energy_improvement_percent = (consolidated.energy.0 / borrowed.energy.0 - 1.0) * 100.0;
        let time_change_percent = (borrowed.exec_time.0 / consolidated.exec_time.0 - 1.0) * 100.0;
        BorrowingEvaluation {
            threads,
            consolidated,
            borrowed,
            power_saving_percent,
            energy_improvement_percent,
            time_change_percent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    fn evaluator() -> LoadlineBorrowing {
        LoadlineBorrowing::new(Experiment::power7plus(42).with_ticks(30, 15))
    }

    fn workload(name: &str) -> WorkloadProfile {
        Catalog::power7plus().get(name).unwrap().clone()
    }

    #[test]
    fn borrowing_saves_power_at_full_load() {
        let eval = evaluator().evaluate(&workload("raytrace"), 8).unwrap();
        // Fig. 12b: clear saving at eight cores.
        assert!(
            eval.power_saving_percent > 2.0,
            "saving {}%",
            eval.power_saving_percent
        );
    }

    #[test]
    fn borrowing_undervolts_deeper_on_both_rails() {
        let eval = evaluator().evaluate(&workload("raytrace"), 8).unwrap();
        let cons_uv = eval.consolidated.summary.socket0().undervolt;
        for socket in &eval.borrowed.summary.sockets {
            assert!(
                socket.undervolt > cons_uv,
                "borrowed rail {} <= consolidated {}",
                socket.undervolt,
                cons_uv
            );
        }
    }

    #[test]
    fn saving_grows_with_thread_count() {
        // Fig. 12b: 1.6 % / 4.2 % / 8.5 % at 2 / 4 / 8 cores.
        let lb = evaluator();
        let w = workload("raytrace");
        let two = lb.evaluate(&w, 2).unwrap().power_saving_percent;
        let eight = lb.evaluate(&w, 8).unwrap().power_saving_percent;
        assert!(eight > two, "2-core {two}% vs 8-core {eight}%");
    }

    #[test]
    fn improvement_vs_static_roughly_doubles() {
        // Fig. 13: borrowing lifts AG's improvement well above the
        // consolidated baseline at eight cores.
        let (cons, borr) = evaluator()
            .improvement_vs_static(&workload("raytrace"), 8)
            .unwrap();
        assert!(borr > cons * 1.3, "cons {cons}% borr {borr}%");
    }

    #[test]
    fn comm_heavy_workloads_lose_energy() {
        // Fig. 14 left: lu_ncb pays interchip communication and ends up
        // worse in energy despite the power saving.
        let eval = evaluator().evaluate(&workload("lu_ncb"), 8).unwrap();
        assert!(eval.time_change_percent > 10.0);
        assert!(
            eval.energy_improvement_percent < 0.0,
            "lu_ncb energy improvement {}%",
            eval.energy_improvement_percent
        );
    }

    #[test]
    fn bandwidth_bound_workloads_gain_big() {
        // Fig. 14 right: radix-class workloads gain 50 %+ energy.
        let eval = evaluator().evaluate(&workload("radix"), 8).unwrap();
        assert!(
            eval.energy_improvement_percent > 40.0,
            "radix energy improvement {}%",
            eval.energy_improvement_percent
        );
        assert!(eval.time_change_percent < -20.0);
    }

    #[test]
    fn sweep_covers_all_counts() {
        let sweep = evaluator().sweep_cores(&workload("ocean_cp")).unwrap();
        assert_eq!(sweep.len(), 8);
        assert_eq!(sweep[0].threads, 1);
        assert_eq!(sweep[7].threads, 8);
    }
}
