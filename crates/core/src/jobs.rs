//! Job descriptors for the AGS scheduler.

use crate::qos::QosSpec;
use p7_workloads::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// One schedulable job or VM, as the Fig. 18 flow reads it from "its job
/// description file".
///
/// # Examples
///
/// ```
/// use ags_core::{JobSpec, QosSpec};
/// use p7_workloads::Catalog;
///
/// let ws = Catalog::power7plus().get("websearch").unwrap().clone();
/// let job = JobSpec::critical("search-frontend", ws, QosSpec::websearch());
/// assert!(job.is_critical());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    name: String,
    workload: WorkloadProfile,
    qos: Option<QosSpec>,
}

impl JobSpec {
    /// A best-effort (batch) job with no latency SLA.
    #[must_use]
    pub fn batch(name: &str, workload: WorkloadProfile) -> Self {
        JobSpec {
            name: name.to_owned(),
            workload,
            qos: None,
        }
    }

    /// A latency-critical job with an SLA.
    #[must_use]
    pub fn critical(name: &str, workload: WorkloadProfile, qos: QosSpec) -> Self {
        JobSpec {
            name: name.to_owned(),
            workload,
            qos: Some(qos),
        }
    }

    /// The job's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload footprint driving the simulation.
    #[must_use]
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// The SLA, if any.
    #[must_use]
    pub fn qos(&self) -> Option<&QosSpec> {
        self.qos.as_ref()
    }

    /// True for latency-critical jobs (the first decision diamond of
    /// Fig. 18).
    #[must_use]
    pub fn is_critical(&self) -> bool {
        self.qos.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    #[test]
    fn batch_jobs_have_no_sla() {
        let w = Catalog::power7plus().get("radix").unwrap().clone();
        let job = JobSpec::batch("sorter", w);
        assert!(!job.is_critical());
        assert!(job.qos().is_none());
        assert_eq!(job.name(), "sorter");
    }

    #[test]
    fn critical_jobs_carry_their_spec() {
        let w = Catalog::power7plus().get("websearch").unwrap().clone();
        let job = JobSpec::critical("search", w, QosSpec::websearch());
        assert!(job.is_critical());
        assert_eq!(job.qos().unwrap().p90_target.0, 0.5);
    }
}
