//! Adaptive mapping (Sec. 5.2): guarantee QoS on a chip whose frequency
//! depends on the neighbours.
//!
//! Every scheduling quantum the scheduler (Fig. 18):
//!
//! 1. measures the chip frequency the current colocation produces (on
//!    hardware: reads counters; here: runs the simulator),
//! 2. runs the critical application's traffic and logs per-window p90
//!    latency into the [`QosMonitor`] and the [`FreqQosModel`],
//! 3. when the violation rate crosses the SLA threshold and the model
//!    says latency is frequency-sensitive, computes the frequency the
//!    target needs, converts it into an admissible co-runner MIPS budget
//!    via the [`MipsFrequencyPredictor`], and swaps the malicious
//!    co-runner for the heaviest candidate that fits the budget (falling
//!    back to the lightest candidate while the models are still cold).

use crate::error::AgsError;
use crate::freq_qos::FreqQosModel;
use crate::jobs::JobSpec;
use crate::predictor::MipsFrequencyPredictor;
use crate::qos::QosMonitor;
use p7_control::GuardbandMode;
use p7_sim::{Assignment, Experiment};
use p7_types::{seed_for, MegaHertz};
use p7_workloads::{WebSearch, WorkloadMix, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Number of co-runner threads sharing the chip with the critical job.
pub const CO_RUNNER_THREADS: usize = 7;

/// What happened during one scheduling quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumReport {
    /// Quantum index (0-based).
    pub quantum: usize,
    /// Co-runner that ran during this quantum.
    pub co_runner: String,
    /// Chip frequency the critical core got.
    pub chip_frequency: MegaHertz,
    /// Per-window p90 latencies (seconds) of the critical app.
    pub p90s: Vec<f64>,
    /// Violation rate of this quantum alone.
    pub violation_rate: f64,
    /// The co-runner the scheduler swapped to, when it acted.
    pub swapped_to: Option<String>,
}

/// The feedback-driven colocation scheduler of Fig. 18.
///
/// See `examples/adaptive_mapping.rs` at the repository root for a
/// complete end-to-end run against the simulated server.
#[derive(Debug, Clone)]
pub struct AdaptiveMappingScheduler {
    experiment: Experiment,
    predictor: MipsFrequencyPredictor,
    job: JobSpec,
    service: WebSearch,
    monitor: QosMonitor,
    freq_qos: FreqQosModel,
    pool: Vec<WorkloadProfile>,
    current: usize,
    quantum: usize,
    windows_per_quantum: usize,
    seed: u64,
}

impl AdaptiveMappingScheduler {
    /// Creates the scheduler.
    ///
    /// `pool` is the set of admissible co-runners; `initial` indexes the
    /// one running when the scheduler takes over (the paper starts
    /// blindly colocated with the heavy co-runner).
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::NoFeasibleCoRunner`] for an empty pool or an
    /// out-of-range initial index, and [`AgsError::ModelNotFitted`] when
    /// the job carries no QoS spec (nothing to schedule for).
    pub fn new(
        experiment: Experiment,
        predictor: MipsFrequencyPredictor,
        job: JobSpec,
        service: WebSearch,
        pool: Vec<WorkloadProfile>,
        initial: usize,
        seed: u64,
    ) -> Result<Self, AgsError> {
        if pool.is_empty() || initial >= pool.len() {
            return Err(AgsError::NoFeasibleCoRunner { required_mhz: 0.0 });
        }
        let Some(qos) = job.qos().copied() else {
            return Err(AgsError::ModelNotFitted {
                model: "job has no QoS spec",
            });
        };
        Ok(AdaptiveMappingScheduler {
            experiment,
            predictor,
            job,
            service,
            monitor: QosMonitor::new(qos, 8),
            freq_qos: FreqQosModel::new(),
            pool,
            current: initial,
            quantum: 0,
            windows_per_quantum: 60,
            seed,
        })
    }

    /// Overrides the number of 1 s traffic windows per quantum.
    pub fn set_windows_per_quantum(&mut self, windows: usize) {
        self.windows_per_quantum = windows.max(1);
    }

    /// The co-runner currently sharing the chip.
    #[must_use]
    pub fn current_co_runner(&self) -> &WorkloadProfile {
        &self.pool[self.current]
    }

    /// The QoS monitor (for inspection).
    #[must_use]
    pub fn monitor(&self) -> &QosMonitor {
        &self.monitor
    }

    /// The learned frequency–QoS model (for inspection).
    #[must_use]
    pub fn freq_qos(&self) -> &FreqQosModel {
        &self.freq_qos
    }

    /// Measures the chip frequency the critical core gets under the
    /// current colocation (frequency-boosting mode, per-core DPLL).
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when the run fails.
    pub fn measure_frequency(&self) -> Result<MegaHertz, AgsError> {
        let assignment = Assignment::colocated(
            self.job.workload(),
            &self.pool[self.current],
            CO_RUNNER_THREADS,
        )?;
        let outcome = self.experiment.run(&assignment, GuardbandMode::Overclock)?;
        // The critical job is pinned to socket 0, core 0.
        Ok(outcome.summary.sockets[0].avg_core_freq[0])
    }

    /// Executes one scheduling quantum and returns what happened.
    ///
    /// # Errors
    ///
    /// Returns [`AgsError::Sim`] when the measurement run fails.
    pub fn run_quantum(&mut self) -> Result<QuantumReport, AgsError> {
        let ran_co_runner = self.pool[self.current].name().to_owned();
        let freq = self.measure_frequency()?;
        let window_seed = seed_for(self.seed, &format!("quantum{}", self.quantum));
        let p90s = self
            .service
            .p90_windows(freq, self.windows_per_quantum, window_seed);
        let violations = p90s
            .iter()
            .filter(|&&p| self.monitor.spec().violated_by(p))
            .count();
        let violation_rate = if p90s.is_empty() {
            0.0
        } else {
            violations as f64 / p90s.len() as f64
        };
        for &p in &p90s {
            self.monitor.observe(p);
        }
        // Feed the frequency–QoS model with this quantum's median p90.
        if let Some(median) = median(&p90s) {
            self.freq_qos.observe(freq, median);
        }

        // Act on this quantum's own violation rate (the paper's "QoS
        // violates more than 25 % of the time"); the sliding monitor adds
        // hysteresis for borderline quanta.
        let mut swapped_to = None;
        if violation_rate > self.monitor.spec().violation_threshold || self.monitor.needs_action() {
            let choice = self.choose_co_runner(freq);
            if choice != self.current {
                self.current = choice;
                swapped_to = Some(self.pool[choice].name().to_owned());
                self.monitor.reset_window();
            }
        }

        let report = QuantumReport {
            quantum: self.quantum,
            co_runner: ran_co_runner,
            chip_frequency: freq,
            p90s,
            violation_rate,
            swapped_to,
        };
        self.quantum += 1;
        Ok(report)
    }

    /// Scores the whole colocation space without running anything: for
    /// every `(co-runner, thread-count)` candidate around the pinned
    /// critical job, the mix's aggregate MIPS goes through the frequency
    /// predictor. This is the paper's "explore the workload-combination
    /// space during runtime, every quantum" (Sec. 5.2.1).
    #[must_use]
    pub fn explore(&self) -> Vec<(WorkloadMix, MegaHertz)> {
        WorkloadMix::colocation_space(self.job.workload(), &self.pool)
            .into_iter()
            .map(|mix| {
                let predicted = self.predictor.predict(mix.chip_mips(1.0));
                (mix, predicted)
            })
            .collect()
    }

    /// Picks the pool index to run next: the heaviest co-runner whose
    /// predicted chip frequency still meets the QoS-derived requirement,
    /// or the lightest when nothing fits / the model is cold.
    fn choose_co_runner(&self, _current_freq: MegaHertz) -> usize {
        let lightest = self.lightest_index();
        let Ok(required) = self.freq_qos.frequency_for(self.monitor.spec().p90_target) else {
            // Cold or insensitive model: the paper's fallback is the
            // lowest-MIPS co-runner.
            return lightest;
        };
        // Keep headroom below the exact crossing point.
        let required = MegaHertz(required.0 + 10.0);
        let budget = self.predictor.mips_budget_for(required);
        let mut best: Option<(usize, f64)> = None;
        for (i, w) in self.pool.iter().enumerate() {
            let mut mix = WorkloadMix::new();
            mix.push(self.job.workload().clone(), 1)
                .expect("primary fits");
            mix.push(w.clone(), CO_RUNNER_THREADS)
                .expect("1 + 7 threads fit the socket");
            let mix_mips = mix.chip_mips(1.0);
            if mix_mips <= budget {
                let heavier = best.is_none_or(|(_, m)| mix_mips > m);
                if heavier {
                    best = Some((i, mix_mips));
                }
            }
        }
        best.map_or(lightest, |(i, _)| i)
    }

    fn lightest_index(&self) -> usize {
        self.pool
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.mips_per_core()
                    .partial_cmp(&b.mips_per_core())
                    .expect("mips are finite")
            })
            .map(|(i, _)| i)
            .expect("pool is non-empty")
    }
}

/// Median of a latency slice; `None` when empty.
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Some(sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosSpec;
    use p7_workloads::{co_runner, Catalog, CoRunnerClass};

    fn scheduler(initial: CoRunnerClass) -> AdaptiveMappingScheduler {
        let cat = Catalog::power7plus();
        let ws = cat.get("websearch").unwrap().clone();
        let job = JobSpec::critical("search", ws, QosSpec::websearch());
        let pool = vec![
            co_runner(CoRunnerClass::Light),
            co_runner(CoRunnerClass::Medium),
            co_runner(CoRunnerClass::Heavy),
        ];
        let initial = match initial {
            CoRunnerClass::Light => 0,
            CoRunnerClass::Medium => 1,
            CoRunnerClass::Heavy => 2,
        };
        // A synthetic predictor with the right shape keeps the test fast.
        let predictor = MipsFrequencyPredictor::fit(&[
            (10_000.0, 4580.0),
            (40_000.0, 4500.0),
            (70_000.0, 4420.0),
        ])
        .unwrap();
        AdaptiveMappingScheduler::new(
            Experiment::power7plus(42).with_ticks(15, 10),
            predictor,
            job,
            WebSearch::power7plus(),
            pool,
            initial,
            7,
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_pool() {
        let cat = Catalog::power7plus();
        let ws = cat.get("websearch").unwrap().clone();
        let job = JobSpec::critical("search", ws, QosSpec::websearch());
        let predictor =
            MipsFrequencyPredictor::fit(&[(0.0, 4600.0), (1.0, 4599.0), (2.0, 4598.0)]).unwrap();
        let err = AdaptiveMappingScheduler::new(
            Experiment::power7plus(1),
            predictor,
            job,
            WebSearch::power7plus(),
            vec![],
            0,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, AgsError::NoFeasibleCoRunner { .. }));
    }

    #[test]
    fn rejects_jobs_without_sla() {
        let cat = Catalog::power7plus();
        let job = JobSpec::batch("batch", cat.get("radix").unwrap().clone());
        let predictor =
            MipsFrequencyPredictor::fit(&[(0.0, 4600.0), (1.0, 4599.0), (2.0, 4598.0)]).unwrap();
        let err = AdaptiveMappingScheduler::new(
            Experiment::power7plus(1),
            predictor,
            job,
            WebSearch::power7plus(),
            vec![co_runner(CoRunnerClass::Light)],
            0,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, AgsError::ModelNotFitted { .. }));
    }

    #[test]
    fn heavy_corunner_costs_frequency() {
        let light = scheduler(CoRunnerClass::Light).measure_frequency().unwrap();
        let heavy = scheduler(CoRunnerClass::Heavy).measure_frequency().unwrap();
        assert!(
            light.0 > heavy.0 + 20.0,
            "light {light} should beat heavy {heavy}"
        );
    }

    #[test]
    fn scheduler_escapes_heavy_colocation() {
        // The paper's scenario: blindly start with the heavy co-runner;
        // the violation rate forces a swap within a few quanta.
        let mut s = scheduler(CoRunnerClass::Heavy);
        s.set_windows_per_quantum(40);
        let mut swapped = false;
        for _ in 0..6 {
            let report = s.run_quantum().unwrap();
            if report.swapped_to.is_some() {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "scheduler never acted on QoS violations");
        assert_ne!(
            s.current_co_runner().name(),
            co_runner(CoRunnerClass::Heavy).name()
        );
    }

    #[test]
    fn light_colocation_is_left_alone() {
        let mut s = scheduler(CoRunnerClass::Light);
        s.set_windows_per_quantum(40);
        for _ in 0..4 {
            let report = s.run_quantum().unwrap();
            assert!(report.swapped_to.is_none(), "needless swap at light load");
        }
    }

    #[test]
    fn explore_scores_the_whole_combination_space() {
        let s = scheduler(CoRunnerClass::Light);
        let space = s.explore();
        // 3 pool entries × 7 thread counts.
        assert_eq!(space.len(), 21);
        // Heavier mixes must predict slower clocks (negative slope).
        for pair in space.windows(2) {
            if pair[1].0.chip_mips(1.0) > pair[0].0.chip_mips(1.0) {
                assert!(pair[1].1 <= pair[0].1);
            }
        }
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }
}
