//! Quality-of-service specifications and monitoring.

use p7_types::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The service-level target of a latency-critical job.
///
/// The paper's WebSearch scenario targets a 0.5 s 90th-percentile latency
/// and reacts when more than 25 % of windows violate it (Sec. 5.2.2).
///
/// # Examples
///
/// ```
/// use ags_core::QosSpec;
///
/// let qos = QosSpec::websearch();
/// assert!(qos.violated_by(0.6));
/// assert!(!qos.violated_by(0.4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// The p90 latency target.
    pub p90_target: Seconds,
    /// Fraction of violating windows that triggers scheduler action.
    pub violation_threshold: f64,
}

impl QosSpec {
    /// The paper's WebSearch SLA: p90 ≤ 0.5 s, act above 25 % violations.
    #[must_use]
    pub fn websearch() -> Self {
        QosSpec {
            p90_target: Seconds(0.5),
            violation_threshold: 0.25,
        }
    }

    /// True when a window's p90 (seconds) misses the target.
    #[must_use]
    pub fn violated_by(&self, p90_seconds: f64) -> bool {
        p90_seconds > self.p90_target.0
    }
}

/// Sliding-window violation-rate monitor.
///
/// # Examples
///
/// ```
/// use ags_core::{QosMonitor, QosSpec};
///
/// let mut monitor = QosMonitor::new(QosSpec::websearch(), 4);
/// for p90 in [0.3, 0.6, 0.7, 0.2] {
///     monitor.observe(p90);
/// }
/// assert!((monitor.violation_rate() - 0.5).abs() < 1e-12);
/// assert!(monitor.needs_action());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosMonitor {
    spec: QosSpec,
    capacity: usize,
    window: VecDeque<bool>,
    total_observed: usize,
    total_violations: usize,
}

impl QosMonitor {
    /// Creates a monitor remembering the last `capacity` windows.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(spec: QosSpec, capacity: usize) -> Self {
        assert!(capacity > 0, "monitor window must be non-empty");
        QosMonitor {
            spec,
            capacity,
            window: VecDeque::with_capacity(capacity),
            total_observed: 0,
            total_violations: 0,
        }
    }

    /// The SLA this monitor enforces.
    #[must_use]
    pub fn spec(&self) -> &QosSpec {
        &self.spec
    }

    /// Records one window's p90 latency (seconds).
    pub fn observe(&mut self, p90_seconds: f64) {
        let violated = self.spec.violated_by(p90_seconds);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(violated);
        self.total_observed += 1;
        if violated {
            self.total_violations += 1;
        }
    }

    /// Violation rate over the sliding window (0 when empty).
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&v| v).count() as f64 / self.window.len() as f64
    }

    /// Lifetime violation rate across everything observed.
    #[must_use]
    pub fn lifetime_violation_rate(&self) -> f64 {
        if self.total_observed == 0 {
            return 0.0;
        }
        self.total_violations as f64 / self.total_observed as f64
    }

    /// True when the sliding-window rate exceeds the SLA threshold.
    #[must_use]
    pub fn needs_action(&self) -> bool {
        self.violation_rate() > self.spec.violation_threshold
    }

    /// Clears the sliding window (after a scheduling action, so stale
    /// violations don't trigger again).
    pub fn reset_window(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_threshold_logic() {
        let spec = QosSpec::websearch();
        let mut m = QosMonitor::new(spec, 10);
        assert!(!m.needs_action());
        for _ in 0..7 {
            m.observe(0.3);
        }
        for _ in 0..3 {
            m.observe(0.8);
        }
        assert!((m.violation_rate() - 0.3).abs() < 1e-12);
        assert!(m.needs_action());
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut m = QosMonitor::new(QosSpec::websearch(), 2);
        m.observe(0.9);
        m.observe(0.9);
        assert!((m.violation_rate() - 1.0).abs() < 1e-12);
        m.observe(0.1);
        m.observe(0.1);
        assert!((m.violation_rate() - 0.0).abs() < 1e-12);
        // Lifetime rate still remembers everything.
        assert!((m.lifetime_violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_only_window() {
        let mut m = QosMonitor::new(QosSpec::websearch(), 4);
        m.observe(0.9);
        m.reset_window();
        assert_eq!(m.violation_rate(), 0.0);
        assert!((m.lifetime_violation_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_capacity_panics() {
        let _ = QosMonitor::new(QosSpec::websearch(), 0);
    }
}
