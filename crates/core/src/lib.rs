//! Adaptive Guardband Scheduling (AGS) — the primary contribution of
//! "Adaptive Guardband Scheduling to Improve System-Level Efficiency of
//! the POWER7+" (MICRO-48, 2015), reimplemented over the `p7-sim`
//! full-system simulator.
//!
//! AGS compensates at the system level for the way VRM loadline and PDN IR
//! drop erode adaptive guardbanding's benefit as load grows. It has two
//! policies, matched to the two enterprise scenarios of Sec. 5:
//!
//! * **Loadline borrowing** ([`loadline_borrowing`]) — when the server has
//!   idle capacity, balance threads across sockets instead of
//!   consolidating them. Each rail then carries less current, its
//!   loadline/transient budget shrinks, and *both* sockets undervolt
//!   deeper: up to 12 % power savings versus consolidation, roughly
//!   doubling adaptive guardbanding's benefit at high core counts.
//! * **Adaptive mapping** ([`adaptive_mapping`]) — when a latency-critical
//!   workload shares the chip with co-runners, the chip frequency (and
//!   therefore the tail latency) depends on what the co-runners do to the
//!   shared voltage margin. A lightweight MIPS-based frequency predictor
//!   ([`predictor`]) plus a learned frequency–QoS model ([`freq_qos`])
//!   lets the scheduler detect QoS violations and swap malicious
//!   co-runners for benign ones.
//!
//! See the `ags-bench` crate for the harnesses regenerating every figure
//! of the paper, and the repository examples for end-to-end usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_mapping;
pub mod cluster;
pub mod error;
pub mod freq_qos;
pub mod jobs;
pub mod loadline_borrowing;
pub mod predictor;
pub mod qos;
pub mod scheduler;

pub use adaptive_mapping::{AdaptiveMappingScheduler, QuantumReport};
pub use cluster::{ClusterConfig, ClusterPlan, ClusterScheduler};
pub use error::AgsError;
pub use freq_qos::FreqQosModel;
pub use jobs::JobSpec;
pub use loadline_borrowing::{BorrowingEvaluation, LoadlineBorrowing};
pub use predictor::MipsFrequencyPredictor;
pub use qos::{QosMonitor, QosSpec};
pub use scheduler::AgsScheduler;
