//! Property-based tests of the guardband control stack.

use p7_control::{Dpll, FirmwareController, GuardbandPolicy, PStateTable, VoltFreqCurve};
use p7_types::{MegaHertz, Volts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn curve_inverse_round_trips(
        mhz in 1000.0f64..5000.0,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let v = curve.v_circuit(MegaHertz(mhz));
        prop_assert!((curve.f_max(v).0 - mhz).abs() < 1e-6);
    }

    #[test]
    fn margin_is_antisymmetric_in_voltage_and_frequency(
        v_mv in 900.0f64..1250.0,
        mhz in 2800.0f64..4700.0,
        dv in 0.0f64..0.05,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let v = Volts::from_millivolts(v_mv);
        let f = MegaHertz(mhz);
        // More voltage → more margin; more frequency → less margin.
        prop_assert!(curve.margin(v + Volts(dv), f) >= curve.margin(v, f));
        let df = MegaHertz(dv * curve.mhz_per_volt());
        prop_assert!(curve.margin(v, f + df) <= curve.margin(v, f) + Volts(1e-12));
    }

    #[test]
    fn dpll_always_lands_inside_its_clamps(
        usable_mv in 0.0f64..2500.0,
        slew in 0.01f64..1.0,
        steps in 1usize..30,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let mut dpll = Dpll::new(MegaHertz(4200.0), MegaHertz(2800.0), MegaHertz(4700.0)).unwrap();
        dpll.set_slew_per_step(slew);
        for _ in 0..steps {
            let f = dpll.track(Volts::from_millivolts(usable_mv), &curve);
            prop_assert!(f >= MegaHertz(2800.0) && f <= MegaHertz(4700.0));
        }
    }

    #[test]
    fn dpll_converges_to_the_same_point_regardless_of_slew(
        usable_mv in 800.0f64..1300.0,
        slew in 0.02f64..0.5,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let usable = Volts::from_millivolts(usable_mv);
        let mut fast = Dpll::new(MegaHertz(4200.0), MegaHertz(2800.0), MegaHertz(4700.0)).unwrap();
        let mut slow = Dpll::new(MegaHertz(4200.0), MegaHertz(2800.0), MegaHertz(4700.0)).unwrap();
        slow.set_slew_per_step(slew);
        let target = fast.track(usable, &curve);
        for _ in 0..200 {
            slow.track(usable, &curve);
        }
        prop_assert!((slow.frequency().0 - target.0).abs() < 1.0);
    }

    #[test]
    fn firmware_fixed_point_matches_the_margin_algebra(
        drop_mv in 0.0f64..100.0,
    ) {
        // Closed loop with an idealized plant: the settled undervolt must
        // equal reclaimable margin minus the drop (clamped at the floor).
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let fw = FirmwareController::new(MegaHertz(4200.0), policy.clone()).unwrap();
        let nominal = policy.nominal_voltage(&curve, MegaHertz(4200.0));
        let drop = Volts::from_millivolts(drop_mv);
        let mut v = nominal;
        for _ in 0..80 {
            let freq = curve.f_max(v - drop - policy.residual_guardband);
            v = fw.adjust_voltage(v, freq, &curve);
        }
        let undervolt = (nominal - v).millivolts();
        let expected = (policy.reclaimable().millivolts() - drop_mv).max(0.0);
        prop_assert!(
            (undervolt - expected).abs() < 2.0,
            "undervolt {undervolt} vs expected {expected}"
        );
    }

    #[test]
    fn pstate_tables_are_monotone_for_any_range(
        min in 2000.0f64..3000.0,
        span in 200.0f64..1500.0,
        step in 20.0f64..200.0,
    ) {
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let table = PStateTable::new(
            &curve,
            &policy,
            MegaHertz(min),
            MegaHertz(min + span),
            MegaHertz(step),
        )
        .unwrap();
        prop_assert!(!table.is_empty());
        let states: Vec<_> = table.iter().collect();
        for pair in states.windows(2) {
            prop_assert!(pair[1].frequency > pair[0].frequency);
            prop_assert!(pair[1].voltage > pair[0].voltage);
        }
        // Selection always returns a member at or below the request.
        let pick = table.for_frequency(MegaHertz(min + span / 2.0));
        prop_assert!(pick.frequency.0 <= min + span / 2.0 + 1e-9);
    }
}
