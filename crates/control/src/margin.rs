//! The frequency–voltage relationship and guardband accounting.

use crate::error::ControlError;
use p7_types::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// Linear frequency–voltage curve of the 32 nm POWER7+ core logic.
///
/// `v_circuit(f)` is the minimum voltage at which the critical paths close
/// timing at clock frequency `f`; its inverse `f_max(v)` is the fastest
/// reliable clock at voltage `v`. The paper's Fig. 6a sweep (2.8–4.2 GHz
/// over roughly 0.96–1.20 V at the DVFS operating points) fixes the slope
/// at ≈5.8 MHz per mV.
///
/// # Examples
///
/// ```
/// use p7_control::VoltFreqCurve;
/// use p7_types::{MegaHertz, Volts};
///
/// let curve = VoltFreqCurve::power7plus();
/// let v = curve.v_circuit(MegaHertz(4200.0));
/// let f = curve.f_max(v);
/// assert!((f.0 - 4200.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltFreqCurve {
    /// Extrapolated voltage intercept at zero frequency.
    v_intercept: Volts,
    /// Voltage cost per MHz of clock frequency.
    mv_per_mhz: f64,
}

impl VoltFreqCurve {
    /// The calibrated POWER7+ curve (≈5.8 MHz per mV).
    #[must_use]
    pub fn power7plus() -> Self {
        // v_circuit(4200 MHz) = 1.027 V with the static nominal at 1.2 V
        // leaving the 173 mV static guardband of GuardbandPolicy.
        VoltFreqCurve {
            v_intercept: Volts(0.302_86),
            mv_per_mhz: 1.0 / 5.8,
        }
    }

    /// Creates a curve from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] when the slope is not
    /// strictly positive and finite or the intercept is not finite.
    pub fn new(v_intercept: Volts, mv_per_mhz: f64) -> Result<Self, ControlError> {
        if !(mv_per_mhz.is_finite() && mv_per_mhz > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "mv_per_mhz",
                value: mv_per_mhz,
            });
        }
        if !v_intercept.is_finite() {
            return Err(ControlError::InvalidParameter {
                name: "v_intercept",
                value: v_intercept.0,
            });
        }
        Ok(VoltFreqCurve {
            v_intercept,
            mv_per_mhz,
        })
    }

    /// Minimum circuit voltage for reliable operation at frequency `f`.
    #[must_use]
    pub fn v_circuit(&self, f: MegaHertz) -> Volts {
        self.v_intercept + Volts::from_millivolts(f.0 * self.mv_per_mhz)
    }

    /// Fastest reliable clock frequency at voltage `v` (zero when `v` is
    /// below the intercept).
    #[must_use]
    pub fn f_max(&self, v: Volts) -> MegaHertz {
        MegaHertz(((v - self.v_intercept).millivolts() / self.mv_per_mhz).max(0.0))
    }

    /// The timing margin (in volts) available at voltage `v` and clock `f`.
    #[must_use]
    pub fn margin(&self, v: Volts, f: MegaHertz) -> Volts {
        v - self.v_circuit(f)
    }

    /// Frequency gained per volt of extra margin (the curve's slope).
    #[must_use]
    pub fn mhz_per_volt(&self) -> f64 {
        1000.0 / self.mv_per_mhz
    }
}

impl Default for VoltFreqCurve {
    fn default() -> Self {
        VoltFreqCurve::power7plus()
    }
}

/// How much voltage margin each guardbanding discipline reserves.
///
/// * A **static** design provisions `static_guardband` above `v_circuit` at
///   the DVFS point, sized for worst-case load, droops, aging, and
///   calibration error stacked together (the paper's Fig. 1a).
/// * An **adaptive** design measures margin with CPMs and keeps only
///   `residual_guardband` against the nondeterminism of the mechanism
///   itself (Sec. 2.1: a precautionary remainder).
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandPolicy;
///
/// let policy = GuardbandPolicy::power7plus();
/// let reclaimable = policy.reclaimable();
/// assert!(reclaimable.millivolts() > 90.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandPolicy {
    /// Fixed margin a static design adds to `v_circuit` at the DVFS point.
    pub static_guardband: Volts,
    /// Margin an adaptive design keeps for CPM/DPLL nondeterminism.
    pub residual_guardband: Volts,
    /// Firmware's load-transient reserve per ampere of socket current.
    ///
    /// In undervolting mode the rail must survive the worst load
    /// transient its socket can produce — a step of the full socket
    /// current through the loadline — so the firmware refuses to spend
    /// that much of the margin. The reserve is proportional to the
    /// *per-socket* current, which is exactly what "loadline borrowing"
    /// (Sec. 5.1) exploits: balancing threads across sockets halves each
    /// rail's reserve and frees real undervolt room on both. The paper's
    /// Fig. 12a (undervolt 20 mV consolidated vs. 60 mV borrowed at eight
    /// cores) calibrates the value.
    pub transient_reserve_ohms: f64,
}

impl GuardbandPolicy {
    /// The calibrated POWER7+ policy.
    #[must_use]
    pub fn power7plus() -> Self {
        GuardbandPolicy {
            static_guardband: Volts::from_millivolts(173.0),
            residual_guardband: Volts::from_millivolts(30.0),
            transient_reserve_ohms: 0.40e-3,
        }
    }

    /// The voltage the firmware reserves against load transients on a
    /// rail currently carrying `socket_current` amperes.
    #[must_use]
    pub fn transient_reserve(&self, socket_current: f64) -> Volts {
        Volts(self.transient_reserve_ohms * socket_current.max(0.0))
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] when either guardband is
    /// negative/non-finite or the residual exceeds the static guardband.
    pub fn validate(&self) -> Result<(), ControlError> {
        for (name, value) in [
            ("static_guardband", self.static_guardband.0),
            ("residual_guardband", self.residual_guardband.0),
            ("transient_reserve_ohms", self.transient_reserve_ohms),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ControlError::InvalidParameter { name, value });
            }
        }
        if self.residual_guardband > self.static_guardband {
            return Err(ControlError::InvalidParameter {
                name: "residual_guardband",
                value: self.residual_guardband.0,
            });
        }
        Ok(())
    }

    /// The margin adaptive guardbanding can hand back to the system when no
    /// drop consumes it: static minus residual.
    #[must_use]
    pub fn reclaimable(&self) -> Volts {
        self.static_guardband - self.residual_guardband
    }

    /// The static-design nominal supply voltage for a DVFS target `f`.
    #[must_use]
    pub fn nominal_voltage(&self, curve: &VoltFreqCurve, f: MegaHertz) -> Volts {
        curve.v_circuit(f) + self.static_guardband
    }
}

impl Default for GuardbandPolicy {
    fn default() -> Self {
        GuardbandPolicy::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_round_trips() {
        let curve = VoltFreqCurve::power7plus();
        for mhz in [2800.0, 3500.0, 4200.0] {
            let v = curve.v_circuit(MegaHertz(mhz));
            assert!((curve.f_max(v).0 - mhz).abs() < 1e-6);
        }
    }

    #[test]
    fn nominal_point_matches_power7plus() {
        // Static design: 4.2 GHz at 1.2 V nominal.
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let v_nom = policy.nominal_voltage(&curve, MegaHertz(4200.0));
        assert!((v_nom.millivolts() - 1200.0).abs() < 2.0, "nominal {v_nom}");
    }

    #[test]
    fn dvfs_low_point_matches_fig6a() {
        // Fig. 6a: the 2.8 GHz DVFS operating point sits near 960 mV.
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let v = policy.nominal_voltage(&curve, MegaHertz(2800.0));
        assert!((v.millivolts() - 960.0).abs() < 10.0, "2.8 GHz point {v}");
    }

    #[test]
    fn margin_sign_convention() {
        let curve = VoltFreqCurve::power7plus();
        let f = MegaHertz(4200.0);
        let tight = curve.v_circuit(f);
        assert!(curve.margin(tight, f).abs() < Volts(1e-12));
        assert!(curve.margin(tight + Volts(0.05), f) > Volts::ZERO);
        assert!(curve.margin(tight - Volts(0.05), f) < Volts::ZERO);
    }

    #[test]
    fn f_max_clamps_below_intercept() {
        let curve = VoltFreqCurve::power7plus();
        assert_eq!(curve.f_max(Volts(0.1)), MegaHertz(0.0));
    }

    #[test]
    fn ten_percent_boost_fits_reclaimable_margin() {
        // With ~100 mV reclaimable and 5.8 MHz/mV, a lightly loaded chip
        // can boost ~580 MHz; the paper reports up to 10 % (420 MHz), the
        // difference being consumed by drops and ripple.
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let boost_mhz = policy.reclaimable().millivolts() * curve.mhz_per_volt() / 1000.0;
        assert!(
            (600.0..1000.0).contains(&boost_mhz),
            "boost {boost_mhz} MHz"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(VoltFreqCurve::new(Volts(0.3), 0.0).is_err());
        assert!(VoltFreqCurve::new(Volts(f64::NAN), 0.2).is_err());
        let bad = GuardbandPolicy {
            static_guardband: Volts(0.02),
            residual_guardband: Volts(0.05),
            transient_reserve_ohms: 0.40e-3,
        };
        assert!(bad.validate().is_err());
        let negative_reserve = GuardbandPolicy {
            transient_reserve_ohms: -1.0,
            ..GuardbandPolicy::power7plus()
        };
        assert!(negative_reserve.validate().is_err());
        GuardbandPolicy::power7plus().validate().unwrap();
    }

    #[test]
    fn mhz_per_volt_is_inverse_slope() {
        let curve = VoltFreqCurve::power7plus();
        assert!((curve.mhz_per_volt() - 5800.0).abs() < 1.0);
    }
}
