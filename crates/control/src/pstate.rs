//! The DVFS operating-point ladder (p-states).
//!
//! Fig. 6a of the paper sweeps "all possible clock frequencies" from
//! 2.8 GHz upward in 28 MHz increments to the 4.2 GHz peak, and marks the
//! system-default voltage at each DVFS operating point. Under a static
//! guardband each p-state pairs a frequency with `v_circuit(f)` plus the
//! full static margin; adaptive guardbanding treats the p-state voltage
//! as the ceiling it undervolts from.

use crate::error::ControlError;
use crate::margin::{GuardbandPolicy, VoltFreqCurve};
use p7_types::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Ladder index, 0 = slowest.
    pub index: usize,
    /// Clock frequency of this operating point.
    pub frequency: MegaHertz,
    /// Static-guardband supply voltage of this operating point.
    pub voltage: Volts,
}

/// The full ladder of operating points.
///
/// # Examples
///
/// ```
/// use p7_control::{GuardbandPolicy, PStateTable, VoltFreqCurve};
/// use p7_types::MegaHertz;
///
/// let table = PStateTable::power7plus(
///     &VoltFreqCurve::power7plus(),
///     &GuardbandPolicy::power7plus(),
/// )?;
/// assert_eq!(table.len(), 51);
/// let peak = table.peak();
/// assert_eq!(peak.frequency, MegaHertz(4200.0));
/// # Ok::<(), p7_control::ControlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// The POWER7+ ladder: 2.8 → 4.2 GHz in 28 MHz steps (51 points, the
    /// diagonal lines of Fig. 6a).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] when the policy fails
    /// validation.
    pub fn power7plus(
        curve: &VoltFreqCurve,
        policy: &GuardbandPolicy,
    ) -> Result<Self, ControlError> {
        PStateTable::new(
            curve,
            policy,
            MegaHertz(2800.0),
            MegaHertz(4200.0),
            MegaHertz(28.0),
        )
    }

    /// Builds a ladder from `min` to `max` in `step` increments.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for an empty or inverted
    /// range, a non-positive step, or an invalid policy.
    pub fn new(
        curve: &VoltFreqCurve,
        policy: &GuardbandPolicy,
        min: MegaHertz,
        max: MegaHertz,
        step: MegaHertz,
    ) -> Result<Self, ControlError> {
        policy.validate()?;
        if !(step.0.is_finite() && step.0 > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "pstate_step",
                value: step.0,
            });
        }
        if !(min.0 > 0.0 && min <= max) {
            return Err(ControlError::InvalidParameter {
                name: "pstate_range",
                value: max.0 - min.0,
            });
        }
        let mut states = Vec::new();
        let mut f = min;
        let mut index = 0;
        while f.0 <= max.0 + 1e-9 {
            states.push(PState {
                index,
                frequency: f,
                voltage: policy.nominal_voltage(curve, f),
            });
            index += 1;
            f += step;
        }
        Ok(PStateTable { states })
    }

    /// Number of operating points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the ladder is empty (never for valid construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Iterates slowest-first.
    pub fn iter(&self) -> impl Iterator<Item = &PState> {
        self.states.iter()
    }

    /// The fastest operating point.
    ///
    /// # Panics
    ///
    /// Never panics for tables built through the constructors (they always
    /// contain at least one state).
    #[must_use]
    pub fn peak(&self) -> PState {
        *self.states.last().expect("ladder is non-empty")
    }

    /// The slowest operating point.
    #[must_use]
    pub fn floor(&self) -> PState {
        *self.states.first().expect("ladder is non-empty")
    }

    /// The fastest p-state at or below `freq` (the governor's selection),
    /// or the floor when `freq` is below the ladder.
    #[must_use]
    pub fn for_frequency(&self, freq: MegaHertz) -> PState {
        let mut chosen = self.floor();
        for s in &self.states {
            if s.frequency.0 <= freq.0 + 1e-9 {
                chosen = *s;
            } else {
                break;
            }
        }
        chosen
    }

    /// The slowest p-state whose static voltage fits under `budget` (a
    /// power-capping governor's selection), if any.
    #[must_use]
    pub fn fastest_under_voltage(&self, budget: Volts) -> Option<PState> {
        self.states
            .iter()
            .rev()
            .find(|s| s.voltage <= budget)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::power7plus(&VoltFreqCurve::power7plus(), &GuardbandPolicy::power7plus())
            .unwrap()
    }

    #[test]
    fn power7plus_ladder_matches_fig6a() {
        let t = table();
        assert_eq!(t.len(), 51, "2.8→4.2 GHz in 28 MHz steps");
        assert_eq!(t.floor().frequency, MegaHertz(2800.0));
        assert_eq!(t.peak().frequency, MegaHertz(4200.0));
        // Fig. 6a endpoints: ~960 mV at 2.8 GHz, 1.2 V at 4.2 GHz.
        assert!((t.floor().voltage.millivolts() - 958.6).abs() < 5.0);
        assert!((t.peak().voltage.millivolts() - 1200.0).abs() < 3.0);
    }

    #[test]
    fn ladder_is_monotone() {
        let t = table();
        for pair in t.iter().collect::<Vec<_>>().windows(2) {
            assert!(pair[1].frequency > pair[0].frequency);
            assert!(pair[1].voltage > pair[0].voltage);
            assert_eq!(pair[1].index, pair[0].index + 1);
        }
    }

    #[test]
    fn frequency_selection_rounds_down() {
        let t = table();
        let s = t.for_frequency(MegaHertz(3000.0));
        assert!(s.frequency.0 <= 3000.0);
        assert!(s.frequency.0 > 3000.0 - 28.0);
        assert_eq!(t.for_frequency(MegaHertz(9999.0)), t.peak());
        assert_eq!(t.for_frequency(MegaHertz(100.0)), t.floor());
    }

    #[test]
    fn voltage_budget_selection() {
        let t = table();
        let s = t.fastest_under_voltage(Volts(1.1)).unwrap();
        assert!(s.voltage <= Volts(1.1));
        // The next-faster state must exceed the budget.
        let next = t.iter().find(|x| x.index == s.index + 1).unwrap();
        assert!(next.voltage > Volts(1.1));
        assert!(t.fastest_under_voltage(Volts(0.5)).is_none());
    }

    #[test]
    fn rejects_bad_ranges() {
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        assert!(PStateTable::new(
            &curve,
            &policy,
            MegaHertz(4000.0),
            MegaHertz(3000.0),
            MegaHertz(28.0)
        )
        .is_err());
        assert!(PStateTable::new(
            &curve,
            &policy,
            MegaHertz(3000.0),
            MegaHertz(4000.0),
            MegaHertz(0.0)
        )
        .is_err());
    }
}
