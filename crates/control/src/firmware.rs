//! The 32 ms firmware voltage controller (undervolting mode).
//!
//! In undervolting mode "the firmware observes CPM-DPLL's frequency and
//! over a longer term (32 ms) adjusts voltage to make clock frequency hit
//! the target" (Sec. 2.2). This module implements that outer loop as a
//! proportional controller on the frequency error, with a hard floor at
//! the circuit-required voltage plus the residual guardband.

use crate::error::ControlError;
use crate::margin::{GuardbandPolicy, VoltFreqCurve};
use p7_types::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// The firmware's outer voltage loop.
///
/// # Examples
///
/// ```
/// use p7_control::{FirmwareController, GuardbandPolicy, VoltFreqCurve};
/// use p7_types::{MegaHertz, Volts};
///
/// let curve = VoltFreqCurve::power7plus();
/// let policy = GuardbandPolicy::power7plus();
/// let fw = FirmwareController::new(MegaHertz(4200.0), policy.clone())?;
///
/// // DPLL is running 200 MHz above target: plenty of slack, trim voltage.
/// let v_nominal = policy.nominal_voltage(&curve, MegaHertz(4200.0));
/// let next = fw.adjust_voltage(v_nominal, MegaHertz(4400.0), &curve);
/// assert!(next < v_nominal);
/// # Ok::<(), p7_control::ControlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirmwareController {
    target: MegaHertz,
    policy: GuardbandPolicy,
    /// Fraction of the voltage error corrected per 32 ms tick.
    gain: f64,
    /// Largest set-point move per tick (slew protection).
    max_step: Volts,
}

impl FirmwareController {
    /// Creates a controller that servoes the DPLL frequency to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] when the target is not
    /// positive or the policy fails validation.
    pub fn new(target: MegaHertz, policy: GuardbandPolicy) -> Result<Self, ControlError> {
        if !(target.0.is_finite() && target.0 > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "target_frequency",
                value: target.0,
            });
        }
        policy.validate()?;
        Ok(FirmwareController {
            target,
            policy,
            gain: 0.7,
            max_step: Volts::from_millivolts(25.0),
        })
    }

    /// The frequency target the loop servoes to.
    #[must_use]
    pub fn target(&self) -> MegaHertz {
        self.target
    }

    /// The guardband policy in force.
    #[must_use]
    pub fn policy(&self) -> &GuardbandPolicy {
        &self.policy
    }

    /// Overrides the proportional gain (loop-tuning experiments).
    pub fn set_gain(&mut self, gain: f64) {
        self.gain = gain.clamp(0.0, 1.0);
    }

    /// One 32 ms control step: given the current rail set point and the
    /// observed (slowest-core) DPLL frequency, returns the next set point.
    ///
    /// When the DPLL runs above target there is spare margin — the voltage
    /// steps down; below target, the voltage steps back up. The set point
    /// never goes below the residual-guardband floor at the target
    /// frequency, and never above the static nominal (the baseline design
    /// already guarantees reliability there).
    #[must_use]
    pub fn adjust_voltage(
        &self,
        current_set: Volts,
        observed_freq: MegaHertz,
        curve: &VoltFreqCurve,
    ) -> Volts {
        let freq_error = observed_freq - self.target;
        // Convert the frequency surplus into the equivalent voltage surplus.
        let v_error = Volts::from_millivolts(freq_error.0 / curve.mhz_per_volt() * 1000.0);
        let step = (v_error * self.gain).clamp(-self.max_step, self.max_step);
        let proposed = current_set - step;
        let floor = self.voltage_floor(curve);
        let ceiling = self.policy.nominal_voltage(curve, self.target);
        proposed.clamp(floor, ceiling)
    }

    /// The lowest set point the firmware will ever select: circuit voltage
    /// at the target frequency plus the residual guardband.
    #[must_use]
    pub fn voltage_floor(&self, curve: &VoltFreqCurve) -> Volts {
        curve.v_circuit(self.target) + self.policy.residual_guardband
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FirmwareController, VoltFreqCurve, Volts) {
        let curve = VoltFreqCurve::power7plus();
        let policy = GuardbandPolicy::power7plus();
        let nominal = policy.nominal_voltage(&curve, MegaHertz(4200.0));
        let fw = FirmwareController::new(MegaHertz(4200.0), policy).unwrap();
        (fw, curve, nominal)
    }

    #[test]
    fn surplus_frequency_lowers_voltage() {
        let (fw, curve, nominal) = setup();
        let next = fw.adjust_voltage(nominal, MegaHertz(4400.0), &curve);
        assert!(next < nominal);
    }

    #[test]
    fn deficit_frequency_raises_voltage() {
        let (fw, curve, _) = setup();
        let low = fw.voltage_floor(&curve);
        let next = fw.adjust_voltage(low, MegaHertz(4100.0), &curve);
        assert!(next > low);
    }

    #[test]
    fn never_breaches_floor() {
        let (fw, curve, _) = setup();
        let mut v = fw.voltage_floor(&curve) + Volts::from_millivolts(5.0);
        for _ in 0..100 {
            v = fw.adjust_voltage(v, MegaHertz(4700.0), &curve);
            assert!(v >= fw.voltage_floor(&curve) - Volts(1e-12));
        }
    }

    #[test]
    fn never_exceeds_nominal() {
        let (fw, curve, nominal) = setup();
        let mut v = nominal - Volts::from_millivolts(5.0);
        for _ in 0..100 {
            v = fw.adjust_voltage(v, MegaHertz(2800.0), &curve);
            assert!(v <= nominal + Volts(1e-12));
        }
    }

    #[test]
    fn converges_when_plant_follows() {
        // Close the loop with an idealized plant: the DPLL frequency is
        // f_max of the delivered voltage minus a fixed drop and the
        // residual reserve. The controller should settle near the point
        // where that frequency equals the target.
        let (fw, curve, nominal) = setup();
        let drop = Volts::from_millivolts(40.0);
        let reserve = fw.policy().residual_guardband;
        let mut v = nominal;
        for _ in 0..60 {
            let delivered = v - drop;
            let freq = curve.f_max(delivered - reserve);
            v = fw.adjust_voltage(v, freq, &curve);
        }
        let settled_freq = curve.f_max(v - drop - reserve);
        assert!(
            (settled_freq.0 - 4200.0).abs() < 3.0,
            "settled at {settled_freq}"
        );
        // The undervolt amount should be reclaimable-margin minus drop.
        let undervolt = (nominal - v).millivolts();
        let expected = fw.policy().reclaimable().millivolts() - 40.0;
        assert!(
            (undervolt - expected).abs() < 2.0,
            "undervolt {undervolt} vs {expected}"
        );
    }

    #[test]
    fn step_is_slew_limited() {
        let (fw, curve, nominal) = setup();
        let next = fw.adjust_voltage(nominal, MegaHertz(4700.0), &curve);
        assert!((nominal - next).millivolts() <= 25.0 + 1e-9);
    }

    #[test]
    fn rejects_bad_target() {
        assert!(FirmwareController::new(MegaHertz(0.0), GuardbandPolicy::power7plus()).is_err());
        assert!(
            FirmwareController::new(MegaHertz(f64::NAN), GuardbandPolicy::power7plus()).is_err()
        );
    }

    #[test]
    fn zero_gain_freezes_voltage_within_bounds() {
        let (mut fw, curve, nominal) = setup();
        fw.set_gain(0.0);
        let v = nominal - Volts::from_millivolts(30.0);
        assert_eq!(fw.adjust_voltage(v, MegaHertz(4500.0), &curve), v);
    }
}
