//! Circuit aging and how each guardbanding discipline pays for it.
//!
//! The paper's very first paragraph lists what the static margin insures
//! against: "the loadline, aging effects, fast noise processes and
//! calibration error". Aging (BTI/HCI threshold-voltage drift) slows the
//! critical paths over years, i.e. `v_circuit(f)` creeps upward:
//!
//! * a **static** design must provision the *end-of-life* allowance on day
//!   one — margin that is pure waste while the part is young;
//! * an **adaptive** design measures the real margin through its CPMs
//!   every cycle, so it pays only the aging that has actually happened —
//!   the undervolt simply shrinks as the part ages.
//!
//! [`AgingModel`] provides the drift curve; `study_aging` in `ags-bench`
//! quantifies the difference.

use crate::error::ControlError;
use crate::margin::VoltFreqCurve;
use p7_types::Volts;
use serde::{Deserialize, Serialize};

/// A sublinear (power-law) threshold-drift model: the classic
/// `ΔV ∝ t^n` shape of BTI aging, with `n ≈ 0.2`.
///
/// # Examples
///
/// ```
/// use p7_control::AgingModel;
///
/// let aging = AgingModel::power7plus();
/// let young = aging.drift_at_years(0.5);
/// let old = aging.drift_at_years(5.0);
/// assert!(old > young);
/// assert!(old <= aging.end_of_life_allowance());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Drift accumulated by the end of the design lifetime.
    eol_drift: Volts,
    /// Design lifetime in years.
    lifetime_years: f64,
    /// Power-law exponent of the drift curve.
    exponent: f64,
}

impl AgingModel {
    /// A server-class part: 25 mV of drift over a 10-year lifetime with
    /// the classic `t^0.2` BTI shape.
    #[must_use]
    pub fn power7plus() -> Self {
        AgingModel {
            eol_drift: Volts::from_millivolts(25.0),
            lifetime_years: 10.0,
            exponent: 0.2,
        }
    }

    /// Creates a model from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for non-positive
    /// lifetime or exponent, or a negative end-of-life drift.
    pub fn new(eol_drift: Volts, lifetime_years: f64, exponent: f64) -> Result<Self, ControlError> {
        if !(eol_drift.0.is_finite() && eol_drift.0 >= 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "eol_drift",
                value: eol_drift.0,
            });
        }
        if !(lifetime_years.is_finite() && lifetime_years > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "lifetime_years",
                value: lifetime_years,
            });
        }
        if !(exponent.is_finite() && exponent > 0.0 && exponent <= 1.0) {
            return Err(ControlError::InvalidParameter {
                name: "exponent",
                value: exponent,
            });
        }
        Ok(AgingModel {
            eol_drift,
            lifetime_years,
            exponent,
        })
    }

    /// The allowance a static design reserves on day one: the full
    /// end-of-life drift.
    #[must_use]
    pub fn end_of_life_allowance(&self) -> Volts {
        self.eol_drift
    }

    /// The drift that has actually accumulated after `years` in service
    /// (clamped to the end-of-life value).
    #[must_use]
    pub fn drift_at_years(&self, years: f64) -> Volts {
        if years <= 0.0 {
            return Volts::ZERO;
        }
        let fraction = (years / self.lifetime_years).min(1.0).powf(self.exponent);
        self.eol_drift * fraction
    }

    /// The margin a static design wastes at age `years`: allowance minus
    /// actual drift. Adaptive guardbanding reclaims exactly this through
    /// its CPMs.
    #[must_use]
    pub fn static_waste_at_years(&self, years: f64) -> Volts {
        self.end_of_life_allowance() - self.drift_at_years(years)
    }

    /// An aged frequency–voltage curve: `v_circuit` shifted up by the
    /// accumulated drift. Feed this to a simulation to run an aged part.
    ///
    /// # Errors
    ///
    /// Propagates [`ControlError::InvalidParameter`] from curve
    /// construction (never happens for finite drifts).
    pub fn aged_curve(
        &self,
        base: &VoltFreqCurve,
        years: f64,
    ) -> Result<VoltFreqCurve, ControlError> {
        let drift = self.drift_at_years(years);
        // Shifting the intercept shifts v_circuit uniformly.
        let intercept = base.v_circuit(p7_types::MegaHertz(0.0)) + drift;
        VoltFreqCurve::new(intercept, 1000.0 / base.mhz_per_volt())
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::MegaHertz;

    #[test]
    fn drift_is_monotone_and_clamped() {
        let m = AgingModel::power7plus();
        assert_eq!(m.drift_at_years(0.0), Volts::ZERO);
        let mut last = Volts::ZERO;
        for years in [0.1, 0.5, 1.0, 3.0, 10.0, 20.0] {
            let d = m.drift_at_years(years);
            assert!(d >= last, "drift must be monotone");
            last = d;
        }
        assert_eq!(m.drift_at_years(20.0), m.end_of_life_allowance());
    }

    #[test]
    fn bti_shape_front_loads_the_drift() {
        // t^0.2: half the drift arrives in the first ~3 % of the lifetime.
        let m = AgingModel::power7plus();
        let early = m.drift_at_years(0.31); // ~3 % of 10 years
        assert!(
            early.millivolts() > 0.45 * m.end_of_life_allowance().millivolts(),
            "early drift {early}"
        );
    }

    #[test]
    fn static_waste_shrinks_over_life() {
        let m = AgingModel::power7plus();
        let young = m.static_waste_at_years(0.1);
        let old = m.static_waste_at_years(9.0);
        assert!(young > old);
        assert!(old.0 >= 0.0);
    }

    #[test]
    fn aged_curve_shifts_v_circuit_uniformly() {
        let m = AgingModel::power7plus();
        let base = VoltFreqCurve::power7plus();
        let aged = m.aged_curve(&base, 10.0).unwrap();
        let drift = m.drift_at_years(10.0);
        for mhz in [2800.0, 3600.0, 4200.0] {
            let f = MegaHertz(mhz);
            let delta = aged.v_circuit(f) - base.v_circuit(f);
            assert!((delta - drift).abs() < Volts(1e-9));
        }
        // Same slope: an aged part is slower, not differently shaped.
        assert!((aged.mhz_per_volt() - base.mhz_per_volt()).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(AgingModel::new(Volts(-0.01), 10.0, 0.2).is_err());
        assert!(AgingModel::new(Volts(0.02), 0.0, 0.2).is_err());
        assert!(AgingModel::new(Volts(0.02), 10.0, 1.5).is_err());
        assert!(AgingModel::new(Volts(0.02), 10.0, 0.2).is_ok());
    }
}
