//! Error types of the control crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring the guardband control stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// A configuration parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending field.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidParameter { name, value } => {
                write!(f, "control parameter `{name}` is out of range: {value}")
            }
        }
    }
}

impl Error for ControlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let err = ControlError::InvalidParameter {
            name: "dpll_start",
            value: -1.0,
        };
        assert!(format!("{err}").contains("dpll_start"));
    }
}
