//! Per-core digital phase-locked loop (DPLL).
//!
//! Each POWER7+ core has its own DPLL that can slew the clock by 7 % in
//! under 10 ns while the clock stays active (Sec. 2.2). Every cycle the
//! worst CPM of the core is compared against the calibration point and the
//! DPLL slews frequency to hold the margin there. At the simulator's 32 ms
//! resolution the loop is quasi-instantaneous, but the slew limit still
//! matters for the sub-window droop response, so it is modelled per step.

use crate::error::ControlError;
use crate::margin::VoltFreqCurve;
use p7_types::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// One core's DPLL.
///
/// # Examples
///
/// ```
/// use p7_control::{Dpll, VoltFreqCurve};
/// use p7_types::{MegaHertz, Volts};
///
/// let curve = VoltFreqCurve::power7plus();
/// let mut dpll = Dpll::new(MegaHertz(4200.0), MegaHertz(2800.0), MegaHertz(4700.0)).unwrap();
/// // Plenty of usable voltage: the DPLL overclocks.
/// let usable = curve.v_circuit(MegaHertz(4200.0)) + Volts::from_millivolts(80.0);
/// dpll.track(usable, &curve);
/// assert!(dpll.frequency() > MegaHertz(4200.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dpll {
    frequency: MegaHertz,
    min: MegaHertz,
    max: MegaHertz,
    /// Maximum relative frequency change per `track` call (1.0 = unlimited).
    slew_per_step: f64,
}

impl Dpll {
    /// Creates a DPLL at `start`, clamped to `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] when the range is empty
    /// or `start` lies outside it.
    pub fn new(start: MegaHertz, min: MegaHertz, max: MegaHertz) -> Result<Self, ControlError> {
        if !(min.0.is_finite() && max.0.is_finite() && min.0 > 0.0 && min <= max) {
            return Err(ControlError::InvalidParameter {
                name: "dpll_range",
                value: max.0 - min.0,
            });
        }
        if start < min || start > max {
            return Err(ControlError::InvalidParameter {
                name: "dpll_start",
                value: start.0,
            });
        }
        Ok(Dpll {
            frequency: start,
            min,
            max,
            slew_per_step: 1.0,
        })
    }

    /// Limits how far the clock may move per `track` call (e.g. `0.07` for
    /// the hardware's 7 %-per-10 ns behaviour when stepping at fine
    /// timescales).
    pub fn set_slew_per_step(&mut self, slew: f64) {
        self.slew_per_step = slew.clamp(0.0, 1.0);
    }

    /// Current output frequency.
    #[must_use]
    pub fn frequency(&self) -> MegaHertz {
        self.frequency
    }

    /// The upper clamp of this DPLL.
    #[must_use]
    pub fn max_frequency(&self) -> MegaHertz {
        self.max
    }

    /// Forces the clock (used when entering static-guardband mode).
    pub fn set_frequency(&mut self, f: MegaHertz) {
        self.frequency = f.clamp(self.min, self.max);
    }

    /// Slews toward the fastest clock the given *usable* voltage allows.
    ///
    /// `usable_voltage` is the delivered core voltage minus the residual
    /// guardband and ripple allowance. The closed CPM–DPLL loop's fixed
    /// point is the frequency whose critical paths exactly close timing at
    /// that voltage, `f_max(usable_voltage)`; the DPLL slews there within
    /// its per-step limit. Returns the new frequency.
    pub fn track(&mut self, usable_voltage: Volts, curve: &VoltFreqCurve) -> MegaHertz {
        let target = curve.f_max(usable_voltage).clamp(self.min, self.max);
        let max_step = MegaHertz(self.frequency.0 * self.slew_per_step);
        let delta = (target - self.frequency).clamp(-max_step, max_step);
        self.frequency = (self.frequency + delta).clamp(self.min, self.max);
        self.frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpll() -> Dpll {
        Dpll::new(MegaHertz(4200.0), MegaHertz(2800.0), MegaHertz(4700.0)).unwrap()
    }

    #[test]
    fn rejects_bad_ranges() {
        assert!(Dpll::new(MegaHertz(4200.0), MegaHertz(4700.0), MegaHertz(2800.0)).is_err());
        assert!(Dpll::new(MegaHertz(5000.0), MegaHertz(2800.0), MegaHertz(4700.0)).is_err());
        assert!(Dpll::new(MegaHertz(4000.0), MegaHertz(0.0), MegaHertz(4700.0)).is_err());
    }

    #[test]
    fn positive_margin_overclocks() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        let v = curve.v_circuit(MegaHertz(4200.0)) + Volts::from_millivolts(58.0);
        let f = d.track(v, &curve);
        // 58 mV of usable margin at 5.8 MHz/mV ≈ +336 MHz.
        assert!((f.0 - 4200.0 - 336.0).abs() < 5.0, "freq {f}");
    }

    #[test]
    fn negative_margin_slows_down() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        let v = curve.v_circuit(MegaHertz(4200.0)) - Volts::from_millivolts(29.0);
        let f = d.track(v, &curve);
        assert!(f < MegaHertz(4200.0), "freq {f}");
        assert!((f.0 - (4200.0 - 29.0 * 5.8)).abs() < 5.0);
    }

    #[test]
    fn clamps_at_max() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        let f = d.track(Volts(2.0), &curve);
        assert_eq!(f, MegaHertz(4700.0));
    }

    #[test]
    fn clamps_at_min() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        let f = d.track(Volts(0.2), &curve);
        assert_eq!(f, MegaHertz(2800.0));
    }

    #[test]
    fn slew_limit_bounds_step() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        d.set_slew_per_step(0.02);
        let before = d.frequency();
        let after = d.track(Volts(2.0), &curve);
        assert!((after.0 - before.0) / before.0 <= 0.02 + 1e-9);
        // Repeated steps converge to the clamp.
        for _ in 0..30 {
            d.track(Volts(2.0), &curve);
        }
        assert_eq!(d.frequency(), MegaHertz(4700.0));
    }

    #[test]
    fn tracking_is_idempotent_at_equilibrium() {
        let curve = VoltFreqCurve::power7plus();
        let mut d = dpll();
        let m = curve.v_circuit(MegaHertz(4200.0)) + Volts::from_millivolts(40.0);
        let f1 = d.track(m, &curve);
        let f2 = d.track(m, &curve);
        assert!((f1.0 - f2.0).abs() < 1e-9);
    }

    #[test]
    fn set_frequency_clamps() {
        let mut d = dpll();
        d.set_frequency(MegaHertz(9000.0));
        assert_eq!(d.frequency(), MegaHertz(4700.0));
        d.set_frequency(MegaHertz(100.0));
        assert_eq!(d.frequency(), MegaHertz(2800.0));
    }
}
