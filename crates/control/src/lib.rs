//! Guardband control substrate: the frequency–voltage relationship, the
//! per-core DPLLs, and the firmware voltage controller of the POWER7+
//! adaptive-guardbanding loop (Sec. 2.2 of the paper).
//!
//! The control stack has three layers:
//!
//! 1. [`margin::VoltFreqCurve`] — how much voltage the circuits need at a
//!    given clock frequency, plus the [`margin::GuardbandPolicy`] deciding
//!    how much margin a static design reserves versus the residual an
//!    adaptive design keeps for sensor nondeterminism,
//! 2. [`dpll::Dpll`] — the per-core digital PLL that slews frequency within
//!    nanoseconds to hold the worst CPM at its calibration point,
//! 3. [`firmware::FirmwareController`] — the 32 ms firmware loop that, in
//!    undervolting mode, trims the VRM set point until the DPLL frequency
//!    sits at the target.
//!
//! Three [`GuardbandMode`]s reproduce the paper's experimental
//! configurations: `StaticGuardband` (baseline), `Overclock`
//! (frequency-boosting) and `Undervolt` (power-saving).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod dpll;
pub mod error;
pub mod firmware;
pub mod margin;
pub mod modes;
pub mod pstate;
pub mod supervisor;

pub use aging::AgingModel;
pub use dpll::Dpll;
pub use error::ControlError;
pub use firmware::FirmwareController;
pub use margin::{GuardbandPolicy, VoltFreqCurve};
pub use modes::GuardbandMode;
pub use pstate::{PState, PStateTable};
pub use supervisor::{
    HealthIssue, SafetySupervisor, SupervisorConfig, SupervisorEvent, WindowObservation,
};
