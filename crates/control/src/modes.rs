//! The guardbanding operating modes the paper characterizes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which guardbanding discipline the chip runs under.
///
/// The paper's firmware hooks "let us place the system in either operating
/// mode" (Sec. 3.1); the static mode is the measurement baseline.
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandMode;
///
/// assert!(GuardbandMode::Undervolt.is_adaptive());
/// assert!(!GuardbandMode::StaticGuardband.is_adaptive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GuardbandMode {
    /// Fixed nominal voltage and fixed DVFS frequency (baseline).
    StaticGuardband,
    /// Fixed nominal voltage; DPLLs convert spare margin into clock
    /// frequency (performance-boosting mode).
    Overclock,
    /// Fixed target frequency; firmware converts spare margin into a lower
    /// VRM set point (power-saving mode).
    Undervolt,
}

impl GuardbandMode {
    /// True for the two adaptive modes.
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        !matches!(self, GuardbandMode::StaticGuardband)
    }

    /// All modes, baseline first.
    #[must_use]
    pub fn all() -> [GuardbandMode; 3] {
        [
            GuardbandMode::StaticGuardband,
            GuardbandMode::Overclock,
            GuardbandMode::Undervolt,
        ]
    }
}

impl fmt::Display for GuardbandMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GuardbandMode::StaticGuardband => "static-guardband",
            GuardbandMode::Overclock => "overclock",
            GuardbandMode::Undervolt => "undervolt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptivity_flags() {
        assert!(GuardbandMode::Overclock.is_adaptive());
        assert!(GuardbandMode::Undervolt.is_adaptive());
        assert!(!GuardbandMode::StaticGuardband.is_adaptive());
    }

    #[test]
    fn all_lists_three_distinct_modes() {
        let all = GuardbandMode::all();
        assert_eq!(all.len(), 3);
        assert_ne!(all[0], all[1]);
        assert_ne!(all[1], all[2]);
    }

    #[test]
    fn display_is_kebab_case() {
        assert_eq!(
            format!("{}", GuardbandMode::StaticGuardband),
            "static-guardband"
        );
    }
}
