//! Firmware safety supervisor: graceful guardband degradation.
//!
//! Running with a shaved guardband is only safe while the CPM feedback
//! is trustworthy. The supervisor watches one socket's per-window
//! telemetry for implausibility — stale readouts, CPM slots that
//! disagree with their core's other slots, engaged hardware fail-safes,
//! and exhausted worst-case margin — and degrades the socket from
//! Undervolt/Overclock to the static guardband when any check trips.
//!
//! Degradation is hysteretic: a trip opens a quarantine window whose
//! length backs off exponentially on repeated trips (a persistent fault
//! converges to near-permanent static operation), and adaptive operation
//! re-arms only after N consecutive healthy probation windows. The
//! supervisor also accumulates the safety metric of the fault campaign:
//! margin violations, i.e. windows where a core's on-chip voltage fell
//! below its critical-path requirement.

use crate::modes::GuardbandMode;
use p7_obs::{metrics, trace};
use p7_types::{CORES_PER_SOCKET, CPMS_PER_CORE, CPMS_PER_SOCKET};
use serde::{Deserialize, Serialize};

/// Prometheus label value for a socket index, without allocating.
fn socket_label(socket: u8) -> &'static str {
    const LABELS: [&str; 8] = ["0", "1", "2", "3", "4", "5", "6", "7"];
    LABELS.get(socket as usize).copied().unwrap_or("other")
}

/// Prometheus label value for a [`HealthIssue`].
fn issue_label(issue: HealthIssue) -> &'static str {
    match issue {
        HealthIssue::StaleTelemetry => "stale_telemetry",
        HealthIssue::CpmDisagreement => "cpm_disagreement",
        HealthIssue::FailSafe => "fail_safe",
        HealthIssue::MarginExhausted => "margin_exhausted",
    }
}

/// Tunable thresholds of the [`SafetySupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Maximum plausible tap spread among one core's five CPM slots;
    /// a wider spread means at least one slot is lying.
    pub vote_spread_taps: u8,
    /// Consecutive missing-telemetry windows tolerated before the
    /// staleness counter trips.
    pub stale_limit: u32,
    /// Quarantine length (windows) after the first trip.
    pub quarantine_base: u32,
    /// Upper bound on the exponentially backed-off quarantine length.
    pub quarantine_max: u32,
    /// Consecutive healthy probation windows required to re-arm.
    pub rearm_windows: u32,
    /// Trip when an active core's worst-case (sticky) reading falls to
    /// this tap or below during adaptive operation.
    pub sticky_floor_taps: u8,
}

impl SupervisorConfig {
    /// Thresholds matched to the POWER7+ model's calibration: the
    /// firmware's load-transient reserve keeps a healthy undervolted
    /// core's sticky reading at tap 2 or above, so a sticky tap of 1
    /// (momentary worst-case margin down to one sensitivity step,
    /// ~10–30 mV) already signals the reserve has been eaten.
    #[must_use]
    pub fn power7plus() -> Self {
        SupervisorConfig {
            vote_spread_taps: 4,
            stale_limit: 2,
            quarantine_base: 8,
            quarantine_max: 128,
            rearm_windows: 6,
            sticky_floor_taps: 1,
        }
    }

    /// Checks threshold sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.quarantine_base == 0 {
            return Err("quarantine_base must be > 0".into());
        }
        if self.quarantine_max < self.quarantine_base {
            return Err("quarantine_max must be >= quarantine_base".into());
        }
        if self.rearm_windows == 0 {
            return Err("rearm_windows must be > 0".into());
        }
        Ok(())
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::power7plus()
    }
}

/// What one 32 ms window looked like to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowObservation {
    /// End-of-window CPM readings, flat-indexed (`core * 5 + slot`).
    pub sample: [u8; CPMS_PER_SOCKET],
    /// Sticky (worst-case within the window) CPM readings.
    pub sticky: [u8; CPMS_PER_SOCKET],
    /// Which cores are powered on (their CPMs carry meaning).
    pub core_on: [bool; CORES_PER_SOCKET],
    /// Whether out-of-band telemetry arrived for this window.
    pub telemetry_fresh: bool,
    /// Whether the socket actually ran in an adaptive mode this window
    /// (margin checks only apply to shaved-guardband operation).
    pub ran_adaptive: bool,
}

/// Why the supervisor judged a window implausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthIssue {
    /// Telemetry has been missing longer than the staleness limit.
    StaleTelemetry,
    /// A core's CPM slots disagree beyond the plausible spread.
    CpmDisagreement,
    /// The hardware fail-safe engaged (a CPM read tap 0).
    FailSafe,
    /// Worst-case margin was fully consumed during adaptive operation.
    MarginExhausted,
}

/// A state transition worth recording in telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupervisorEvent {
    /// The socket was degraded to the static guardband.
    Degraded(HealthIssue),
    /// Adaptive operation was re-armed after a healthy probation.
    Rearmed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Adaptive operation permitted.
    Armed,
    /// Forced static for a fixed number of windows.
    Quarantined,
    /// Quarantine expired; still static while health is re-established.
    Probation,
}

/// Per-socket safety supervisor with hysteretic degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetySupervisor {
    config: SupervisorConfig,
    /// Socket index used as the metric label (see [`Self::with_socket`]).
    socket: u8,
    state: State,
    quarantine_left: u32,
    trips: u32,
    rearms: u32,
    healthy_streak: u32,
    stale_windows: u32,
    margin_violations: u64,
    degraded_windows: u64,
}

impl SafetySupervisor {
    /// A freshly armed supervisor attributing metrics to socket 0.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        SafetySupervisor::with_socket(config, 0)
    }

    /// A freshly armed supervisor whose degradations, re-arms, and
    /// plausibility-vote failures are labelled `socket="<socket>"` in the
    /// global [`p7_obs`] registry.
    #[must_use]
    pub fn with_socket(config: SupervisorConfig, socket: u8) -> Self {
        SafetySupervisor {
            config,
            socket,
            state: State::Armed,
            quarantine_left: 0,
            trips: 0,
            rearms: 0,
            healthy_streak: 0,
            stale_windows: 0,
            margin_violations: 0,
            degraded_windows: 0,
        }
    }

    /// Restores the just-constructed state (used by simulation reset),
    /// keeping the socket label.
    pub fn reset(&mut self) {
        *self = SafetySupervisor::with_socket(self.config, self.socket);
    }

    /// The configured thresholds.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Whether adaptive (shaved-guardband) operation is permitted.
    #[must_use]
    pub fn allows_adaptive(&self) -> bool {
        self.state == State::Armed
    }

    /// The mode the socket is allowed to run, given the requested one.
    #[must_use]
    pub fn effective_mode(&self, requested: GuardbandMode) -> GuardbandMode {
        if self.allows_adaptive() {
            requested
        } else {
            GuardbandMode::StaticGuardband
        }
    }

    /// Number of degradations so far.
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Number of re-arms so far.
    #[must_use]
    pub fn rearms(&self) -> u32 {
        self.rearms
    }

    /// Windows spent degraded (quarantine plus probation).
    #[must_use]
    pub fn degraded_windows(&self) -> u64 {
        self.degraded_windows
    }

    /// Accumulated margin violations (the campaign safety metric).
    #[must_use]
    pub fn margin_violations(&self) -> u64 {
        self.margin_violations
    }

    /// Records `count` margin violations observed this window.
    pub fn note_margin_violations(&mut self, count: u64) {
        self.margin_violations += count;
    }

    /// Feeds one window of telemetry; returns a transition if the
    /// supervisor degraded or re-armed. The decision governs the *next*
    /// window — degradation cannot retroactively fix the one observed.
    pub fn observe(&mut self, obs: &WindowObservation) -> Option<SupervisorEvent> {
        let issue = self.health_issue(obs);
        match self.state {
            State::Armed => issue.map(|i| {
                self.trip();
                self.record_degrade(i);
                SupervisorEvent::Degraded(i)
            }),
            State::Quarantined => {
                self.degraded_windows += 1;
                self.quarantine_left = self.quarantine_left.saturating_sub(1);
                if self.quarantine_left == 0 {
                    self.state = State::Probation;
                    self.healthy_streak = 0;
                }
                None
            }
            State::Probation => {
                self.degraded_windows += 1;
                if let Some(i) = issue {
                    self.trip();
                    self.record_degrade(i);
                    return Some(SupervisorEvent::Degraded(i));
                }
                self.healthy_streak += 1;
                if self.healthy_streak >= self.config.rearm_windows {
                    self.state = State::Armed;
                    self.rearms += 1;
                    self.record_rearm();
                    Some(SupervisorEvent::Rearmed)
                } else {
                    None
                }
            }
        }
    }

    /// Publishes one degradation to the registry and trace. Degradations
    /// are rare (each opens a multi-window quarantine), so the labelled
    /// registry lookup is off every hot path.
    fn record_degrade(&self, issue: HealthIssue) {
        if !metrics::global().is_enabled() && !trace::is_enabled() {
            return;
        }
        metrics::global()
            .counter_with(
                "ags_supervisor_degrades_total",
                "Sockets degraded to the static guardband, by socket and health issue",
                &[
                    ("socket", socket_label(self.socket)),
                    ("issue", issue_label(issue)),
                ],
            )
            .inc();
        trace::instant("supervisor_degrade", u64::from(self.socket));
    }

    /// Publishes one re-arm to the registry and trace.
    fn record_rearm(&self) {
        if !metrics::global().is_enabled() && !trace::is_enabled() {
            return;
        }
        metrics::global()
            .counter_with(
                "ags_supervisor_rearms_total",
                "Adaptive operation re-armed after healthy probation, by socket",
                &[("socket", socket_label(self.socket))],
            )
            .inc();
        trace::instant("supervisor_rearm", u64::from(self.socket));
    }

    /// Publishes one plausibility-vote failure (a core whose CPM slots
    /// disagree beyond the configured spread).
    fn record_vote_failure(&self) {
        if !metrics::global().is_enabled() {
            return;
        }
        metrics::global()
            .counter_with(
                "ags_supervisor_vote_failures_total",
                "Windows in which a core's CPM slots disagreed beyond the plausible spread, by socket",
                &[("socket", socket_label(self.socket))],
            )
            .inc();
    }

    /// Opens (or re-opens) a quarantine with exponential backoff.
    fn trip(&mut self) {
        let shift = self.trips.min(16);
        let len = self
            .config
            .quarantine_base
            .saturating_mul(1 << shift)
            .min(self.config.quarantine_max);
        self.trips += 1;
        self.quarantine_left = len.max(1);
        self.healthy_streak = 0;
        self.state = State::Quarantined;
    }

    /// Evaluates one window's plausibility. Always runs (even while
    /// degraded) so the staleness counter and probation health tracking
    /// see every window.
    fn health_issue(&mut self, obs: &WindowObservation) -> Option<HealthIssue> {
        if !obs.telemetry_fresh {
            self.stale_windows += 1;
            if self.stale_windows > self.config.stale_limit {
                return Some(HealthIssue::StaleTelemetry);
            }
            // Too early to trip, and the readings themselves are stale:
            // nothing else can be judged this window.
            return None;
        }
        self.stale_windows = 0;
        for core in 0..CORES_PER_SOCKET {
            if !obs.core_on[core] {
                continue;
            }
            let base = core * CPMS_PER_CORE;
            let slots = &obs.sample[base..base + CPMS_PER_CORE];
            let min = *slots.iter().min().expect("core has CPM slots");
            let max = *slots.iter().max().expect("core has CPM slots");
            if min == 0 {
                return Some(HealthIssue::FailSafe);
            }
            if max - min > self.config.vote_spread_taps {
                self.record_vote_failure();
                return Some(HealthIssue::CpmDisagreement);
            }
            if obs.ran_adaptive {
                let sticky = &obs.sticky[base..base + CPMS_PER_CORE];
                let sticky_min = *sticky.iter().min().expect("core has CPM slots");
                if sticky_min <= self.config.sticky_floor_taps {
                    return Some(HealthIssue::MarginExhausted);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn healthy() -> WindowObservation {
        WindowObservation {
            sample: [2; CPMS_PER_SOCKET],
            sticky: [2; CPMS_PER_SOCKET],
            core_on: [true; CORES_PER_SOCKET],
            telemetry_fresh: true,
            ran_adaptive: true,
        }
    }

    #[test]
    fn healthy_windows_keep_the_supervisor_armed() {
        let mut sup = SafetySupervisor::new(SupervisorConfig::power7plus());
        for _ in 0..100 {
            assert_eq!(sup.observe(&healthy()), None);
        }
        assert!(sup.allows_adaptive());
        assert_eq!(sup.trips(), 0);
        assert_eq!(sup.degraded_windows(), 0);
    }

    #[test]
    fn disagreeing_slots_trip_and_quarantine_backs_off_exponentially() {
        let cfg = SupervisorConfig::power7plus();
        let mut sup = SafetySupervisor::new(cfg);
        let mut bad = healthy();
        bad.sample[3] = 11; // core 0, slot 3 claims huge margin

        // Trip 1: quarantine_base windows of quarantine.
        assert_eq!(
            sup.observe(&bad),
            Some(SupervisorEvent::Degraded(HealthIssue::CpmDisagreement))
        );
        assert!(!sup.allows_adaptive());
        let mut degraded = 0;
        let mut probation = healthy();
        probation.ran_adaptive = false;
        // Serve quarantine + healthy probation, expect a re-arm.
        loop {
            degraded += 1;
            assert!(degraded < 1000, "supervisor never re-armed");
            if sup.observe(&probation) == Some(SupervisorEvent::Rearmed) {
                break;
            }
        }
        assert_eq!(
            degraded,
            (cfg.quarantine_base + cfg.rearm_windows) as usize,
            "first quarantine is the base length"
        );
        assert!(sup.allows_adaptive());
        assert_eq!(sup.rearms(), 1);

        // Trip 2: quarantine doubles.
        assert!(sup.observe(&bad).is_some());
        let mut degraded2 = 0;
        loop {
            degraded2 += 1;
            assert!(degraded2 < 1000, "supervisor never re-armed");
            if sup.observe(&probation) == Some(SupervisorEvent::Rearmed) {
                break;
            }
        }
        assert_eq!(
            degraded2,
            (2 * cfg.quarantine_base + cfg.rearm_windows) as usize
        );
        assert_eq!(sup.trips(), 2);
    }

    #[test]
    fn persistent_fail_safe_retrips_at_probation_without_rearm() {
        let mut sup = SafetySupervisor::new(SupervisorConfig::power7plus());
        let mut dead = healthy();
        dead.sample[7] = 0; // core 1, slot 2 reads tap 0
        dead.ran_adaptive = false;
        assert_eq!(
            sup.observe(&dead),
            Some(SupervisorEvent::Degraded(HealthIssue::FailSafe))
        );
        let mut retrips = 0;
        for _ in 0..2000 {
            if let Some(SupervisorEvent::Degraded(HealthIssue::FailSafe)) = sup.observe(&dead) {
                retrips += 1;
            }
        }
        assert!(retrips >= 2, "probation must keep re-tripping");
        assert_eq!(sup.rearms(), 0);
        assert!(!sup.allows_adaptive());
    }

    #[test]
    fn staleness_tolerates_short_gaps_then_trips() {
        let cfg = SupervisorConfig::power7plus();
        let mut sup = SafetySupervisor::new(cfg);
        let mut stale = healthy();
        stale.telemetry_fresh = false;
        for _ in 0..cfg.stale_limit {
            assert_eq!(sup.observe(&stale), None, "within the stale budget");
        }
        assert_eq!(
            sup.observe(&stale),
            Some(SupervisorEvent::Degraded(HealthIssue::StaleTelemetry))
        );
        // A fresh window resets the counter after re-arm.
        sup.reset();
        assert_eq!(sup.observe(&stale), None);
        assert_eq!(sup.observe(&healthy()), None);
        for _ in 0..cfg.stale_limit {
            assert_eq!(sup.observe(&stale), None, "counter was reset by freshness");
        }
    }

    #[test]
    fn sticky_floor_only_applies_to_adaptive_windows() {
        let mut sup = SafetySupervisor::new(SupervisorConfig::power7plus());
        let mut exhausted = healthy();
        exhausted.sticky = [0; CPMS_PER_SOCKET];
        exhausted.ran_adaptive = false;
        assert_eq!(sup.observe(&exhausted), None, "static windows exempt");
        exhausted.ran_adaptive = true;
        assert_eq!(
            sup.observe(&exhausted),
            Some(SupervisorEvent::Degraded(HealthIssue::MarginExhausted))
        );
    }

    #[test]
    fn off_cores_are_excluded_from_voting() {
        let mut sup = SafetySupervisor::new(SupervisorConfig::power7plus());
        let mut obs = healthy();
        obs.core_on = [false; CORES_PER_SOCKET];
        obs.core_on[0] = true;
        // Garbage on an off core must not trip anything.
        obs.sample[CPMS_PER_CORE] = 0;
        obs.sample[CPMS_PER_CORE + 1] = 11;
        assert_eq!(sup.observe(&obs), None);
        assert!(sup.allows_adaptive());
    }

    #[test]
    fn margin_violations_accumulate() {
        let mut sup = SafetySupervisor::new(SupervisorConfig::power7plus());
        sup.note_margin_violations(3);
        sup.note_margin_violations(0);
        sup.note_margin_violations(2);
        assert_eq!(sup.margin_violations(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The supervisor never stays armed through a window whose
        /// telemetry is implausible on its face: any active core with a
        /// tap-0 reading or an implausible spread forbids adaptive
        /// operation from the next window on, so an undervolt can never
        /// be deepened on the strength of a lying sensor.
        #[test]
        fn implausible_telemetry_always_disarms(
            corrupt_slot in 0usize..CPMS_PER_SOCKET,
            corrupt_value in prop_oneof![Just(0u8), 8u8..12],
            healthy_prefix in 0usize..20,
        ) {
            let cfg = SupervisorConfig::power7plus();
            let mut sup = SafetySupervisor::new(cfg);
            for _ in 0..healthy_prefix {
                sup.observe(&healthy());
            }
            let mut obs = healthy();
            obs.sample[corrupt_slot] = corrupt_value;
            let event = sup.observe(&obs);
            prop_assert!(matches!(event, Some(SupervisorEvent::Degraded(_))));
            prop_assert!(!sup.allows_adaptive());
        }
    }
}
