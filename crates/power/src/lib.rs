//! Power-model substrate for the POWER7+ adaptive-guardband simulator.
//!
//! Models the chip's Vdd-rail power consumption, which is what the paper
//! measures ("we measure the microprocessor Vdd rail power by reading
//! physical sensors", Sec. 3.2):
//!
//! * [`dynamic`] — switching power `P = C_eff · V² · f · activity` per core,
//! * [`leakage`] — voltage- and temperature-dependent leakage with per-core
//!   power gating ([`gating`]),
//! * [`thermal`] — a first-order RC thermal model (the paper reports
//!   27–38 °C die temperatures; leakage feedback is mild but modelled),
//! * [`chip`] — aggregation of core and uncore power into the chip total.
//!
//! # Examples
//!
//! ```
//! use p7_power::{ChipPowerModel, CorePowerState, PowerConfig};
//! use p7_types::{Celsius, MegaHertz, Volts};
//!
//! let model = ChipPowerModel::new(PowerConfig::power7plus()).unwrap();
//! let busy = model.core_power(
//!     CorePowerState::Running,
//!     1.6,                      // effective capacitance, nF
//!     1.0,                      // activity factor
//!     Volts(1.2),
//!     MegaHertz(4200.0),
//!     Celsius(45.0),
//! );
//! let gated = model.core_power(
//!     CorePowerState::Gated,
//!     1.6,
//!     0.0,
//!     Volts(1.2),
//!     MegaHertz(4200.0),
//!     Celsius(45.0),
//! );
//! assert!(busy.total().0 > gated.total().0 * 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod gating;
pub mod leakage;
pub mod thermal;

pub use chip::{ChipPowerModel, CorePowerBreakdown};
pub use config::PowerConfig;
pub use error::PowerError;
pub use gating::CorePowerState;
pub use thermal::ThermalModel;
