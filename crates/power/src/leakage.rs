//! Leakage power with voltage/temperature dependence and power gating.
//!
//! Leakage rises roughly exponentially with supply voltage and temperature.
//! POWER7+ supports per-core power gating ("coarse-grained power
//! management", Sec. 2.1), which the loadline-borrowing evaluation relies
//! on: gated cores keep only a small residual (header-switch) leakage.

use crate::config::PowerConfig;
use p7_types::{Celsius, Volts, Watts};

/// Leakage of one powered-on core at voltage `v` and temperature `t`.
///
/// # Examples
///
/// ```
/// use p7_power::{leakage::core_leakage, PowerConfig};
/// use p7_types::{Celsius, Volts};
///
/// let cfg = PowerConfig::power7plus();
/// let nominal = core_leakage(&cfg, Volts(1.2), Celsius(45.0));
/// let undervolted = core_leakage(&cfg, Volts(1.1), Celsius(45.0));
/// assert!(undervolted < nominal);
/// ```
#[must_use]
pub fn core_leakage(cfg: &PowerConfig, v: Volts, t: Celsius) -> Watts {
    let v_term = ((v - cfg.leakage_v_ref).0 * cfg.leakage_v_sensitivity).exp();
    let t_term = ((t - cfg.leakage_t_ref).0 * cfg.leakage_t_sensitivity).exp();
    cfg.core_leakage_ref * v_term * t_term
}

/// Leakage of one power-gated core (residual through the header switches).
#[must_use]
pub fn gated_leakage(cfg: &PowerConfig, v: Volts, t: Celsius) -> Watts {
    core_leakage(cfg, v, t) * cfg.gated_residual
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PowerConfig {
        PowerConfig::power7plus()
    }

    #[test]
    fn reference_point_matches_config() {
        let cfg = cfg();
        let p = core_leakage(&cfg, cfg.leakage_v_ref, cfg.leakage_t_ref);
        assert!((p.0 - cfg.core_leakage_ref.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_voltage() {
        let cfg = cfg();
        let mut last = Watts(0.0);
        for mv in [1000.0, 1050.0, 1100.0, 1150.0, 1200.0] {
            let p = core_leakage(&cfg, Volts::from_millivolts(mv), Celsius(45.0));
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn monotone_in_temperature() {
        let cfg = cfg();
        let cool = core_leakage(&cfg, Volts(1.2), Celsius(27.0));
        let warm = core_leakage(&cfg, Volts(1.2), Celsius(38.0));
        assert!(warm > cool);
        // The paper's 27–38 °C range changes leakage only mildly (<20 %).
        assert!(warm.0 / cool.0 < 1.2);
    }

    #[test]
    fn gating_removes_almost_all_leakage() {
        let cfg = cfg();
        let on = core_leakage(&cfg, Volts(1.2), Celsius(45.0));
        let off = gated_leakage(&cfg, Volts(1.2), Celsius(45.0));
        assert!(off.0 < 0.05 * on.0);
        assert!(off.0 > 0.0);
    }

    #[test]
    fn eight_idle_cores_cost_tens_of_watts() {
        // Idle-power scale check: eight powered-on cores' leakage should be
        // a couple dozen watts, which is what loadline borrowing reclaims
        // by gating them.
        let cfg = cfg();
        let total = core_leakage(&cfg, Volts(1.2), Celsius(45.0)).0 * 8.0;
        assert!((15.0..45.0).contains(&total), "8-core leakage {total} W");
    }
}
