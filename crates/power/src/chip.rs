//! Chip-level power aggregation.

use crate::config::PowerConfig;
use crate::dynamic::dynamic_power;
use crate::error::PowerError;
use crate::gating::CorePowerState;
use crate::leakage::{core_leakage, gated_leakage};
use p7_types::{Celsius, MegaHertz, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Dynamic/leakage split of one core's power.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorePowerBreakdown {
    /// Switching power.
    pub dynamic: Watts,
    /// Leakage power.
    pub leakage: Watts,
}

impl CorePowerBreakdown {
    /// Total core power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage
    }
}

/// The POWER7+ Vdd-rail power model.
///
/// # Examples
///
/// ```
/// use p7_power::{ChipPowerModel, CorePowerState, PowerConfig};
/// use p7_types::{Celsius, MegaHertz, Volts};
///
/// let model = ChipPowerModel::new(PowerConfig::power7plus())?;
/// let p = model.core_power(
///     CorePowerState::Running, 1.6, 0.9,
///     Volts(1.2), MegaHertz(4200.0), Celsius(40.0),
/// );
/// assert!(p.total().0 > 5.0);
/// # Ok::<(), p7_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipPowerModel {
    config: PowerConfig,
}

impl ChipPowerModel {
    /// Builds the model after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when the configuration is
    /// out of range.
    pub fn new(config: PowerConfig) -> Result<Self, PowerError> {
        config.validate()?;
        Ok(ChipPowerModel { config })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Power of one core in the given state.
    ///
    /// `ceff_nf` and `activity` describe the running workload; they are
    /// ignored for idle and gated cores (an idle core still burns its clock
    /// grid, modelled by `idle_core_ceff_nf`).
    #[must_use]
    pub fn core_power(
        &self,
        state: CorePowerState,
        ceff_nf: f64,
        activity: f64,
        v: Volts,
        f: MegaHertz,
        t: Celsius,
    ) -> CorePowerBreakdown {
        match state {
            CorePowerState::Running => CorePowerBreakdown {
                // The clock grid always switches at full rate; the
                // workload's switched capacitance adds on top, scaled by
                // its activity factor.
                dynamic: dynamic_power(self.config.idle_core_ceff_nf, v, f, 1.0)
                    + dynamic_power(ceff_nf, v, f, clamp_activity(activity)),
                leakage: core_leakage(&self.config, v, t),
            },
            CorePowerState::IdleOn => CorePowerBreakdown {
                dynamic: dynamic_power(self.config.idle_core_ceff_nf, v, f, 1.0),
                leakage: core_leakage(&self.config, v, t),
            },
            CorePowerState::Gated => CorePowerBreakdown {
                dynamic: Watts::ZERO,
                leakage: gated_leakage(&self.config, v, t),
            },
        }
    }

    /// Uncore (nest, L3, memory controller) power at chip voltage `v`.
    ///
    /// Scales quadratically with voltage like any switching logic.
    #[must_use]
    pub fn uncore_power(&self, v: Volts) -> Watts {
        let r = v / self.config.uncore_v_ref;
        self.config.uncore_base * (r * r)
    }
}

/// Workload activity is clamped to a physical envelope.
fn clamp_activity(activity: f64) -> f64 {
    activity.clamp(0.0, 1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChipPowerModel {
        ChipPowerModel::new(PowerConfig::power7plus()).unwrap()
    }

    #[test]
    fn running_exceeds_idle_exceeds_gated() {
        let m = model();
        let args = (Volts(1.2), MegaHertz(4200.0), Celsius(45.0));
        let run = m.core_power(CorePowerState::Running, 1.6, 1.0, args.0, args.1, args.2);
        let idle = m.core_power(CorePowerState::IdleOn, 1.6, 1.0, args.0, args.1, args.2);
        let gated = m.core_power(CorePowerState::Gated, 1.6, 1.0, args.0, args.1, args.2);
        assert!(run.total() > idle.total());
        assert!(idle.total() > gated.total());
    }

    #[test]
    fn gated_core_has_no_dynamic_power() {
        let m = model();
        let p = m.core_power(
            CorePowerState::Gated,
            2.0,
            1.0,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(45.0),
        );
        assert_eq!(p.dynamic, Watts::ZERO);
        assert!(p.leakage.0 > 0.0);
    }

    #[test]
    fn chip_power_range_matches_paper() {
        // Full chip, power-hungry workload at nominal: should land in the
        // upper portion of the paper's 60–140 W band.
        let m = model();
        let core = m.core_power(
            CorePowerState::Running,
            2.0,
            1.0,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(45.0),
        );
        let chip = core.total().0 * 8.0 + m.uncore_power(Volts(1.2)).0;
        assert!((100.0..160.0).contains(&chip), "busy chip {chip} W");

        // One light core + seven idle: lower portion of the band.
        let light = m.core_power(
            CorePowerState::Running,
            1.1,
            0.8,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(35.0),
        );
        let idle = m.core_power(
            CorePowerState::IdleOn,
            0.0,
            0.0,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(35.0),
        );
        let chip1 = light.total().0 + idle.total().0 * 7.0 + m.uncore_power(Volts(1.2)).0;
        assert!((55.0..100.0).contains(&chip1), "light chip {chip1} W");
    }

    #[test]
    fn uncore_scales_quadratically() {
        let m = model();
        let full = m.uncore_power(Volts(1.2));
        let low = m.uncore_power(Volts(0.6));
        assert!((full.0 / low.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn undervolting_saves_double_digit_percent() {
        // A ~75 mV undervolt at one active core should save on the order of
        // 10–15 % of chip power — the paper's headline 13 % (Fig. 3a).
        let m = model();
        let chip = |v: Volts| {
            let run = m.core_power(
                CorePowerState::Running,
                1.5,
                1.0,
                v,
                MegaHertz(4200.0),
                Celsius(40.0),
            );
            let idle = m.core_power(
                CorePowerState::IdleOn,
                0.0,
                0.0,
                v,
                MegaHertz(4200.0),
                Celsius(40.0),
            );
            run.total().0 + 7.0 * idle.total().0 + m.uncore_power(v).0
        };
        let nominal = chip(Volts(1.2));
        let undervolted = chip(Volts(1.125));
        let saving = (nominal - undervolted) / nominal * 100.0;
        assert!((8.0..18.0).contains(&saving), "saving {saving}%");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = PowerConfig {
            uncore_base: Watts(0.0),
            ..PowerConfig::power7plus()
        };
        assert!(ChipPowerModel::new(bad).is_err());
    }

    #[test]
    fn activity_is_clamped() {
        let m = model();
        let huge = m.core_power(
            CorePowerState::Running,
            1.5,
            99.0,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(45.0),
        );
        let capped = m.core_power(
            CorePowerState::Running,
            1.5,
            1.5,
            Volts(1.2),
            MegaHertz(4200.0),
            Celsius(45.0),
        );
        assert_eq!(huge, capped);
    }
}
