//! Per-core power states.
//!
//! The loadline-borrowing evaluation (Sec. 5.1.2) distinguishes three core
//! states: running a thread, *turned on but idle* (clocked, ready to accept
//! work within a scheduling quantum), and *power gated* (deep sleep, woken
//! only on longer timescales).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The power state of one core.
///
/// # Examples
///
/// ```
/// use p7_power::CorePowerState;
///
/// assert!(CorePowerState::Running.is_on());
/// assert!(CorePowerState::IdleOn.is_on());
/// assert!(!CorePowerState::Gated.is_on());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorePowerState {
    /// Actively executing a thread.
    Running,
    /// Powered and clocked but idle (can accept work instantly).
    IdleOn,
    /// Power gated (deep sleep; negligible leakage, long wake latency).
    Gated,
}

impl CorePowerState {
    /// True when the core is powered (running or idle-on).
    #[must_use]
    pub fn is_on(self) -> bool {
        !matches!(self, CorePowerState::Gated)
    }

    /// True when the core is executing a thread.
    #[must_use]
    pub fn is_running(self) -> bool {
        matches!(self, CorePowerState::Running)
    }
}

impl fmt::Display for CorePowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorePowerState::Running => "running",
            CorePowerState::IdleOn => "idle-on",
            CorePowerState::Gated => "gated",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(CorePowerState::Running.is_running());
        assert!(!CorePowerState::IdleOn.is_running());
        assert!(!CorePowerState::Gated.is_on());
    }

    #[test]
    fn display_is_nonempty() {
        for s in [
            CorePowerState::Running,
            CorePowerState::IdleOn,
            CorePowerState::Gated,
        ] {
            assert!(!format!("{s}").is_empty());
        }
    }
}
