//! Error types of the power crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring the power model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A configuration parameter was out of its physical range.
    InvalidParameter {
        /// Name of the offending field.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter { name, value } => {
                write!(f, "power parameter `{name}` is out of range: {value}")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field() {
        let err = PowerError::InvalidParameter {
            name: "uncore_base",
            value: -2.0,
        };
        assert!(format!("{err}").contains("uncore_base"));
    }
}
