//! Configuration of the chip power model.

use crate::error::PowerError;
use p7_types::{Celsius, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of the POWER7+ Vdd-rail power model.
///
/// Calibrated so that the simulated chip spans the paper's measured range:
/// roughly 60 W (few cores active, undervolted) to 140 W (all cores running
/// a power-hungry workload at nominal voltage) — the x-axis of Fig. 10a and
/// the y-axes of Figs. 3a and 12b.
///
/// # Examples
///
/// ```
/// use p7_power::PowerConfig;
///
/// let cfg = PowerConfig::power7plus();
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Per-core leakage at the reference voltage/temperature.
    pub core_leakage_ref: Watts,
    /// Reference voltage of the leakage model.
    pub leakage_v_ref: Volts,
    /// Exponential voltage sensitivity of leakage (per volt).
    pub leakage_v_sensitivity: f64,
    /// Reference temperature of the leakage model.
    pub leakage_t_ref: Celsius,
    /// Exponential temperature sensitivity of leakage (per °C).
    pub leakage_t_sensitivity: f64,
    /// Fraction of leakage that survives power gating (header losses).
    pub gated_residual: f64,
    /// Clock-grid and idle-pipeline power of a powered-on but idle core, at
    /// the reference voltage (scales with `V²·f`).
    pub idle_core_ceff_nf: f64,
    /// Uncore (nest, L3, memory controllers) dynamic power at the reference
    /// voltage (scales with `V²`).
    pub uncore_base: Watts,
    /// Reference voltage for the uncore scaling.
    pub uncore_v_ref: Volts,
}

impl PowerConfig {
    /// The calibrated POWER7+ parameter set.
    #[must_use]
    pub fn power7plus() -> Self {
        PowerConfig {
            core_leakage_ref: Watts(3.4),
            leakage_v_ref: Volts(1.2),
            leakage_v_sensitivity: 2.6,
            leakage_t_ref: Celsius(45.0),
            leakage_t_sensitivity: 0.012,
            gated_residual: 0.03,
            idle_core_ceff_nf: 0.30,
            uncore_base: Watts(21.0),
            uncore_v_ref: Volts(1.2),
        }
    }

    /// Checks that every parameter is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when a power, voltage, or
    /// sensitivity is out of range (`gated_residual` must lie in `[0, 1]`).
    pub fn validate(&self) -> Result<(), PowerError> {
        let positive = [
            ("core_leakage_ref", self.core_leakage_ref.0),
            ("leakage_v_ref", self.leakage_v_ref.0),
            ("uncore_base", self.uncore_base.0),
            ("uncore_v_ref", self.uncore_v_ref.0),
        ];
        for (name, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        let non_negative = [
            ("leakage_v_sensitivity", self.leakage_v_sensitivity),
            ("leakage_t_sensitivity", self.leakage_t_sensitivity),
            ("idle_core_ceff_nf", self.idle_core_ceff_nf),
        ];
        for (name, value) in non_negative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        if !(self.gated_residual.is_finite() && (0.0..=1.0).contains(&self.gated_residual)) {
            return Err(PowerError::InvalidParameter {
                name: "gated_residual",
                value: self.gated_residual,
            });
        }
        Ok(())
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::power7plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PowerConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_negative_leakage() {
        let cfg = PowerConfig {
            core_leakage_ref: Watts(-1.0),
            ..PowerConfig::power7plus()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_residual_above_one() {
        let cfg = PowerConfig {
            gated_residual: 1.5,
            ..PowerConfig::power7plus()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_nan_sensitivity() {
        let cfg = PowerConfig {
            leakage_v_sensitivity: f64::NAN,
            ..PowerConfig::power7plus()
        };
        assert!(cfg.validate().is_err());
    }
}
