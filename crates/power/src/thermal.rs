//! First-order RC thermal model of the die.
//!
//! The paper measured die temperatures between 27 °C (lowest frequency) and
//! 38 °C (highest) and found the swing insignificant for CPM readings
//! (Sec. 4.1). We still model it because leakage — and therefore the
//! passive-drop feedback loop — depends weakly on temperature.

use p7_types::{Celsius, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A lumped thermal node: `dT/dt = (T_steady(P) − T) / τ`.
///
/// # Examples
///
/// ```
/// use p7_power::ThermalModel;
/// use p7_types::{Celsius, Seconds, Watts};
///
/// let mut t = ThermalModel::power7plus();
/// for _ in 0..10_000 {
///     t.step(Watts(120.0), Seconds::from_millis(32.0));
/// }
/// let settled = t.temperature();
/// assert!(settled > Celsius(30.0) && settled < Celsius(60.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    ambient: Celsius,
    /// Thermal resistance die→ambient, °C per watt.
    resistance: f64,
    /// Time constant of the die+heatsink, seconds.
    time_constant: Seconds,
    temperature: Celsius,
}

impl ThermalModel {
    /// A model calibrated to the paper's observed 27–38 °C range for
    /// 60–140 W chips under server-class cooling.
    #[must_use]
    pub fn power7plus() -> Self {
        ThermalModel::new(Celsius(22.0), 0.115, Seconds(20.0))
    }

    /// Creates a thermal node at ambient temperature.
    #[must_use]
    pub fn new(ambient: Celsius, resistance: f64, time_constant: Seconds) -> Self {
        ThermalModel {
            ambient,
            resistance,
            time_constant,
            temperature: ambient,
        }
    }

    /// Current die temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The temperature this power level would settle at.
    #[must_use]
    pub fn steady_state(&self, power: Watts) -> Celsius {
        Celsius(self.ambient.0 + self.resistance * power.0)
    }

    /// Advances the node by `dt` under dissipated power `power`.
    pub fn step(&mut self, power: Watts, dt: Seconds) {
        let target = self.steady_state(power);
        let alpha = 1.0 - (-dt.0 / self.time_constant.0).exp();
        self.temperature = Celsius(self.temperature.0 + alpha * (target.0 - self.temperature.0));
    }

    /// Resets the die to ambient (e.g. between experiments).
    pub fn reset(&mut self) {
        self.temperature = self.ambient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let t = ThermalModel::power7plus();
        assert_eq!(t.temperature(), Celsius(22.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut t = ThermalModel::power7plus();
        let p = Watts(100.0);
        for _ in 0..100_000 {
            t.step(p, Seconds::from_millis(32.0));
        }
        let expect = t.steady_state(p);
        assert!((t.temperature() - expect).abs() < Celsius(0.01));
    }

    #[test]
    fn steady_state_range_matches_paper() {
        // 60–140 W should settle within roughly the paper's observed band.
        let t = ThermalModel::power7plus();
        let low = t.steady_state(Watts(60.0));
        let high = t.steady_state(Watts(140.0));
        assert!(low > Celsius(25.0) && low < Celsius(35.0), "low {low}");
        assert!(high > Celsius(33.0) && high < Celsius(45.0), "high {high}");
    }

    #[test]
    fn step_moves_toward_target_monotonically() {
        let mut t = ThermalModel::power7plus();
        let mut last = t.temperature();
        for _ in 0..50 {
            t.step(Watts(120.0), Seconds(1.0));
            assert!(t.temperature() >= last);
            last = t.temperature();
        }
    }

    #[test]
    fn cooling_works_too() {
        let mut t = ThermalModel::power7plus();
        for _ in 0..1000 {
            t.step(Watts(140.0), Seconds(1.0));
        }
        let hot = t.temperature();
        for _ in 0..1000 {
            t.step(Watts(0.0), Seconds(1.0));
        }
        assert!(t.temperature() < hot);
        assert!((t.temperature() - Celsius(22.0)).abs() < Celsius(0.5));
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut t = ThermalModel::power7plus();
        t.step(Watts(140.0), Seconds(100.0));
        t.reset();
        assert_eq!(t.temperature(), Celsius(22.0));
    }
}
