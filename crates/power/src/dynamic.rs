//! Dynamic (switching) power.
//!
//! The classic CMOS switching-power law: `P = C_eff · V² · f · a`, where
//! `C_eff` is the workload's effective switched capacitance, `V` the core's
//! on-chip voltage, `f` the clock frequency and `a` the activity factor.
//! The quadratic voltage dependence is why the paper's undervolting mode
//! saves more power than the overclocking mode gains performance (Sec. 3.3,
//! first conclusion).

use p7_types::{MegaHertz, Volts, Watts};

/// Switching power for one core.
///
/// `ceff_nf` is the effective capacitance in nanofarads; with volts and
/// gigahertz this yields watts directly (`nF · V² · GHz = W`).
///
/// # Examples
///
/// ```
/// use p7_power::dynamic::dynamic_power;
/// use p7_types::{MegaHertz, Volts, Watts};
///
/// let p = dynamic_power(1.65, Volts(1.2), MegaHertz(4200.0), 1.0);
/// assert!((p.0 - 1.65 * 1.44 * 4.2).abs() < 1e-9);
/// ```
#[must_use]
pub fn dynamic_power(ceff_nf: f64, v: Volts, f: MegaHertz, activity: f64) -> Watts {
    debug_assert!(ceff_nf >= 0.0, "negative capacitance {ceff_nf}");
    Watts(ceff_nf * v.0 * v.0 * f.gigahertz() * activity.max(0.0))
}

/// Relative dynamic-power change from scaling voltage `v0 → v1` at fixed
/// frequency and activity.
///
/// Returns the ratio `P(v1)/P(v0)`; undervolting by 5 % returns ≈0.9025.
///
/// # Examples
///
/// ```
/// use p7_power::dynamic::voltage_scaling_ratio;
/// use p7_types::Volts;
///
/// let ratio = voltage_scaling_ratio(Volts(1.2), Volts(1.14));
/// assert!((ratio - 0.9025).abs() < 1e-6);
/// ```
#[must_use]
pub fn voltage_scaling_ratio(v0: Volts, v1: Volts) -> f64 {
    let r = v1 / v0;
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_in_voltage() {
        let p_full = dynamic_power(1.5, Volts(1.2), MegaHertz(4000.0), 1.0);
        let p_half = dynamic_power(1.5, Volts(0.6), MegaHertz(4000.0), 1.0);
        assert!((p_full.0 / p_half.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn linear_in_frequency_and_activity() {
        let base = dynamic_power(1.5, Volts(1.2), MegaHertz(2000.0), 0.5);
        let double_f = dynamic_power(1.5, Volts(1.2), MegaHertz(4000.0), 0.5);
        let double_a = dynamic_power(1.5, Volts(1.2), MegaHertz(2000.0), 1.0);
        assert!((double_f.0 / base.0 - 2.0).abs() < 1e-9);
        assert!((double_a.0 / base.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_activity_is_zero_power() {
        assert_eq!(
            dynamic_power(2.0, Volts(1.2), MegaHertz(4200.0), 0.0),
            Watts(0.0)
        );
    }

    #[test]
    fn negative_activity_clamps_to_zero() {
        assert_eq!(
            dynamic_power(2.0, Volts(1.2), MegaHertz(4200.0), -0.5),
            Watts(0.0)
        );
    }

    #[test]
    fn typical_core_lands_in_expected_band() {
        // A PARSEC-class core at nominal conditions draws roughly 6–13 W.
        for ceff in [1.0, 1.5, 2.0] {
            let p = dynamic_power(ceff, Volts(1.2), MegaHertz(4200.0), 1.0);
            assert!((5.0..14.0).contains(&p.0), "ceff {ceff} -> {p}");
        }
    }

    #[test]
    fn scaling_ratio_matches_direct_computation() {
        let v0 = Volts(1.2);
        let v1 = Volts(1.1);
        let direct = dynamic_power(1.5, v1, MegaHertz(4200.0), 1.0).0
            / dynamic_power(1.5, v0, MegaHertz(4200.0), 1.0).0;
        assert!((voltage_scaling_ratio(v0, v1) - direct).abs() < 1e-12);
    }
}
