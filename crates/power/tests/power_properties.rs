//! Property-based tests of the power substrate.

use p7_power::{dynamic::dynamic_power, ChipPowerModel, CorePowerState, PowerConfig, ThermalModel};
use p7_types::{Celsius, MegaHertz, Seconds, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dynamic_power_is_monotone_in_all_factors(
        ceff in 0.1f64..3.0,
        v in 0.8f64..1.3,
        f in 2000.0f64..4800.0,
        a in 0.0f64..1.0,
        dv in 0.001f64..0.1,
        df in 1.0f64..500.0,
        da in 0.001f64..0.3,
    ) {
        let base = dynamic_power(ceff, Volts(v), MegaHertz(f), a);
        prop_assert!(dynamic_power(ceff, Volts(v + dv), MegaHertz(f), a) > base);
        prop_assert!(dynamic_power(ceff, Volts(v), MegaHertz(f + df), a) > base || a == 0.0);
        prop_assert!(dynamic_power(ceff, Volts(v), MegaHertz(f), a + da) > base);
    }

    #[test]
    fn core_power_ordering_holds_everywhere(
        ceff in 0.5f64..2.5,
        activity in 0.1f64..1.0,
        v in 0.95f64..1.25,
        t in 25.0f64..70.0,
    ) {
        let model = ChipPowerModel::new(PowerConfig::power7plus()).unwrap();
        let args = (Volts(v), MegaHertz(4200.0), Celsius(t));
        let run = model.core_power(CorePowerState::Running, ceff, activity, args.0, args.1, args.2);
        let idle = model.core_power(CorePowerState::IdleOn, ceff, activity, args.0, args.1, args.2);
        let gated = model.core_power(CorePowerState::Gated, ceff, activity, args.0, args.1, args.2);
        prop_assert!(run.total() >= idle.total());
        prop_assert!(idle.total() > gated.total());
        prop_assert!(gated.dynamic == Watts::ZERO);
        prop_assert!(run.total().0.is_finite() && run.total().0 > 0.0);
    }

    #[test]
    fn undervolting_always_saves_core_power(
        ceff in 0.5f64..2.5,
        activity in 0.1f64..1.0,
        v in 1.0f64..1.2,
        dv_mv in 5.0f64..80.0,
    ) {
        let model = ChipPowerModel::new(PowerConfig::power7plus()).unwrap();
        let f = MegaHertz(4200.0);
        let t = Celsius(45.0);
        let hi = model.core_power(CorePowerState::Running, ceff, activity, Volts(v), f, t);
        let lo = model.core_power(
            CorePowerState::Running,
            ceff,
            activity,
            Volts(v) - Volts::from_millivolts(dv_mv),
            f,
            t,
        );
        prop_assert!(lo.total() < hi.total());
        prop_assert!(lo.leakage < hi.leakage, "leakage must also fall with voltage");
    }

    #[test]
    fn thermal_node_is_stable_and_bounded(
        power in 0.0f64..200.0,
        dt_ms in 1.0f64..5000.0,
        steps in 1usize..200,
    ) {
        let mut node = ThermalModel::power7plus();
        let steady = node.steady_state(Watts(power));
        for _ in 0..steps {
            node.step(Watts(power), Seconds::from_millis(dt_ms));
            // Never overshoots: always between ambient and steady state.
            prop_assert!(node.temperature() >= Celsius(22.0) - Celsius(1e-9));
            prop_assert!(node.temperature() <= steady + Celsius(1e-9));
        }
    }

    #[test]
    fn uncore_power_is_quadratic_in_voltage(
        v in 0.8f64..1.3,
        scale in 1.01f64..1.4,
    ) {
        let model = ChipPowerModel::new(PowerConfig::power7plus()).unwrap();
        let p1 = model.uncore_power(Volts(v));
        let p2 = model.uncore_power(Volts(v * scale));
        prop_assert!((p2.0 / p1.0 - scale * scale).abs() < 1e-9);
    }
}
