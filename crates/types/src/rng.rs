//! Deterministic pseudo-randomness for the simulator.
//!
//! Every stochastic element (di/dt noise events, CPM process variation,
//! workload activity jitter, query arrivals) draws from a [`SplitMix64`]
//! stream. Streams are derived from a master seed plus a domain label via
//! [`seed_for`], so adding a new noise consumer never perturbs the stream
//! of an existing one — experiments stay reproducible as the code evolves.

use serde::{Deserialize, Serialize};

/// A small, fast, deterministic PRNG (Sebastiano Vigna's SplitMix64).
///
/// Not cryptographically secure; used only for simulation noise. Chosen over
/// an external generator so that sequences are stable across dependency
/// upgrades.
///
/// # Examples
///
/// ```
/// use p7_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Draw u1 away from zero to keep ln() finite.
        let u1 = (self.next_u64() >> 11).max(1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Returns an exponential sample with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential rate must be positive: {rate}");
        let u = self.next_f64();
        -(1.0 - u).ln() / rate
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Forks an independent child stream labelled by `label`.
    pub fn fork(&mut self, label: &str) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ fnv1a(label.as_bytes()))
    }
}

/// Derives a deterministic seed from a master seed and a domain label.
///
/// # Examples
///
/// ```
/// use p7_types::seed_for;
///
/// assert_eq!(seed_for(7, "didt"), seed_for(7, "didt"));
/// assert_ne!(seed_for(7, "didt"), seed_for(7, "cpm"));
/// assert_ne!(seed_for(7, "didt"), seed_for(8, "didt"));
/// ```
#[must_use]
pub fn seed_for(master: u64, label: &str) -> u64 {
    // Mix the label hash into the master seed through one SplitMix64 step
    // so that nearby master seeds do not produce correlated streams.
    let mut mixer = SplitMix64::new(master ^ fnv1a(label.as_bytes()));
    mixer.next_u64()
}

/// Derives a deterministic seed from a master seed, a domain label and an
/// element index, without allocating.
///
/// Byte-for-byte equivalent to `seed_for(master, &format!("{label}{index}"))`
/// — the index is hashed as its decimal digits — so call sites that used to
/// build the label with `format!` keep their exact streams (and therefore
/// their golden values) when switching to this allocation-free form.
///
/// # Examples
///
/// ```
/// use p7_types::{seed_for, seed_for_indexed};
///
/// assert_eq!(seed_for_indexed(7, "chip", 1), seed_for(7, "chip1"));
/// assert_ne!(seed_for_indexed(7, "chip", 0), seed_for_indexed(7, "chip", 1));
/// ```
#[must_use]
pub fn seed_for_indexed(master: u64, label: &str, index: usize) -> u64 {
    let hash = fnv1a_digits(fnv1a(label.as_bytes()), index);
    let mut mixer = SplitMix64::new(master ^ hash);
    mixer.next_u64()
}

/// FNV-1a 64-bit hash of a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash over more bytes.
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Continues an FNV-1a hash over the decimal digits of `index`, exactly as
/// if the number had been formatted into the hashed string.
fn fnv1a_digits(hash: u64, index: usize) -> u64 {
    // usize fits in 20 decimal digits; fill the buffer back to front.
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut rest = index;
    loop {
        i -= 1;
        digits[i] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    fnv1a_continue(hash, &digits[i..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SplitMix64::new(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SplitMix64::new(5);
        let rate = 4.0;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(10);
        let mut c1 = parent.fork("alpha");
        let mut c2 = parent.fork("alpha");
        // Forks taken at different points differ even with the same label.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn seed_for_is_label_sensitive() {
        assert_ne!(seed_for(0, "a"), seed_for(0, "b"));
        assert_eq!(seed_for(99, "pdn"), seed_for(99, "pdn"));
    }

    #[test]
    fn seed_for_indexed_matches_formatted_label() {
        // The allocation-free path must reproduce the exact streams the
        // old `format!("{label}{index}")` call sites produced.
        for master in [0u64, 7, 42, u64::MAX] {
            for index in [0usize, 1, 7, 9, 10, 39, 123, 9_999_999] {
                assert_eq!(
                    seed_for_indexed(master, "chip", index),
                    seed_for(master, &format!("chip{index}")),
                    "master {master}, index {index}"
                );
                assert_eq!(
                    seed_for_indexed(master, "trace", index),
                    seed_for(master, &format!("trace{index}")),
                );
            }
        }
    }

    #[test]
    fn seed_for_indexed_is_index_sensitive() {
        assert_ne!(
            seed_for_indexed(1, "chip", 0),
            seed_for_indexed(1, "chip", 1)
        );
        assert_ne!(
            seed_for_indexed(1, "chip", 0),
            seed_for_indexed(2, "chip", 0)
        );
        assert_ne!(
            seed_for_indexed(1, "chip", 0),
            seed_for_indexed(1, "trace", 0)
        );
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(0);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
