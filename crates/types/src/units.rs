//! Newtype wrappers for the physical quantities used throughout the
//! simulator.
//!
//! All wrappers are thin `f64` newtypes with the arithmetic that is
//! physically meaningful: same-unit addition/subtraction, scalar
//! multiplication, and the cross-unit products that occur in the power
//! delivery model (`Ohms * Amps = Volts`, `Volts * Amps = Watts`,
//! `Watts * Seconds = Joules`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for one scalar unit newtype.
macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Clamps to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// True when the inner value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electrical current in amperes.
    Amps,
    "A"
);
unit!(
    /// Electrical resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Clock frequency in megahertz.
    MegaHertz,
    "MHz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);

impl Volts {
    /// Builds a voltage from a millivolt value.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Volts(mv / 1000.0)
    }

    /// Returns the value in millivolts.
    #[must_use]
    pub fn millivolts(self) -> f64 {
        self.0 * 1000.0
    }
}

impl MegaHertz {
    /// Builds a frequency from a gigahertz value.
    #[must_use]
    pub fn from_gigahertz(ghz: f64) -> Self {
        MegaHertz(ghz * 1000.0)
    }

    /// Returns the value in gigahertz.
    #[must_use]
    pub fn gigahertz(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Seconds {
    /// Builds a time span from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1000.0)
    }

    /// Returns the value in milliseconds.
    #[must_use]
    pub fn millis(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Mul<Amps> for Ohms {
    type Output = Volts;
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let r = Ohms(0.5e-3);
        let i = Amps(120.0);
        let v = r * i;
        assert!((v.0 - 0.06).abs() < 1e-12);
        assert!(((v / i).0 - r.0).abs() < 1e-12);
    }

    #[test]
    fn power_energy_identities() {
        let p = Volts(1.2) * Amps(100.0);
        assert_eq!(p, Watts(120.0));
        let e = p * Seconds(10.0);
        assert_eq!(e, Joules(1200.0));
        assert_eq!(e / Seconds(10.0), p);
        assert_eq!(p / Volts(1.2), Amps(100.0));
    }

    #[test]
    fn millivolt_round_trip() {
        let v = Volts::from_millivolts(1150.0);
        assert!((v.0 - 1.15).abs() < 1e-12);
        assert!((v.millivolts() - 1150.0).abs() < 1e-9);
    }

    #[test]
    fn gigahertz_round_trip() {
        let f = MegaHertz::from_gigahertz(4.2);
        assert_eq!(f, MegaHertz(4200.0));
        assert!((f.gigahertz() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn dimensionless_ratio() {
        assert!((Volts(0.6) / Volts(1.2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_currents() {
        let total: Amps = [Amps(1.0), Amps(2.5), Amps(3.5)].into_iter().sum();
        assert_eq!(total, Amps(7.0));
    }

    #[test]
    fn clamp_and_minmax() {
        assert_eq!(Volts(1.5).clamp(Volts(0.9), Volts(1.3)), Volts(1.3));
        assert_eq!(Volts(1.0).max(Volts(1.1)), Volts(1.1));
        assert_eq!(Volts(1.0).min(Volts(1.1)), Volts(1.0));
    }

    #[test]
    fn display_contains_suffix() {
        assert!(format!("{}", Volts(1.2)).contains('V'));
        assert!(format!("{}", MegaHertz(4200.0)).contains("MHz"));
        assert!(format!("{}", Celsius(38.0)).contains("°C"));
    }

    #[test]
    fn negation_and_assign_ops() {
        let mut v = Volts(1.0);
        v += Volts(0.2);
        v -= Volts(0.1);
        assert!((v.0 - 1.1).abs() < 1e-12);
        assert!(((-v).0 + 1.1).abs() < 1e-12);
        assert_eq!((-Volts(2.0)).abs(), Volts(2.0));
    }
}
