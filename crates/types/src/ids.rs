//! Identifiers for the topological elements of a POWER7+ server.
//!
//! The POWER7+ chip has eight out-of-order cores arranged in a 2×4 grid and
//! five critical path monitors per core (40 chip-wide). The Power 720 server
//! used by the paper carries two such chips on a shared voltage regulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of cores on one POWER7+ chip.
pub const CORES_PER_SOCKET: usize = 8;

/// Number of critical path monitors placed in each core.
pub const CPMS_PER_CORE: usize = 5;

/// Number of critical path monitors on one chip (40 on POWER7+).
pub const CPMS_PER_SOCKET: usize = CORES_PER_SOCKET * CPMS_PER_CORE;

/// Number of processor sockets in the modelled Power 720 server.
pub const NUM_SOCKETS: usize = 2;

/// Index of one core within a socket (`0..8`).
///
/// Cores `0..=3` form the upper row of the physical floorplan and `4..=7`
/// the lower row, matching the activation order used in the paper's Fig. 7.
///
/// # Examples
///
/// ```
/// use p7_types::CoreId;
///
/// let core = CoreId::new(6).unwrap();
/// assert_eq!(core.grid_position(), (1, 2));
/// assert!(core.is_adjacent(CoreId::new(2).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core id, returning `None` when `index` is out of range.
    #[must_use]
    pub fn new(index: u8) -> Option<Self> {
        (usize::from(index) < CORES_PER_SOCKET).then_some(CoreId(index))
    }

    /// Returns the raw index (`0..8`).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all cores of a socket in activation order (0 → 7).
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..CORES_PER_SOCKET as u8).map(CoreId)
    }

    /// Returns the `(row, column)` position on the 2×4 floorplan grid.
    #[must_use]
    pub fn grid_position(self) -> (usize, usize) {
        (self.index() / 4, self.index() % 4)
    }

    /// True when `other` is a floorplan neighbour (shares a grid edge).
    ///
    /// Neighbouring cores share local power-delivery segments, so activity
    /// on a neighbour raises this core's local IR drop.
    #[must_use]
    pub fn is_adjacent(self, other: CoreId) -> bool {
        let (r1, c1) = self.grid_position();
        let (r2, c2) = other.grid_position();
        r1.abs_diff(r2) + c1.abs_diff(c2) == 1
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Core{}", self.0)
    }
}

/// Index of one processor socket within the server (`0..2`).
///
/// # Examples
///
/// ```
/// use p7_types::SocketId;
///
/// assert_eq!(SocketId::all().count(), 2);
/// assert_eq!(SocketId::new(1).unwrap().index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SocketId(u8);

impl SocketId {
    /// Creates a socket id, returning `None` when `index` is out of range.
    #[must_use]
    pub fn new(index: u8) -> Option<Self> {
        (usize::from(index) < NUM_SOCKETS).then_some(SocketId(index))
    }

    /// Returns the raw index (`0..2`).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all sockets of the server.
    pub fn all() -> impl Iterator<Item = SocketId> {
        (0..NUM_SOCKETS as u8).map(SocketId)
    }

    /// Returns the other socket of a two-socket server.
    #[must_use]
    pub fn peer(self) -> SocketId {
        SocketId(1 - self.0)
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The functional unit one of a core's five CPMs is placed in.
///
/// "Each core has 5 CPMs placed in different units to account for
/// core-level spatial variations in voltage noise and critical path
/// sensitivity" (Sec. 2.2; detailed placement in the paper's ref. [13]).
///
/// # Examples
///
/// ```
/// use p7_types::{CoreId, CpmId, CpmUnit};
///
/// let cpm = CpmId::new(CoreId::new(0).unwrap(), 2).unwrap();
/// assert_eq!(cpm.unit(), CpmUnit::InstructionSequencing);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpmUnit {
    /// Instruction fetch unit.
    InstructionFetch,
    /// Fixed-point execution unit.
    FixedPoint,
    /// Instruction sequencing unit.
    InstructionSequencing,
    /// Load/store unit.
    LoadStore,
    /// Floating-point / vector unit.
    FloatingPoint,
}

impl CpmUnit {
    /// The unit hosting CPM slot `slot` (`0..5`), in floorplan order.
    #[must_use]
    pub fn for_slot(slot: usize) -> CpmUnit {
        match slot % CPMS_PER_CORE {
            0 => CpmUnit::InstructionFetch,
            1 => CpmUnit::FixedPoint,
            2 => CpmUnit::InstructionSequencing,
            3 => CpmUnit::LoadStore,
            _ => CpmUnit::FloatingPoint,
        }
    }

    /// Short hardware-style mnemonic (IFU, FXU, ISU, LSU, FPU).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CpmUnit::InstructionFetch => "IFU",
            CpmUnit::FixedPoint => "FXU",
            CpmUnit::InstructionSequencing => "ISU",
            CpmUnit::LoadStore => "LSU",
            CpmUnit::FloatingPoint => "FPU",
        }
    }
}

impl fmt::Display for CpmUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Identifies one critical path monitor: a core plus the CPM slot inside it.
///
/// # Examples
///
/// ```
/// use p7_types::{CoreId, CpmId};
///
/// let cpm = CpmId::new(CoreId::new(3).unwrap(), 4).unwrap();
/// assert_eq!(cpm.flat_index(), 3 * 5 + 4);
/// assert_eq!(CpmId::all().count(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpmId {
    core: CoreId,
    slot: u8,
}

impl CpmId {
    /// Creates a CPM id, returning `None` when `slot` is out of range.
    #[must_use]
    pub fn new(core: CoreId, slot: u8) -> Option<Self> {
        (usize::from(slot) < CPMS_PER_CORE).then_some(CpmId { core, slot })
    }

    /// The core this CPM is placed in.
    #[must_use]
    pub fn core(self) -> CoreId {
        self.core
    }

    /// The slot (unit placement) within the core (`0..5`).
    #[must_use]
    pub fn slot(self) -> usize {
        usize::from(self.slot)
    }

    /// Returns a unique chip-wide index in `0..40`.
    #[must_use]
    pub fn flat_index(self) -> usize {
        self.core.index() * CPMS_PER_CORE + self.slot()
    }

    /// The functional unit this CPM is placed in.
    #[must_use]
    pub fn unit(self) -> CpmUnit {
        CpmUnit::for_slot(self.slot())
    }

    /// Iterates over all 40 CPMs of a chip, core-major.
    pub fn all() -> impl Iterator<Item = CpmId> {
        CoreId::all()
            .flat_map(|core| (0..CPMS_PER_CORE as u8).map(move |slot| CpmId { core, slot }))
    }
}

impl fmt::Display for CpmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/CPM{}", self.core, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_bounds() {
        assert!(CoreId::new(7).is_some());
        assert!(CoreId::new(8).is_none());
        assert_eq!(CoreId::all().count(), CORES_PER_SOCKET);
    }

    #[test]
    fn grid_positions_match_floorplan() {
        assert_eq!(CoreId::new(0).unwrap().grid_position(), (0, 0));
        assert_eq!(CoreId::new(3).unwrap().grid_position(), (0, 3));
        assert_eq!(CoreId::new(4).unwrap().grid_position(), (1, 0));
        assert_eq!(CoreId::new(7).unwrap().grid_position(), (1, 3));
    }

    #[test]
    fn adjacency_is_symmetric_and_edge_based() {
        let c = |i| CoreId::new(i).unwrap();
        assert!(c(0).is_adjacent(c(1)));
        assert!(c(0).is_adjacent(c(4)));
        assert!(!c(0).is_adjacent(c(5))); // diagonal
        assert!(!c(0).is_adjacent(c(0)));
        for a in CoreId::all() {
            for b in CoreId::all() {
                assert_eq!(a.is_adjacent(b), b.is_adjacent(a));
            }
        }
    }

    #[test]
    fn socket_peer_round_trip() {
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(s0.peer().index(), 1);
        assert_eq!(s0.peer().peer(), s0);
        assert!(SocketId::new(2).is_none());
    }

    #[test]
    fn cpm_flat_index_is_unique_and_dense() {
        let indices: Vec<usize> = CpmId::all().map(CpmId::flat_index).collect();
        assert_eq!(indices.len(), 40);
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert_eq!(sorted[0], 0);
        assert_eq!(sorted[39], 39);
    }

    #[test]
    fn cpm_slot_bounds() {
        let core = CoreId::new(0).unwrap();
        assert!(CpmId::new(core, 4).is_some());
        assert!(CpmId::new(core, 5).is_none());
    }

    #[test]
    fn cpm_units_cover_all_slots_distinctly() {
        let core = CoreId::new(0).unwrap();
        let units: Vec<CpmUnit> = (0..5)
            .map(|s| CpmId::new(core, s).unwrap().unit())
            .collect();
        let mut dedup = units.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "each slot maps to a distinct unit");
        assert_eq!(units[1].mnemonic(), "FXU");
        assert_eq!(format!("{}", units[3]), "LSU");
    }

    #[test]
    fn display_formats() {
        let cpm = CpmId::new(CoreId::new(2).unwrap(), 1).unwrap();
        assert_eq!(format!("{cpm}"), "Core2/CPM1");
        assert_eq!(format!("{}", SocketId::new(1).unwrap()), "P1");
    }
}
