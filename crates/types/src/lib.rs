//! Shared physical units, identifiers and deterministic seeding for the
//! POWER7+ adaptive-guardband simulator.
//!
//! Every other crate in the workspace builds on these types. They exist to
//! make electrical quantities type-safe (a [`Volts`] can never be added to an
//! [`Amps`] by accident) and to make the whole simulation deterministic:
//! every stochastic component derives its randomness from a [`SplitMix64`]
//! stream seeded through [`seed_for`].
//!
//! # Examples
//!
//! ```
//! use p7_types::{Volts, Amps, Ohms, Watts};
//!
//! let loadline = Ohms(0.6e-3);
//! let current = Amps(100.0);
//! let drop: Volts = loadline * current;
//! assert!((drop.0 - 0.06).abs() < 1e-12);
//!
//! let power: Watts = Volts(1.2) * current;
//! assert_eq!(power, Watts(120.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod rng;
pub mod units;

pub use ids::{
    CoreId, CpmId, CpmUnit, SocketId, CORES_PER_SOCKET, CPMS_PER_CORE, CPMS_PER_SOCKET, NUM_SOCKETS,
};
pub use rng::{seed_for, seed_for_indexed, SplitMix64};
pub use units::{Amps, Celsius, Joules, MegaHertz, Ohms, Seconds, Volts, Watts};
