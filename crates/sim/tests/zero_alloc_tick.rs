//! Proves the warm tick path performs zero heap allocations — with the
//! telemetry layer fully enabled.
//!
//! A counting wrapper around the system allocator is installed as the
//! global allocator, armed only around the measured ticks. The file holds
//! exactly one test so no sibling test thread can allocate while the
//! counter is armed.
//!
//! Metrics and tracing are switched on *before* warmup: metric handles
//! resolve their `OnceLock`s and the tracer's per-thread ring takes its
//! one-time allocation during the warmup ticks, after which every
//! `inc`/`observe` is a plain atomic op and every span a ring write. The
//! ring is sized to hold all measured events so wrap-around (which is
//! also allocation-free) is not what's being measured.

use p7_control::GuardbandMode;
use p7_sim::{Assignment, ServerConfig, Simulation};
use p7_workloads::Catalog;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_ticks_allocate_nothing_with_telemetry_enabled() {
    // Full observability on: the registry records every counter bump and
    // histogram observation, the tracer records tick and solve spans, and
    // a live flight recorder holds registry snapshots. The recorder
    // samples on its own schedule (a daemon thread in production) — its
    // presence must not perturb the tick path, which never touches it.
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::enable();
    let recorder = p7_obs::timeseries::Recorder::new(p7_obs::timeseries::DEFAULT_CAPACITY);
    recorder.sample(p7_obs::metrics::global(), p7_obs::timeseries::wall_ms());

    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(42),
        Assignment::single_socket(&w, 4).unwrap(),
        GuardbandMode::Undervolt,
    )
    .unwrap();
    const WARMUP: usize = 3;
    const MEASURED: usize = 32;
    // Telemetry rings grow only up front; reserve what this run records.
    sim.reserve_telemetry(WARMUP + MEASURED);
    for _ in 0..WARMUP {
        std::hint::black_box(sim.tick());
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..MEASURED {
        std::hint::black_box(sim.tick());
    }
    ARMED.store(false, Ordering::SeqCst);

    // The recorder still works after the measured window — the armed
    // phase simply never needed it.
    recorder.sample(p7_obs::metrics::global(), p7_obs::timeseries::wall_ms());
    assert_eq!(recorder.len(), 2, "both samples landed in the ring");

    p7_obs::trace::disable();
    p7_obs::metrics::global().set_enabled(false);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "warm tick path must not touch the heap even with metrics and tracing \
         enabled: {allocs} allocs, {reallocs} reallocs over {MEASURED} windows"
    );

    // The instrumentation itself must have fired: every measured window
    // records one tick span and bumps the tick counter.
    let ticks = p7_sim::telemetry::sim_ticks().get();
    assert!(
        ticks >= (WARMUP + MEASURED) as u64,
        "metrics were enabled but the tick counter read {ticks}"
    );
    let events = p7_obs::trace::collect();
    let tick_spans = events.iter().filter(|e| e.name == "tick").count();
    assert_eq!(tick_spans, WARMUP + MEASURED, "one tick span per window");
}
