//! Property-based tests of the simulator crate (low case counts — each
//! case runs a full simulation).

use p7_control::GuardbandMode;
use p7_sim::{Assignment, Experiment, ServerConfig, Simulation};
use p7_types::{SocketId, Volts};
use p7_workloads::{Catalog, ExecutionModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chip_power_grows_with_thread_count(
        idx in 0usize..17,
        k in 1usize..8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let exp = Experiment::power7plus(1).with_ticks(10, 5);
        let less = exp
            .run(&Assignment::single_socket(&w, k).unwrap(), GuardbandMode::StaticGuardband)
            .unwrap();
        let more = exp
            .run(&Assignment::single_socket(&w, k + 1).unwrap(), GuardbandMode::StaticGuardband)
            .unwrap();
        prop_assert!(more.chip_power() > less.chip_power());
    }

    #[test]
    fn undervolt_depth_shrinks_with_thread_count(
        idx in 0usize..17,
        k in 1usize..8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let exp = Experiment::power7plus(1).with_ticks(15, 10);
        let uv = |threads: usize| {
            exp.run(&Assignment::single_socket(&w, threads).unwrap(), GuardbandMode::Undervolt)
                .unwrap()
                .summary
                .socket0()
                .undervolt
        };
        // Allow a couple of mV of window-sampling noise.
        prop_assert!(uv(k + 1) <= uv(k) + Volts::from_millivolts(3.0));
    }

    #[test]
    fn delivered_voltage_never_exceeds_the_set_point(
        idx in 0usize..17,
        k in 1usize..=8,
        seed in 0u64..50,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let mut sim = Simulation::new(
            ServerConfig::power7plus(seed),
            Assignment::single_socket(&w, k).unwrap(),
            GuardbandMode::Undervolt,
        )
        .unwrap();
        for _ in 0..10 {
            let ticks = sim.tick();
            for t in &ticks {
                for v in t.core_voltages {
                    prop_assert!(v <= t.set_point);
                    prop_assert!(v > Volts(0.8), "voltage collapsed: {v}");
                }
            }
        }
    }

    #[test]
    fn gated_sockets_report_no_running_frequency(
        idx in 0usize..17,
        k in 1usize..=8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let mut sim = Simulation::new(
            ServerConfig::power7plus(2),
            Assignment::consolidated(&w, k).unwrap(),
            GuardbandMode::Undervolt,
        )
        .unwrap();
        let ticks = sim.tick();
        let gated = &ticks[SocketId::new(1).unwrap().index()];
        prop_assert!(gated.min_on_freq.is_none());
        prop_assert!(gated.sticky_min_freq.is_none());
    }

    #[test]
    fn borrowed_and_consolidated_run_the_same_thread_count(
        idx in 0usize..17,
        k in 1usize..=8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let cons = Assignment::consolidated(&w, k).unwrap();
        let borr = Assignment::borrowed(&w, k).unwrap();
        prop_assert_eq!(cons.total_threads(), k);
        prop_assert_eq!(borr.total_threads(), k);
        prop_assert_eq!(
            cons.on_cores().iter().sum::<usize>(),
            borr.on_cores().iter().sum::<usize>(),
            "both schedules keep eight cores powered"
        );
    }

    #[test]
    fn experiment_outcome_fields_are_consistent(
        idx in 0usize..17,
        k in 1usize..=8,
    ) {
        let catalog = Catalog::power7plus();
        let w = catalog.parsec_splash()[idx].clone();
        let exp = Experiment::with_config(
            ServerConfig::power7plus(3),
            ExecutionModel::power7plus(),
        )
        .with_ticks(10, 5);
        let o = exp
            .run(&Assignment::single_socket(&w, k).unwrap(), GuardbandMode::Overclock)
            .unwrap();
        prop_assert!(o.exec_time.0 > 0.0);
        prop_assert!((o.energy.0 - o.total_power().0 * o.exec_time.0).abs() < 1e-9);
        prop_assert!((o.edp - o.energy.0 * o.exec_time.0).abs() < 1e-9);
        prop_assert!(o.summary.min_running_freq <= o.summary.avg_running_freq);
    }
}
