//! Structure-of-arrays batch solver for the per-window electrical solve.
//!
//! The fixed point `power ↔ current ↔ voltage` used to be computed one
//! grid point at a time inside [`crate::chip::ChipSim`]. This module
//! factors that loop into a [`SolveBatch`]: rail parameters (R·I terms),
//! effective capacitances, leakage sensitivities and the per-core voltage
//! iterates of up to `LANES` independent solves are laid out in
//! lane-contiguous arrays (`[[f64; LANES]; CORES_PER_SOCKET]`), so one
//! pass of the iteration advances every lane at once and the inner loops
//! are plain branch-light f64 arithmetic the compiler can autovectorize.
//!
//! Per-lane convergence masks let early-converging lanes stop
//! contributing work: a converged lane is skipped by every subsequent
//! stage, and the whole batch stops as soon as the mask empties.
//!
//! Numerical contract: a lane's trajectory is **bit-identical** to the
//! scalar solve it replaced (retained behind the `scalar-oracle` feature
//! as the differential-test oracle). Every floating-point operation keeps
//! the scalar path's association order; the only hoist is the leakage
//! temperature term, which is a pure function of per-window inputs and
//! therefore reproduces the same bits it had inside the loop.

use crate::telemetry;
use p7_pdn::{PdnGrid, Rail};
use p7_power::{ChipPowerModel, CorePowerState};
use p7_types::{Amps, Celsius, MegaHertz, Volts, Watts, CORES_PER_SOCKET};

/// Convergence tolerance of the fixed-point voltage↔power solve: iteration
/// stops once no voltage moved by 0.05 mV, far below every physical effect
/// in the model.
pub const SOLVE_TOLERANCE: Volts = Volts(5.0e-5);

/// Safety cap on solve iterations. The loop contracts quickly (the drop is
/// a few percent of Vdd), so a cold start converges in a handful of rounds
/// and a warm start usually in one or two; the cap only guards pathological
/// configurations such as extreme loadlines.
pub const MAX_SOLVE_ITERATIONS: usize = 16;

/// Floorplan adjacency of the 2×4 core grid in ascending core order —
/// the same neighbours (and the same summation order) as
/// `CoreId::is_adjacent` produces inside `PdnGrid::core_voltages`.
const ADJACENT: [&[usize]; CORES_PER_SOCKET] = [
    &[1, 4],
    &[0, 2, 5],
    &[1, 3, 6],
    &[2, 7],
    &[0, 5],
    &[1, 4, 6],
    &[2, 5, 7],
    &[3, 6],
];

/// Everything one lane's solve depends on, borrowed from the owning chip.
///
/// [`SolveBatch::load`] copies the electrically relevant scalars out of
/// these references into the batch's lane-contiguous arrays; the borrows
/// end when `load` returns.
#[derive(Debug, Clone, Copy)]
pub struct LaneSpec<'a> {
    /// The VRM rail feeding this lane's chip.
    pub rail: &'a Rail,
    /// The chip's power model (leakage and switching parameters).
    pub power: &'a ChipPowerModel,
    /// The on-die power grid (IR-drop resistances).
    pub grid: &'a PdnGrid,
    /// Die temperature for this window.
    pub temperature: Celsius,
    /// Per-core power state (running / idle-on / gated).
    pub states: &'a [CorePowerState; CORES_PER_SOCKET],
    /// Per-core effective switched capacitance (nF) of the workload.
    pub ceffs: &'a [f64; CORES_PER_SOCKET],
    /// Per-core activity factor for this window.
    pub activities: &'a [f64; CORES_PER_SOCKET],
    /// Per-core clock frequency during this window.
    pub freqs: &'a [MegaHertz; CORES_PER_SOCKET],
    /// Warm-start seed `(chip input, per-core voltages)` from the previous
    /// window's converged solve; `None` starts cold from the rail set
    /// point.
    pub warm_start: Option<(Volts, [Volts; CORES_PER_SOCKET])>,
}

/// The converged state of one lane after [`SolveBatch::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSolution {
    /// Chip input voltage (after the VRM loadline).
    pub chip_input: Volts,
    /// Voltage delivered to each core.
    pub core_voltages: [Volts; CORES_PER_SOCKET],
    /// Current drawn by each core.
    pub core_currents: [Amps; CORES_PER_SOCKET],
    /// Current drawn by the uncore.
    pub uncore_current: Amps,
    /// Total current drawn from the rail.
    pub total_current: Amps,
    /// Total silicon power at the converged voltages.
    pub total_power: Watts,
    /// Iterations this lane ran before converging (or hitting the cap).
    pub iterations: u32,
}

/// A structure-of-arrays batch of up to `LANES` independent fixed-point
/// solves, advanced together by [`SolveBatch::solve`].
///
/// Entirely stack-allocated: loading, solving and reading lanes performs
/// no heap allocation, which is what keeps the simulator's warm tick
/// allocation-free (`zero_alloc_tick.rs`).
///
/// Lanes are independent: the arithmetic of one lane never reads another
/// lane's state, so a batch of N lanes produces bit-identical results to
/// N separate single-lane batches (see the lane-masking tests below and
/// `tests/solver_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct SolveBatch<const LANES: usize> {
    // Per-lane scalars.
    occupied: [bool; LANES],
    iterations: [u32; LANES],
    chip_input: [f64; LANES],
    set_point: [f64; LANES],
    loadline: [f64; LANES],
    leak_ref: [f64; LANES],
    leak_v_ref: [f64; LANES],
    leak_v_sens: [f64; LANES],
    /// Leakage temperature term, hoisted out of the iteration (a pure
    /// function of the window's die temperature).
    t_term: [f64; LANES],
    uncore_base: [f64; LANES],
    uncore_v_ref: [f64; LANES],
    ir_global: [f64; LANES],
    ir_local: [f64; LANES],
    ir_neighbor: [f64; LANES],
    uncore_current: [f64; LANES],
    total_current: [f64; LANES],
    total_power: [f64; LANES],
    // Per-(core, lane) planes, lane-contiguous.
    idle_ceff: [[f64; LANES]; CORES_PER_SOCKET],
    work_ceff: [[f64; LANES]; CORES_PER_SOCKET],
    work_act: [[f64; LANES]; CORES_PER_SOCKET],
    ghz: [[f64; LANES]; CORES_PER_SOCKET],
    leak_scale: [[f64; LANES]; CORES_PER_SOCKET],
    volt: [[f64; LANES]; CORES_PER_SOCKET],
    amp: [[f64; LANES]; CORES_PER_SOCKET],
}

impl<const LANES: usize> Default for SolveBatch<LANES> {
    fn default() -> Self {
        SolveBatch::new()
    }
}

impl<const LANES: usize> SolveBatch<LANES> {
    /// An empty batch; every lane is vacant until [`SolveBatch::load`].
    #[must_use]
    pub fn new() -> Self {
        SolveBatch {
            occupied: [false; LANES],
            iterations: [0; LANES],
            chip_input: [0.0; LANES],
            set_point: [0.0; LANES],
            loadline: [0.0; LANES],
            leak_ref: [0.0; LANES],
            leak_v_ref: [0.0; LANES],
            leak_v_sens: [0.0; LANES],
            t_term: [0.0; LANES],
            uncore_base: [0.0; LANES],
            uncore_v_ref: [1.0; LANES],
            ir_global: [0.0; LANES],
            ir_local: [0.0; LANES],
            ir_neighbor: [0.0; LANES],
            uncore_current: [0.0; LANES],
            total_current: [0.0; LANES],
            total_power: [0.0; LANES],
            idle_ceff: [[0.0; LANES]; CORES_PER_SOCKET],
            work_ceff: [[0.0; LANES]; CORES_PER_SOCKET],
            work_act: [[0.0; LANES]; CORES_PER_SOCKET],
            ghz: [[0.0; LANES]; CORES_PER_SOCKET],
            leak_scale: [[0.0; LANES]; CORES_PER_SOCKET],
            volt: [[1.0; LANES]; CORES_PER_SOCKET],
            amp: [[0.0; LANES]; CORES_PER_SOCKET],
        }
    }

    /// Number of loaded lanes.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupied.iter().filter(|&&o| o).count()
    }

    /// Vacates every lane so the batch can be refilled.
    pub fn clear(&mut self) {
        self.occupied = [false; LANES];
    }

    /// Loads one lane from a chip's window state.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= LANES`.
    // Index loops, not iterator zips: every statement writes a different
    // subset of the parallel lane planes at the same [core][lane] slot.
    #[allow(clippy::needless_range_loop)]
    pub fn load(&mut self, lane: usize, spec: &LaneSpec<'_>) {
        assert!(lane < LANES, "lane {lane} out of {LANES}");
        let cfg = spec.power.config();
        let pdn = spec.grid.config();
        self.occupied[lane] = true;
        self.iterations[lane] = 0;
        self.set_point[lane] = spec.rail.set_point().0;
        self.loadline[lane] = spec.rail.loadline().0;
        self.leak_ref[lane] = cfg.core_leakage_ref.0;
        self.leak_v_ref[lane] = cfg.leakage_v_ref.0;
        self.leak_v_sens[lane] = cfg.leakage_v_sensitivity;
        // Bit-identical to recomputing it every iteration: the inputs do
        // not change within a window, and `exp` is deterministic.
        self.t_term[lane] =
            ((spec.temperature - cfg.leakage_t_ref).0 * cfg.leakage_t_sensitivity).exp();
        self.uncore_base[lane] = cfg.uncore_base.0;
        self.uncore_v_ref[lane] = cfg.uncore_v_ref.0;
        self.ir_global[lane] = pdn.ir_global.0;
        self.ir_local[lane] = pdn.ir_local.0;
        self.ir_neighbor[lane] = pdn.ir_neighbor.0;
        self.uncore_current[lane] = 0.0;
        self.total_current[lane] = 0.0;
        self.total_power[lane] = 0.0;
        let (chip_input, core_voltages) = match spec.warm_start {
            Some(seed) => seed,
            None => (
                spec.rail.set_point(),
                [spec.rail.set_point(); CORES_PER_SOCKET],
            ),
        };
        self.chip_input[lane] = chip_input.0;
        for core in 0..CORES_PER_SOCKET {
            let state = spec.states[core];
            // Encoding of `ChipPowerModel::core_power` as lane constants:
            // the clock grid switches whenever the core is powered on, the
            // workload term only when it is running, and gating scales the
            // leakage by the header-switch residual. Zero coefficients
            // reproduce the scalar model's absent terms bit-for-bit
            // (`x + 0.0 == x` for the non-negative powers involved).
            self.idle_ceff[core][lane] = if state.is_on() {
                cfg.idle_core_ceff_nf
            } else {
                0.0
            };
            self.work_ceff[core][lane] = if state.is_running() {
                spec.ceffs[core]
            } else {
                0.0
            };
            self.work_act[core][lane] = if state.is_running() {
                // clamp_activity followed by dynamic_power's `.max(0.0)`.
                spec.activities[core].clamp(0.0, 1.5).max(0.0)
            } else {
                0.0
            };
            self.ghz[core][lane] = spec.freqs[core].gigahertz();
            self.leak_scale[core][lane] = if state.is_on() {
                1.0
            } else {
                cfg.gated_residual
            };
            self.volt[core][lane] = core_voltages[core].0;
            self.amp[core][lane] = 0.0;
        }
    }

    /// Advances every loaded lane to its fixed point.
    ///
    /// Records the batch occupancy and, per iteration, how many lanes
    /// converged, in the `ags_solve_batch_occupancy` /
    /// `ags_solve_lanes_converged` telemetry families; each lane also
    /// emits the same per-socket `solve` span and
    /// `ags_solve_iterations` observation the scalar path produced.
    // Index loops, not iterator zips: the kernel reads and writes many
    // parallel lane planes at the same [core][lane] slot per statement.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&mut self) {
        if self.occupancy() == 0 {
            return;
        }
        #[allow(clippy::cast_precision_loss)]
        telemetry::solve_batch_occupancy().observe(self.occupancy() as f64);
        let mut spans: [Option<p7_obs::trace::Span>; LANES] = std::array::from_fn(|_| None);
        for lane in 0..LANES {
            if self.occupied[lane] {
                spans[lane] = Some(p7_obs::trace::span("solve", 0));
            }
        }

        // The convergence mask: a lane leaves it the moment its residual
        // drops below tolerance, and every stage below skips masked-out
        // lanes, so early-converging lanes stop contributing work.
        let mut active = self.occupied;
        for _ in 0..MAX_SOLVE_ITERATIONS {
            if !active.iter().any(|&a| a) {
                break;
            }
            // Stage A: per-core power and current, lane-contiguous so the
            // products vectorize across lanes.
            for lane in 0..LANES {
                if active[lane] {
                    self.total_power[lane] = 0.0;
                }
            }
            for core in 0..CORES_PER_SOCKET {
                for lane in 0..LANES {
                    if !active[lane] {
                        continue;
                    }
                    let v = self.volt[core][lane];
                    // dynamic_power(idle_ceff, v, f, 1.0)
                    //   + dynamic_power(work_ceff, v, f, act)
                    let idle_dyn = ((self.idle_ceff[core][lane] * v) * v) * self.ghz[core][lane];
                    let work_dyn = (((self.work_ceff[core][lane] * v) * v) * self.ghz[core][lane])
                        * self.work_act[core][lane];
                    // core_leakage = leak_ref · e^{(v−v_ref)·s_v} · t_term,
                    // scaled by 1.0 (on) or the gated residual.
                    let v_term = ((v - self.leak_v_ref[lane]) * self.leak_v_sens[lane]).exp();
                    let leak = ((self.leak_ref[lane] * v_term) * self.t_term[lane])
                        * self.leak_scale[core][lane];
                    let total = (idle_dyn + work_dyn) + leak;
                    self.amp[core][lane] = total / v.max(0.1);
                    self.total_power[lane] += total;
                }
            }
            // Stages B+C: rail and grid update plus the convergence test,
            // lane by lane (each lane's reduction over its own cores).
            let mut converged_this_iter = 0u32;
            for lane in 0..LANES {
                if !active[lane] {
                    continue;
                }
                let chip_input = self.chip_input[lane];
                // uncore_power(v) = base · (v / v_ref)², then its current.
                let r = chip_input / self.uncore_v_ref[lane];
                let uncore = self.uncore_base[lane] * (r * r);
                let uncore_current = uncore / chip_input.max(0.1);
                self.uncore_current[lane] = uncore_current;
                self.total_power[lane] += uncore;
                // total_current folds the cores from zero in index order,
                // exactly as `PdnGrid::total_current` does.
                let mut core_sum = 0.0;
                for core in 0..CORES_PER_SOCKET {
                    core_sum += self.amp[core][lane];
                }
                let total_current = core_sum + uncore_current;
                self.total_current[lane] = total_current;
                let next_input = self.set_point[lane] - self.loadline[lane] * total_current;
                let global_drop = self.ir_global[lane] * total_current;
                let mut residual = (next_input - chip_input).abs();
                for core in 0..CORES_PER_SOCKET {
                    let local_drop = self.ir_local[lane] * self.amp[core][lane];
                    let mut neighbor = 0.0;
                    for &adj in ADJACENT[core] {
                        neighbor += self.amp[adj][lane];
                    }
                    let neighbor_drop = self.ir_neighbor[lane] * neighbor;
                    let next_v = ((next_input - global_drop) - local_drop) - neighbor_drop;
                    residual = residual.max((next_v - self.volt[core][lane]).abs());
                    self.volt[core][lane] = next_v;
                }
                self.chip_input[lane] = next_input;
                self.iterations[lane] += 1;
                if residual < SOLVE_TOLERANCE.0 {
                    active[lane] = false;
                    converged_this_iter += 1;
                }
            }
            telemetry::solve_lanes_converged().observe(f64::from(converged_this_iter));
        }

        for lane in 0..LANES {
            if let Some(mut span) = spans[lane].take() {
                // The span's logical key is the converged iteration count —
                // a deterministic property of the solve, unlike wall-clock.
                span.set_key(u64::from(self.iterations[lane]));
                drop(span);
                telemetry::solve_iterations().observe(f64::from(self.iterations[lane]));
            }
        }
    }

    /// Reads one lane's converged state.
    ///
    /// # Panics
    ///
    /// Panics when the lane was never loaded.
    #[must_use]
    pub fn lane(&self, lane: usize) -> LaneSolution {
        assert!(self.occupied[lane], "lane {lane} is vacant");
        LaneSolution {
            chip_input: Volts(self.chip_input[lane]),
            core_voltages: std::array::from_fn(|core| Volts(self.volt[core][lane])),
            core_currents: std::array::from_fn(|core| Amps(self.amp[core][lane])),
            uncore_current: Amps(self.uncore_current[lane]),
            total_current: Amps(self.total_current[lane]),
            total_power: Watts(self.total_power[lane]),
            iterations: self.iterations[lane],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::CoreId;

    #[test]
    fn adjacency_table_matches_core_id_floorplan() {
        for core in CoreId::all() {
            let expect: Vec<usize> = CoreId::all()
                .filter(|other| core.is_adjacent(*other))
                .map(CoreId::index)
                .collect();
            assert_eq!(ADJACENT[core.index()], expect.as_slice(), "core {core:?}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut batch = SolveBatch::<4>::new();
        assert_eq!(batch.occupancy(), 0);
        batch.solve();
        assert_eq!(batch.occupancy(), 0);
    }

    #[test]
    fn clear_vacates_lanes() {
        let mut batch = SolveBatch::<2>::new();
        assert_eq!(batch.occupancy(), 0);
        batch.clear();
        assert_eq!(batch.occupancy(), 0);
    }
}
