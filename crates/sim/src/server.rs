//! The two-socket server and the simulation engine.

use crate::assignment::Assignment;
use crate::chip::{ChipSim, SocketTick};
use crate::config::ServerConfig;
use crate::error::SimError;
use crate::history::History;
use crate::measure::{Accumulator, RunSummary};
use p7_control::{FirmwareController, GuardbandMode};
use p7_pdn::Vrm;
use p7_sensors::{Amester, CpmReading};
use p7_types::{Amps, CoreId, CpmId, Seconds, SocketId, CORES_PER_SOCKET, NUM_SOCKETS};

/// The firmware/telemetry window length: 32 ms.
pub const WINDOW: Seconds = Seconds(0.032);

/// A running simulation of the Power 720 server.
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandMode;
/// use p7_sim::{Assignment, ServerConfig, Simulation};
/// use p7_workloads::Catalog;
///
/// let cfg = ServerConfig::power7plus(42);
/// let w = Catalog::power7plus().get("raytrace").unwrap().clone();
/// let a = Assignment::single_socket(&w, 2)?;
/// let mut sim = Simulation::new(cfg, a, GuardbandMode::Undervolt)?;
/// let summary = sim.run(40, 15);
/// assert!(summary.socket0().undervolt.millivolts() > 0.0);
/// # Ok::<(), p7_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: ServerConfig,
    assignment: Assignment,
    mode: GuardbandMode,
    vrm: Vrm,
    chips: Vec<ChipSim>,
    firmware: FirmwareController,
    amesters: Vec<Amester>,
    time: Seconds,
}

impl Simulation {
    /// Builds a simulation; rails start at the static nominal voltage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the configuration or assignment is
    /// invalid.
    pub fn new(
        config: ServerConfig,
        assignment: Assignment,
        mode: GuardbandMode,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let vrm = Vrm::uniform(config.nominal_voltage(), config.pdn.vrm_loadline)?;
        let chips = SocketId::all()
            .map(|s| ChipSim::new(&config, &assignment, s))
            .collect::<Result<Vec<_>, _>>()?;
        let firmware = FirmwareController::new(config.target_frequency, config.policy.clone())?;
        Ok(Simulation {
            config,
            assignment,
            mode,
            vrm,
            chips,
            firmware,
            amesters: (0..NUM_SOCKETS).map(|_| Amester::new()).collect(),
            time: Seconds(0.0),
        })
    }

    /// Rewinds the simulation to its exactly-as-constructed state under a
    /// (possibly different) guardband mode, without rebuilding the chips.
    ///
    /// Rails return to the static nominal set point with sensor biases
    /// cleared, chips re-derive all mutable state (noise streams, CPM
    /// calibration, stuck-at faults, traces, clocks, thermal and warm-solve
    /// state), telemetry is cleared (capacity kept) and time restarts at
    /// zero. A reset simulation produces bitwise-identical results to a
    /// freshly built one, which is what lets sweep workers reuse one
    /// construction across the three guardband modes of an assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when chip re-derivation fails (it cannot for a
    /// config that already built this simulation).
    pub fn reset(&mut self, mode: GuardbandMode) -> Result<(), SimError> {
        self.mode = mode;
        let nominal = self.config.nominal_voltage();
        for socket in SocketId::all() {
            let rail = self.vrm.rail_mut(socket);
            rail.set_set_point(nominal);
            rail.inject_sensor_bias(Amps::ZERO);
        }
        let config = &self.config;
        let assignment = &self.assignment;
        for chip in &mut self.chips {
            chip.reset(config, assignment)?;
        }
        for amester in &mut self.amesters {
            amester.clear();
        }
        self.time = Seconds(0.0);
        Ok(())
    }

    /// Reserves telemetry capacity for `windows` upcoming windows so the
    /// per-tick record path never reallocates.
    pub fn reserve_telemetry(&mut self, windows: usize) {
        for amester in &mut self.amesters {
            amester.reserve(windows);
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The operating mode.
    #[must_use]
    pub fn mode(&self) -> GuardbandMode {
        self.mode
    }

    /// The assignment being executed.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The telemetry recorder of one socket.
    #[must_use]
    pub fn amester(&self, socket: SocketId) -> &Amester {
        &self.amesters[socket.index()]
    }

    /// Injects a stuck-at fault into one CPM (failure-injection tests).
    pub fn inject_cpm_fault(&mut self, socket: SocketId, cpm: CpmId, reading: Option<CpmReading>) {
        self.chips[socket.index()]
            .bank_mut()
            .monitor_mut(cpm)
            .set_stuck_at(reading);
    }

    /// Biases one rail's current sensor (failure-injection tests).
    pub fn inject_rail_sensor_bias(&mut self, socket: SocketId, bias: Amps) {
        self.vrm.rail_mut(socket).inject_sensor_bias(bias);
    }

    /// Advances the server by one 32 ms window and returns each socket's
    /// observations.
    ///
    /// This is the warm hot path: after telemetry capacity has been
    /// reserved (see [`Simulation::reserve_telemetry`], done automatically
    /// by [`Simulation::run`]), a tick performs zero heap allocations —
    /// the returned ticks, the CPM readouts and the rail snapshot are all
    /// fixed-size values.
    pub fn tick(&mut self) -> [SocketTick; NUM_SOCKETS] {
        let ticks: [SocketTick; NUM_SOCKETS] = std::array::from_fn(|i| {
            let socket = SocketId::new(i as u8).expect("socket in range");
            // Rail is a small Copy value: snapshot it instead of cloning
            // through an allocation-visible path.
            let rail = *self.vrm.rail(socket);
            let t = self.chips[i].tick(&rail, self.mode, WINDOW);
            // Telemetry mirrors what AMESTER would record.
            self.amesters[i]
                .record(self.time, t.cpm_sample, t.cpm_sticky)
                .expect("window cadence respects the 32 ms limit");
            t
        });

        // Firmware: in undervolting mode each socket's rail chases its
        // slowest powered-on core; rails of fully gated sockets park at
        // the floor.
        if self.mode == GuardbandMode::Undervolt {
            for socket in SocketId::all() {
                let current_set = self.vrm.rail(socket).set_point();
                // The firmware is conservative: it servoes the worst
                // momentary frequency of the window (droops plus the
                // rail's load-transient reserve) to the target.
                let next = match ticks[socket.index()].sticky_min_freq {
                    Some(freq) => {
                        self.firmware
                            .adjust_voltage(current_set, freq, &self.config.curve)
                    }
                    None => self.firmware.voltage_floor(&self.config.curve),
                };
                self.vrm.rail_mut(socket).set_set_point(next);
            }
        }

        self.time += WINDOW;
        ticks
    }

    /// Like [`Simulation::run`] but also records the full per-window time
    /// series (warm-up included), for transient studies.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run_with_history(&mut self, measure: usize, warmup: usize) -> (RunSummary, History) {
        assert!(measure > 0, "must measure at least one window");
        self.reserve_telemetry(measure + warmup);
        let mut history = History::with_capacity(measure + warmup);
        let mut tick_index = 0usize;
        for _ in 0..warmup {
            let time = self.time;
            let ticks = self.tick();
            history.push(tick_index, time, &ticks);
            tick_index += 1;
        }
        let mut acc = Accumulator::new(self.config.nominal_voltage(), self.running_mask());
        for _ in 0..measure {
            let time = self.time;
            let ticks = self.tick();
            history.push(tick_index, time, &ticks);
            tick_index += 1;
            acc.add(&ticks);
        }
        (
            acc.finish().expect("measure > 0 windows were accumulated"),
            history,
        )
    }

    fn running_mask(&self) -> [[bool; CORES_PER_SOCKET]; NUM_SOCKETS] {
        let mut mask = [[false; CORES_PER_SOCKET]; NUM_SOCKETS];
        for socket in SocketId::all() {
            for core in CoreId::all() {
                mask[socket.index()][core.index()] =
                    self.assignment.thread_at(socket, core).is_some();
            }
        }
        mask
    }

    /// Runs `warmup + measure` windows, discarding the warm-up, and
    /// returns the averaged summary.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run(&mut self, measure: usize, warmup: usize) -> RunSummary {
        assert!(measure > 0, "must measure at least one window");
        self.reserve_telemetry(measure + warmup);
        for _ in 0..warmup {
            self.tick();
        }
        let mut acc = Accumulator::new(self.config.nominal_voltage(), self.running_mask());
        for _ in 0..measure {
            let ticks = self.tick();
            acc.add(&ticks);
        }
        acc.finish().expect("measure > 0 windows were accumulated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::Volts;
    use p7_workloads::Catalog;

    fn workload(name: &str) -> p7_workloads::WorkloadProfile {
        Catalog::power7plus().get(name).unwrap().clone()
    }

    fn run(
        name: &str,
        k: usize,
        mode: GuardbandMode,
        build: fn(&p7_workloads::WorkloadProfile, usize) -> Result<Assignment, SimError>,
    ) -> RunSummary {
        let cfg = ServerConfig::power7plus(42);
        let a = build(&workload(name), k).unwrap();
        let mut sim = Simulation::new(cfg, a, mode).unwrap();
        sim.run(40, 20)
    }

    #[test]
    fn undervolt_saves_power_vs_static() {
        let static_run = run(
            "raytrace",
            1,
            GuardbandMode::StaticGuardband,
            Assignment::single_socket,
        );
        let uv_run = run(
            "raytrace",
            1,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        let saving = (static_run.socket0().avg_power.0 - uv_run.socket0().avg_power.0)
            / static_run.socket0().avg_power.0
            * 100.0;
        // Fig. 3a: ~13 % at one active core.
        assert!((8.0..18.0).contains(&saving), "1-core saving {saving}%");
    }

    #[test]
    fn undervolt_benefit_shrinks_with_core_count() {
        let saving_at = |k: usize| {
            let s = run(
                "raytrace",
                k,
                GuardbandMode::StaticGuardband,
                Assignment::single_socket,
            );
            let u = run(
                "raytrace",
                k,
                GuardbandMode::Undervolt,
                Assignment::single_socket,
            );
            (s.socket0().avg_power.0 - u.socket0().avg_power.0) / s.socket0().avg_power.0 * 100.0
        };
        let one = saving_at(1);
        let eight = saving_at(8);
        assert!(one > eight + 3.0, "1-core {one}% vs 8-core {eight}%");
        assert!(eight > 0.5, "8-core saving should stay positive: {eight}%");
    }

    #[test]
    fn overclock_boost_shrinks_with_core_count() {
        let boost_at = |k: usize| {
            let o = run(
                "lu_cb",
                k,
                GuardbandMode::Overclock,
                Assignment::single_socket,
            );
            (o.avg_running_freq.0 - 4200.0) / 4200.0 * 100.0
        };
        let one = boost_at(1);
        let eight = boost_at(8);
        // Fig. 4a: ~10 % at one core, ~4 % at eight.
        assert!((6.0..13.0).contains(&one), "1-core boost {one}%");
        assert!((1.0..7.0).contains(&eight), "8-core boost {eight}%");
        assert!(one > eight);
    }

    #[test]
    fn undervolt_floor_is_never_breached() {
        let cfg = ServerConfig::power7plus(3);
        let a = Assignment::single_socket(&workload("mcf"), 1).unwrap();
        let fw = FirmwareController::new(cfg.target_frequency, cfg.policy.clone()).unwrap();
        let floor = fw.voltage_floor(&cfg.curve);
        let mut sim = Simulation::new(cfg, a, GuardbandMode::Undervolt).unwrap();
        let s = sim.run(40, 20);
        assert!(s.socket0().avg_set_point >= floor - Volts(1e-9));
    }

    #[test]
    fn borrowing_beats_consolidation_at_high_load() {
        // Fig. 12b: distributing raytrace saves total power at 8 threads.
        let cons = run(
            "raytrace",
            8,
            GuardbandMode::Undervolt,
            Assignment::consolidated,
        );
        let borr = run(
            "raytrace",
            8,
            GuardbandMode::Undervolt,
            Assignment::borrowed,
        );
        let saving = (cons.total_power.0 - borr.total_power.0) / cons.total_power.0 * 100.0;
        assert!(saving > 2.0, "borrowing saving {saving}%");
    }

    #[test]
    fn telemetry_is_recorded_each_window() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 2).unwrap();
        let mut sim = Simulation::new(cfg, a, GuardbandMode::Overclock).unwrap();
        sim.run(10, 5);
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(sim.amester(s0).windows().len(), 15);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(
            "swaptions",
            4,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        let b = run(
            "swaptions",
            4,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn reset_matches_fresh_simulation_bitwise() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("raytrace"), 4).unwrap();
        let mut reused =
            Simulation::new(cfg.clone(), a.clone(), GuardbandMode::StaticGuardband).unwrap();
        // Dirty everything a run can touch, including injected faults.
        let _ = reused.run(12, 6);
        let s0 = SocketId::new(0).unwrap();
        reused.inject_cpm_fault(
            s0,
            CpmId::new(CoreId::new(2).unwrap(), 1).unwrap(),
            CpmReading::new(0),
        );
        reused.inject_rail_sensor_bias(s0, Amps(7.5));

        for mode in [
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
            GuardbandMode::Overclock,
        ] {
            reused.reset(mode).unwrap();
            let summary = reused.run(12, 6);
            let mut fresh = Simulation::new(cfg.clone(), a.clone(), mode).unwrap();
            assert_eq!(summary, fresh.run(12, 6), "mode {mode:?}");
        }
    }

    #[test]
    fn cpm_fault_injection_reaches_telemetry() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 2).unwrap();
        let mut sim = Simulation::new(cfg, a, GuardbandMode::StaticGuardband).unwrap();
        let s0 = SocketId::new(0).unwrap();
        let cpm = CpmId::new(CoreId::new(3).unwrap(), 2).unwrap();
        sim.inject_cpm_fault(s0, cpm, CpmReading::new(0));
        sim.run(5, 0);
        let latest = sim.amester(s0).latest().unwrap();
        assert_eq!(latest.sample_of(cpm).value(), 0);
    }
}
